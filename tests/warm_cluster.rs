//! Warm-cluster equivalence: the cluster-reuse contract of [`run_rads`]
//! (see its doc) says a resident `Cluster` answering a stream of queries
//! behaves *per query* exactly like a fresh cluster answering one. This is
//! the property serving mode (`rads-node serve`) is built on, and the suite
//! pins it across both transports and both round drivers:
//!
//! * one warm cluster answering q1 → q5 → q1 is bit-identical (total,
//!   per-machine counts, embedding digest) to three fresh clusters,
//! * the two q1 answers of the warm stream are identical to each other —
//!   nothing the q5 run left behind (daemons, queues, caches, stats,
//!   traffic counters) leaks into the second q1.

use std::sync::Arc;

use rads::prelude::*;
use rads_core::RoundDriver;
use rads_graph::queries;

const MACHINES: usize = 3;

/// FNV-1a over the sorted embedding list — a stable fingerprint that two
/// runs share iff they produced exactly the same embeddings.
fn digest(mut embeddings: Vec<Vec<VertexId>>) -> u64 {
    embeddings.sort();
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut mix = |byte: u8| {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for embedding in &embeddings {
        for &v in embedding {
            for byte in v.to_le_bytes() {
                mix(byte);
            }
        }
        mix(0xff); // embedding separator
    }
    hash
}

/// Everything one answer must reproduce bit-identically.
#[derive(Debug, PartialEq)]
struct Answer {
    total: u64,
    per_machine: Vec<u64>,
    digest: u64,
}

fn answer(cluster: &Cluster, query: &str, driver: RoundDriver) -> Answer {
    let pattern = queries::query_by_name(query).expect("known query");
    let config = RadsConfig {
        collect_embeddings: true,
        round_driver: driver,
        ..RadsConfig::default()
    };
    let outcome = run_rads(cluster, &pattern, &config);
    Answer {
        total: outcome.total_embeddings,
        per_machine: outcome.per_machine.iter().map(|m| m.count).collect(),
        digest: digest(outcome.all_embeddings()),
    }
}

fn partitioned() -> Arc<PartitionedGraph> {
    let dataset = generate(DatasetKind::Dblp, Scale(0.05), 7);
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, MACHINES);
    Arc::new(PartitionedGraph::build(&dataset.graph, partitioning))
}

fn transports() -> &'static [TransportKind] {
    if cfg!(unix) {
        &[TransportKind::InProcess, TransportKind::Uds]
    } else {
        &[TransportKind::InProcess, TransportKind::Tcp]
    }
}

#[test]
fn warm_cluster_matches_fresh_clusters_across_transports_and_drivers() {
    const STREAM: [&str; 3] = ["q1", "q5", "q1"];
    let pg = partitioned();
    for &transport in transports() {
        for driver in [RoundDriver::Serial, RoundDriver::Async] {
            let fresh: Vec<Answer> = STREAM
                .iter()
                .map(|query| {
                    let cluster = Cluster::with_transport(pg.clone(), transport);
                    answer(&cluster, query, driver)
                })
                .collect();
            let warm_cluster = Cluster::with_transport(pg.clone(), transport);
            let warm: Vec<Answer> =
                STREAM.iter().map(|query| answer(&warm_cluster, query, driver)).collect();
            assert_eq!(
                warm, fresh,
                "warm {STREAM:?} stream deviates from fresh clusters over {transport:?}/{driver:?}"
            );
            assert_eq!(
                warm[0], warm[2],
                "q5 bled state into the repeated q1 over {transport:?}/{driver:?}"
            );
        }
    }
}

#[test]
fn repeated_runs_do_not_accumulate_stats_or_traffic() {
    let pg = partitioned();
    let cluster = Cluster::new(pg);
    let pattern = queries::query_by_name("q1").expect("known query");
    // serial driver, one worker, no stealing: every statistic — including
    // the communication-volume ones — is deterministic, so the second run
    // must reproduce the first *exactly*, not doubled
    let config = RadsConfig {
        enable_load_sharing: false,
        round_driver: RoundDriver::Serial,
        workers: 1,
        ..RadsConfig::default()
    };
    let first = run_rads(&cluster, &pattern, &config);
    let second = run_rads(&cluster, &pattern, &config);
    assert_eq!(first.total_embeddings, second.total_embeddings);
    assert_eq!(
        first.traffic, second.traffic,
        "traffic counters carried over from the first run"
    );
    for (machine, (a, b)) in first.per_machine.iter().zip(&second.per_machine).enumerate() {
        assert_eq!(a.count, b.count, "machine {machine} count drifted");
        assert_eq!(a.stats, b.stats, "machine {machine} EngineStats carried state over");
    }
}
