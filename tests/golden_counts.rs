//! Golden-count regression fixtures: the embedding counts of every standard
//! (q1–q8) and clique (c1–c4) query on all four dataset stand-ins, at a
//! fixed scale and seed, pinned in `tests/golden_counts.tsv`.
//!
//! The recompute-style suites (`distributed_correctness`, properties) verify
//! that every system agrees with the single-machine enumerator — but if the
//! *enumerator itself* regresses, they all agree on the wrong number. This
//! suite compares against committed constants instead, and reports every
//! mismatch in one readable expected-vs-actual table rather than stopping at
//! the first.

use std::collections::BTreeMap;

use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;
use rads_single::count_embeddings;

/// Must match the generation parameters recorded in the fixture header.
const SCALE: f64 = 0.05;
const SEED: u64 = 42;

const FIXTURE: &str = include_str!("golden_counts.tsv");

fn parse_fixture() -> BTreeMap<(String, String), u64> {
    let mut expected = BTreeMap::new();
    for (lineno, line) in FIXTURE.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let (Some(dataset), Some(query), Some(count)) =
            (fields.next(), fields.next(), fields.next())
        else {
            panic!("golden_counts.tsv line {}: expected 3 tab-separated fields: {line:?}",
                lineno + 1);
        };
        let count: u64 = count
            .parse()
            .unwrap_or_else(|_| panic!("golden_counts.tsv line {}: bad count {count:?}", lineno + 1));
        let prev = expected.insert((dataset.to_string(), query.to_string()), count);
        assert!(prev.is_none(), "duplicate fixture row for {dataset}/{query}");
    }
    expected
}

#[test]
fn embedding_counts_match_the_committed_fixture() {
    let expected = parse_fixture();
    // the fixture must cover the full matrix: 4 datasets x 12 queries
    assert_eq!(expected.len(), 48, "fixture does not cover 4 datasets x 12 queries");

    let mut mismatches: Vec<String> = Vec::new();
    let mut checked = 0;
    for kind in DatasetKind::all() {
        let dataset = generate(kind, Scale(SCALE), SEED);
        for nq in queries::standard_query_set().into_iter().chain(queries::clique_query_set()) {
            let key = (kind.name().to_string(), nq.name.to_string());
            let Some(&golden) = expected.get(&key) else {
                mismatches.push(format!(
                    "{:<12} {:<4} missing from fixture (actual {})",
                    kind.name(),
                    nq.name,
                    count_embeddings(&dataset.graph, &nq.pattern)
                ));
                continue;
            };
            let actual = count_embeddings(&dataset.graph, &nq.pattern);
            checked += 1;
            if actual != golden {
                mismatches.push(format!(
                    "{:<12} {:<4} expected {:>10}  actual {:>10}  ({:+})",
                    kind.name(),
                    nq.name,
                    golden,
                    actual,
                    actual as i64 - golden as i64,
                ));
            }
        }
    }
    assert_eq!(checked, 48);
    assert!(
        mismatches.is_empty(),
        "{} golden-count mismatch(es) — either the enumerator or a generator regressed, \
         or an intentional change needs the fixture regenerated:\n  dataset      query    \
         expected      actual\n  {}",
        mismatches.len(),
        mismatches.join("\n  ")
    );
}

#[test]
fn distributed_counts_match_the_fixture_on_a_spot_check() {
    // The full 48-cell matrix through `run_rads` would be slow; one
    // non-trivial cell per dataset keeps the distributed path pinned to the
    // same committed constants.
    use rads::prelude::*;
    use std::sync::Arc;

    let expected = parse_fixture();
    for (kind, qname) in [
        (DatasetKind::RoadNet, "q1"),
        (DatasetKind::Dblp, "q2"),
        (DatasetKind::LiveJournal, "c1"),
        (DatasetKind::Uk2002, "q2"),
    ] {
        let dataset = generate(kind, Scale(SCALE), SEED);
        let pattern = queries::query_by_name(qname).unwrap();
        let golden = expected[&(kind.name().to_string(), qname.to_string())];
        let partitioning = HashPartitioner.partition(&dataset.graph, 3);
        let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&dataset.graph, partitioning)));
        let outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
        assert_eq!(
            outcome.total_embeddings,
            golden,
            "{} {qname}: distributed count deviates from the committed golden count",
            kind.name()
        );
    }
}
