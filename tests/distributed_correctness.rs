//! Cross-crate integration tests: every distributed system in the workspace
//! must produce exactly the single-machine ground truth on every query of the
//! paper's query set, for several datasets, partitioners and cluster sizes.

use std::sync::Arc;

use rads::prelude::*;
use rads_graph::queries;

fn cluster_with(graph: &Graph, machines: usize, partitioner: &dyn Partitioner) -> Cluster {
    let partitioning = partitioner.partition(graph, machines);
    Cluster::new(Arc::new(PartitionedGraph::build(graph, partitioning)))
}

#[test]
fn all_systems_agree_on_all_standard_queries() {
    let graph = rads::graph::generators::barabasi_albert(90, 3, 17);
    let cluster = cluster_with(&graph, 3, &HashPartitioner);
    let index = CliqueIndex::build(&graph, 4);
    for nq in queries::standard_query_set() {
        let expected = count_embeddings(&graph, &nq.pattern);
        let rads = run_rads(&cluster, &nq.pattern, &RadsConfig::default()).total_embeddings;
        let psgl = run_psgl(&cluster, &nq.pattern).total_embeddings;
        let twintwig = run_twintwig(&cluster, &nq.pattern).total_embeddings;
        let seed = run_seed(&cluster, &graph, &nq.pattern).total_embeddings;
        let crystal = run_crystal(&cluster, &graph, &nq.pattern, &index).total_embeddings;
        assert_eq!(rads, expected, "RADS {}", nq.name);
        assert_eq!(psgl, expected, "PSgL {}", nq.name);
        assert_eq!(twintwig, expected, "TwinTwig {}", nq.name);
        assert_eq!(seed, expected, "SEED {}", nq.name);
        assert_eq!(crystal, expected, "Crystal {}", nq.name);
    }
}

#[test]
fn all_systems_agree_on_clique_queries() {
    let graph = rads::graph::generators::barabasi_albert(70, 4, 23);
    let cluster = cluster_with(&graph, 4, &HashPartitioner);
    let index = CliqueIndex::build(&graph, 4);
    for nq in queries::clique_query_set() {
        let expected = count_embeddings(&graph, &nq.pattern);
        assert_eq!(
            run_rads(&cluster, &nq.pattern, &RadsConfig::default()).total_embeddings,
            expected,
            "RADS {}",
            nq.name
        );
        assert_eq!(
            run_seed(&cluster, &graph, &nq.pattern).total_embeddings,
            expected,
            "SEED {}",
            nq.name
        );
        assert_eq!(
            run_crystal(&cluster, &graph, &nq.pattern, &index).total_embeddings,
            expected,
            "Crystal {}",
            nq.name
        );
    }
}

#[test]
fn rads_is_correct_across_partitioners_and_cluster_sizes() {
    let graph = rads::graph::generators::community_graph(4, 16, 0.3, 0.02, 31);
    let pattern = queries::q4();
    let expected = count_embeddings(&graph, &pattern);
    for machines in [1usize, 2, 5, 8] {
        for partitioner in [
            &HashPartitioner as &dyn Partitioner,
            &BfsPartitioner as &dyn Partitioner,
            &LabelPropagationPartitioner::default() as &dyn Partitioner,
        ] {
            let cluster = cluster_with(&graph, machines, partitioner);
            let outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
            assert_eq!(
                outcome.total_embeddings,
                expected,
                "{} with {machines} machines",
                partitioner.name()
            );
        }
    }
}

#[test]
fn rads_collected_embeddings_match_single_machine_exactly() {
    let graph = rads::graph::generators::barabasi_albert(60, 3, 5);
    let cluster = cluster_with(&graph, 3, &BfsPartitioner);
    for nq in [queries::standard_query_set().remove(1), queries::standard_query_set().remove(3)] {
        let config = RadsConfig { collect_embeddings: true, ..Default::default() };
        let outcome = run_rads(&cluster, &nq.pattern, &config);
        let mut got = outcome.all_embeddings();
        let mut expected = collect_embeddings(&graph, &nq.pattern);
        got.sort();
        expected.sort();
        assert_eq!(got, expected, "{}", nq.name);
    }
}

#[test]
fn sme_dominates_on_road_networks_and_traffic_stays_low() {
    let dataset = generate(DatasetKind::RoadNet, Scale(0.1), 3);
    let cluster = cluster_with(&dataset.graph, 4, &LabelPropagationPartitioner::default());
    let pattern = queries::q1();
    // workers pinned to 1: traffic volumes are schedule-dependent with an
    // intra-machine pool (worker-private caches may duplicate fetches); the
    // budget is pinned because a tiny RADS_MEMORY_BUDGET shrinks the cache
    // allowance and the resulting re-fetches would invalidate the traffic
    // comparison this test makes
    let config = RadsConfig {
        memory_budget: rads_core::MemoryBudget::default(),
        ..RadsConfig::with_workers(1)
    };
    let rads = run_rads(&cluster, &pattern, &config);
    let psgl = run_psgl(&cluster, &pattern);
    assert_eq!(rads.total_embeddings, psgl.total_embeddings);
    // the headline RoadNet claims: most work is local and RADS ships less
    // data than the exploration baseline
    assert!(rads.sme_embeddings() * 2 >= rads.total_embeddings);
    assert!(rads.traffic.total_bytes <= psgl.traffic.total_bytes);
}

#[test]
fn baselines_ship_more_intermediate_state_than_rads_on_dense_graphs() {
    let dataset = generate(DatasetKind::LiveJournal, Scale(0.03), 9);
    let cluster = cluster_with(&dataset.graph, 4, &HashPartitioner);
    let pattern = queries::q4();
    // workers pinned to 1 and budget pinned, as above: the compared
    // quantity is traffic
    let config = RadsConfig {
        memory_budget: rads_core::MemoryBudget::default(),
        ..RadsConfig::with_workers(1)
    };
    let rads = run_rads(&cluster, &pattern, &config);
    let twintwig = run_twintwig(&cluster, &pattern);
    assert_eq!(rads.total_embeddings, twintwig.total_embeddings);
    assert!(
        twintwig.traffic.total_bytes > rads.traffic.total_bytes,
        "TwinTwig shipped {} bytes, RADS {} bytes",
        twintwig.traffic.total_bytes,
        rads.traffic.total_bytes
    );
}

#[test]
fn rads_respects_plan_overrides_from_the_fig13_ablation() {
    let graph = rads::graph::generators::barabasi_albert(60, 3, 29);
    let cluster = cluster_with(&graph, 3, &BfsPartitioner);
    let pattern = queries::q6();
    let expected = count_embeddings(&graph, &pattern);
    for seed in 0..4u64 {
        for plan in [
            rads::plan::random_star_plan(&pattern, seed),
            rads::plan::random_min_round_plan(&pattern, seed),
        ] {
            let config = RadsConfig { plan_override: Some(plan), ..Default::default() };
            assert_eq!(run_rads(&cluster, &pattern, &config).total_embeddings, expected);
        }
    }
}
