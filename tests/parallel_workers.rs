//! Property test for the intra-machine worker pool: `run_rads` must return
//! exactly the single-machine ground-truth embedding count for **every**
//! worker count, across datasets, seeds, machine counts and the full q1–q8
//! query set. This is the determinism contract of `RadsConfig::workers`.

use proptest::prelude::*;

use rads::prelude::*;
use rads_graph::queries;

const QUERIES: [&str; 8] = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"];

proptest! {
    // Each case runs 4 full distributed enumerations plus the ground truth,
    // so the case count stays moderate; the strategy space still covers all
    // 4 datasets x 8 queries over varying seeds and cluster sizes.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_worker_count_matches_single_machine_ground_truth(
        dataset_idx in 0usize..4,
        query_idx in 0usize..8,
        seed in 0u64..1_000,
        machines in 2usize..5,
    ) {
        let kind = DatasetKind::all()[dataset_idx];
        // Tiny per-dataset scales: correctness, not performance, is under
        // test here, and the dense stand-ins explode combinatorially (q5–q7
        // have hundreds of thousands of embeddings already on a 32-vertex
        // BA(m = 8) graph, which debug-mode enumeration feels keenly).
        let scale = match kind {
            DatasetKind::LiveJournal => Scale(0.006),
            DatasetKind::Uk2002 => Scale(0.003),
            _ => Scale(0.015),
        };
        let dataset = generate(kind, scale, seed);
        let pattern = queries::query_by_name(QUERIES[query_idx]).unwrap();
        let expected = count_embeddings(&dataset.graph, &pattern);

        let partitioning =
            LabelPropagationPartitioner::default().partition(&dataset.graph, machines);
        let cluster = Cluster::new(std::sync::Arc::new(PartitionedGraph::build(
            &dataset.graph,
            partitioning,
        )));
        for workers in [1usize, 2, 4, 8] {
            let config = rads::core::RadsConfig {
                steal_granularity: 1 + (seed as usize % 8),
                ..rads::core::RadsConfig::with_workers(workers)
            };
            let outcome = run_rads(&cluster, &pattern, &config);
            prop_assert_eq!(
                outcome.total_embeddings,
                expected,
                "{} on {} with {} machines, workers={}",
                QUERIES[query_idx],
                kind.name(),
                machines,
                workers
            );
        }
    }
}
