//! The metrics registry is process-global and *cumulative* — that is what
//! a Prometheus scraper expects — so a resident cluster cannot read per-run
//! figures off the raw counters: after two runs every counter holds the sum
//! of both. [`MetricsSnapshot::delta_since`] is the epoch mechanism serving
//! mode uses instead; this regression test pins it with two back-to-back
//! runs of the same query on the same cluster.
//!
//! A single `#[test]` on purpose: the registry and the metrics-enabled flag
//! are process-global, and a second test thread running a query would
//! inflate the deltas. Both epoch scenarios — serialized runs and
//! *overlapping* per-query epochs off one shared registry (the
//! [`EpochLedger`] serving mode uses under `--max-concurrent-queries`) —
//! therefore live inside the one test body.

use std::sync::Arc;

use rads::prelude::*;
use rads_graph::queries;
use rads_obs::{EpochLedger, MetricsSnapshot, Registry};

/// Counters whose per-run value is schedule-independent — identical across
/// repeated runs of the same `(cluster, pattern, config)`.
const STABLE_COUNTERS: [&str; 4] = [
    "rads_groups_created_total",
    "rads_sme_embeddings_total",
    "rads_distributed_embeddings_total",
    "rads_trie_nodes_created_total",
];

fn delta_of_one_run(cluster: &Cluster, pattern: &rads_graph::Pattern) -> MetricsSnapshot {
    let before = Registry::global().snapshot();
    run_rads(cluster, pattern, &RadsConfig::default());
    Registry::global().snapshot().delta_since(&before)
}

#[test]
fn back_to_back_runs_report_identical_deltas_off_the_cumulative_registry() {
    rads_obs::set_metrics_enabled(true);
    let dataset = generate(DatasetKind::Dblp, Scale(0.05), 7);
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, 3);
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&dataset.graph, partitioning)));
    let pattern = queries::query_by_name("q1").expect("known query");

    let start = Registry::global().snapshot();
    let first = delta_of_one_run(&cluster, &pattern);
    let second = delta_of_one_run(&cluster, &pattern);
    let cumulative = Registry::global().snapshot().delta_since(&start);

    for name in STABLE_COUNTERS {
        let a = first.scalar(name).unwrap_or_else(|| panic!("{name} missing from first delta"));
        let b = second.scalar(name).unwrap_or_else(|| panic!("{name} missing from second delta"));
        assert!(a > 0, "{name}: a q1 run must move this counter");
        // the second run's *delta* equals the first's — the registry kept
        // accumulating underneath, but delta_since carves out one epoch
        assert_eq!(a, b, "{name}: second run's delta is polluted by the first run");
        // and the raw registry really does hold the sum of both epochs
        let total = cumulative.scalar(name).expect("counter exists cumulatively");
        assert_eq!(total, a + b, "{name}: cumulative registry disagrees with the epoch sum");
    }

    // --- overlapping epochs ------------------------------------------------
    // The racy pre-envelope scheme kept ONE `previous snapshot` watermark:
    // query B beginning mid-flight of query A would move A's baseline, so
    // A's delta silently lost everything recorded before B arrived. The
    // EpochLedger keys each baseline by query id instead. Overlap two
    // epochs around a third run and pin both properties: the inner epoch
    // (nothing ran inside it) reports zero, and the outer epoch still
    // reports the full run — opening and closing the inner epoch must not
    // perturb it.
    let ledger = EpochLedger::new();
    ledger.begin(1, Registry::global().snapshot());
    run_rads(&cluster, &pattern, &RadsConfig::default());
    // query 2's epoch opens while query 1's is still in flight...
    ledger.begin(2, Registry::global().snapshot());
    assert_eq!(ledger.open(), 2, "both epochs are in flight");
    let outer = ledger.end(1, &Registry::global().snapshot());
    let inner = ledger.end(2, &Registry::global().snapshot());
    for name in STABLE_COUNTERS {
        let reference = first.scalar(name).expect("counter exists");
        assert_eq!(
            outer.scalar(name),
            Some(reference),
            "{name}: the overlapping epoch stole the outer epoch's baseline"
        );
        // nothing ran between query 2's begin and end: its delta is zero
        // (or the counter is absent from the delta entirely)
        assert_eq!(
            inner.scalar(name).unwrap_or(0),
            0,
            "{name}: an idle overlapped epoch reported another query's work"
        );
    }
    assert_eq!(ledger.open(), 0, "ended epochs must leave the ledger");
}
