//! Pins the intersection-based candidate-generation kernel
//! ([`rads::single::CandidateKernel::Intersect`], the default) against the
//! pre-intersection probe kernel across the four dataset stand-ins, every
//! standard and clique query, and multiple generator seeds: identical
//! embeddings in identical order, identical per-level search-tree node
//! counts. The probe kernel is the pre-optimization code path, kept exactly
//! so this equivalence stays checkable.

use rads::prelude::*;
use rads::single::{CandidateKernel, EnumerationConfig, Enumerator};
use rads_graph::queries;

/// Both kernels walk the search tree in the same order, so capping the run
/// keeps the comparison exact over the compared prefix while holding the
/// densest stand-ins (millions of embeddings) to test-suite-friendly sizes.
const MAX_RESULTS: u64 = 200_000;

/// Streams the run into an order-sensitive FNV-1a digest instead of
/// collecting embeddings: any difference in the embeddings *or their order*
/// changes the digest.
fn run_kernel(graph: &Graph, pattern: &Pattern, kernel: CandidateKernel) -> (u64, u64, Vec<u64>) {
    let mut digest: u64 = 0xcbf29ce484222325;
    let stats = Enumerator::with_config(
        graph,
        pattern,
        EnumerationConfig { kernel, max_results: Some(MAX_RESULTS), ..Default::default() },
    )
    .run(|m| {
        for &v in m {
            digest ^= v as u64 + 1;
            digest = digest.wrapping_mul(0x100000001b3);
        }
        true
    });
    (digest, stats.embeddings, stats.nodes_per_level)
}

fn assert_kernels_agree(graph: &Graph, pattern: &Pattern, label: &str) {
    let (fast_digest, fast_count, fast_levels) =
        run_kernel(graph, pattern, CandidateKernel::Intersect);
    let (probe_digest, probe_count, probe_levels) =
        run_kernel(graph, pattern, CandidateKernel::Probe);
    assert_eq!(fast_count, probe_count, "{label}: embedding count diverged");
    assert_eq!(fast_digest, probe_digest, "{label}: embeddings or their order diverged");
    assert_eq!(fast_levels, probe_levels, "{label}: search-tree shape diverged");
}

#[test]
fn kernels_agree_on_every_dataset_standin_and_standard_query() {
    for kind in DatasetKind::all() {
        // UK2002's stand-in is by far the densest (Barabási–Albert m = 8);
        // shrink it further so the debug-mode suite stays fast.
        let scale = if kind == DatasetKind::Uk2002 { Scale(0.008) } else { Scale(0.02) };
        for seed in [3u64, 11] {
            let dataset = generate(kind, scale, seed);
            for nq in queries::standard_query_set() {
                assert_kernels_agree(
                    &dataset.graph,
                    &nq.pattern,
                    &format!("{}/seed {seed}/{}", kind.name(), nq.name),
                );
            }
        }
    }
}

#[test]
fn kernels_agree_on_clique_queries() {
    // the clique queries are where the intersection path diverges most from
    // the probe path (every position has multiple back edges)
    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let dataset = generate(kind, Scale(0.03), 7);
        for nq in queries::clique_query_set() {
            assert_kernels_agree(
                &dataset.graph,
                &nq.pattern,
                &format!("{}/{}", kind.name(), nq.name),
            );
        }
    }
}
