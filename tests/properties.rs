//! Property-based tests (proptest) over the core data structures and the
//! end-to-end distributed invariants.

use std::sync::Arc;

use proptest::prelude::*;

use rads::prelude::*;
use rads_core::trie::EmbeddingTrie;
use rads_graph::queries;
use rads_graph::SymmetryBreaking;

/// Strategy: a random connected-ish sparse graph given as (n, edge list).
fn arb_graph(max_n: usize, max_extra_edges: usize) -> impl Strategy<Value = Graph> {
    (4..max_n).prop_flat_map(move |n| {
        let spanning: Vec<(usize, usize)> = (1..n).map(|v| (v, v / 2)).collect();
        proptest::collection::vec((0..n, 0..n), 0..max_extra_edges).prop_map(move |extra| {
            let mut b = GraphBuilder::new(n);
            for &(u, v) in &spanning {
                b.add_edge(u as VertexId, v as VertexId);
            }
            for &(u, v) in &extra {
                if u != v {
                    b.add_edge(u as VertexId, v as VertexId);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed RADS count equals the single-machine ground truth on
    /// arbitrary graphs, partitioner and machine counts.
    #[test]
    fn rads_matches_ground_truth_on_random_graphs(
        graph in arb_graph(40, 80),
        machines in 1usize..5,
        query_idx in 0usize..4,
    ) {
        let patterns = [
            queries::query_by_name("triangle").unwrap(),
            queries::q1(),
            queries::q2(),
            queries::q4(),
        ];
        let pattern = &patterns[query_idx];
        let expected = count_embeddings(&graph, pattern);
        let partitioning = HashPartitioner.partition(&graph, machines);
        let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&graph, partitioning)));
        let outcome = run_rads(&cluster, pattern, &RadsConfig::default());
        prop_assert_eq!(outcome.total_embeddings, expected);
    }

    /// Partitioners always produce a complete, in-range assignment and never
    /// leave a machine empty (for machine counts up to the vertex count).
    #[test]
    fn partitioners_produce_valid_assignments(
        graph in arb_graph(60, 60),
        machines in 1usize..6,
    ) {
        for partitioner in [
            &HashPartitioner as &dyn Partitioner,
            &BfsPartitioner as &dyn Partitioner,
            &LabelPropagationPartitioner::default() as &dyn Partitioner,
        ] {
            let p = partitioner.partition(&graph, machines);
            prop_assert_eq!(p.vertex_count(), graph.vertex_count());
            prop_assert_eq!(p.num_machines(), machines);
            let sizes = p.sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), graph.vertex_count());
            if graph.vertex_count() >= machines {
                prop_assert!(sizes.iter().all(|&s| s > 0), "{}", partitioner.name());
            }
        }
    }

    /// Border distances satisfy their defining property: a vertex with border
    /// distance d has no foreign neighbour within fewer than d hops inside
    /// the partition, and border vertices have distance 0.
    #[test]
    fn border_distance_definition_holds(
        graph in arb_graph(50, 70),
        machines in 2usize..5,
    ) {
        let partitioning = BfsPartitioner.partition(&graph, machines);
        let pg = PartitionedGraph::build(&graph, partitioning);
        for m in 0..machines {
            let local = pg.local(m);
            for &v in local.owned_vertices() {
                let bd = local.border_distance(v).unwrap();
                let is_border = local.is_border(v).unwrap();
                prop_assert_eq!(is_border, bd == 0);
            }
        }
    }

    /// The embedding trie stores and retrieves arbitrary result sets
    /// faithfully, and removal never corrupts the remaining results.
    #[test]
    fn trie_roundtrips_and_removals(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u32..50, 3..6),
            1..40,
        ),
        remove_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut trie = EmbeddingTrie::new();
        let mut leaves = Vec::new();
        for row in &rows {
            let root = trie.add_root(row[0]);
            let leaf = trie.add_path(root, &row[1..]);
            leaves.push(leaf);
        }
        // every row can be read back (duplicate rows produce identical reads)
        for (row, &leaf) in rows.iter().zip(&leaves) {
            prop_assert_eq!(&trie.result(leaf), row);
        }
        // remove a subset, survivors stay intact
        let mut survivors = Vec::new();
        for (i, &leaf) in leaves.iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) {
                trie.remove(leaf);
            } else {
                survivors.push((i, leaf));
            }
        }
        for (i, leaf) in survivors {
            if trie.is_live(leaf) {
                prop_assert_eq!(&trie.result(leaf), &rows[i]);
            }
        }
        prop_assert!(trie.node_count() <= trie.peak_node_count());
    }

    /// The plan computed for every standard query always has exactly c_P
    /// rounds, covers every edge once, and its matching order is a valid
    /// permutation with the prefix property.
    #[test]
    fn best_plans_are_structurally_sound(query_idx in 0usize..8) {
        let nq = &queries::standard_query_set()[query_idx];
        let plan = best_plan(&nq.pattern, &PlannerConfig::default());
        prop_assert_eq!(plan.rounds(), nq.pattern.connected_domination_number());
        prop_assert_eq!(plan.edge_classes().len(), nq.pattern.edge_count());
        let mut order = plan.matching_order().to_vec();
        order.sort_unstable();
        let expected: Vec<usize> = (0..nq.pattern.vertex_count()).collect();
        prop_assert_eq!(order, expected);
    }

    /// The intersection candidate-generation kernel and the pre-intersection
    /// probe kernel walk the same search tree on arbitrary graphs: identical
    /// embeddings in identical order, identical per-level node counts.
    #[test]
    fn intersection_and_probe_kernels_agree(
        graph in arb_graph(40, 120),
        query_idx in 0usize..5,
    ) {
        use rads::single::{CandidateKernel, EnumerationConfig, Enumerator};
        let patterns = [
            queries::query_by_name("triangle").unwrap(),
            queries::q1(),
            queries::q2(),
            queries::q5(),
            queries::c1(),
        ];
        let pattern = &patterns[query_idx];
        let run = |kernel: CandidateKernel| {
            let mut embeddings = Vec::new();
            let stats = Enumerator::with_config(
                &graph,
                pattern,
                EnumerationConfig { kernel, ..Default::default() },
            )
            .run(|m| {
                embeddings.push(m.to_vec());
                true
            });
            (embeddings, stats.nodes_per_level)
        };
        let (fast, fast_levels) = run(CandidateKernel::Intersect);
        let (probe, probe_levels) = run(CandidateKernel::Probe);
        prop_assert_eq!(fast, probe);
        prop_assert_eq!(fast_levels, probe_levels);
    }

    /// Structural trie invariants under arbitrary interleaved insert/remove
    /// scripts, checked against a shadow tree that implements the specified
    /// cascade semantics independently:
    ///
    /// * `live_count` always equals the number of live nodes, which are
    ///   exactly the ancestors of the live leaves (removal prunes childless
    ///   ancestors, so no orphan interior node survives);
    /// * every live node's `child_count` matches its actual live children;
    /// * node ids stay unique and results stay correct across slab reuse
    ///   (freed ids may be re-allocated, but no two live nodes ever share an
    ///   id and every live node's root-to-node path matches the shadow).
    #[test]
    fn trie_cascade_invariants_under_random_scripts(
        ops in proptest::collection::vec((0u8..8, any::<u16>(), 0u32..40), 1..120),
    ) {
        use std::collections::{HashMap, HashSet};

        #[derive(Clone)]
        struct ShadowNode {
            vertex: u32,
            parent: Option<u32>,
            children: HashSet<u32>,
        }
        let mut trie = EmbeddingTrie::new();
        let mut shadow: HashMap<u32, ShadowNode> = HashMap::new();

        for (kind, pick, vertex) in ops {
            let live: Vec<u32> = {
                let mut ids: Vec<u32> = shadow.keys().copied().collect();
                ids.sort_unstable();
                ids
            };
            match kind {
                // add a root
                0 | 1 => {
                    let id = trie.add_root(vertex);
                    prop_assert!(!shadow.contains_key(&id), "id {id} double-allocated");
                    shadow.insert(id, ShadowNode { vertex, parent: None, children: HashSet::new() });
                }
                // add a child of a random live node
                2..=4 if !live.is_empty() => {
                    let parent = live[pick as usize % live.len()];
                    let id = trie.add_child(parent, vertex);
                    prop_assert!(!shadow.contains_key(&id), "id {id} double-allocated");
                    shadow.get_mut(&parent).unwrap().children.insert(id);
                    shadow.insert(
                        id,
                        ShadowNode { vertex, parent: Some(parent), children: HashSet::new() },
                    );
                }
                // remove a random live leaf (with the specified cascade)
                _ if !live.is_empty() => {
                    let leaves: Vec<u32> = live
                        .iter()
                        .copied()
                        .filter(|id| shadow[id].children.is_empty())
                        .collect();
                    if leaves.is_empty() {
                        continue;
                    }
                    let leaf = leaves[pick as usize % leaves.len()];
                    trie.remove(leaf);
                    // shadow cascade: delete the leaf, then every ancestor
                    // whose child set drains
                    let mut cur = leaf;
                    loop {
                        let parent = shadow.remove(&cur).unwrap().parent;
                        let Some(p) = parent else { break };
                        let siblings = shadow.get_mut(&p).unwrap();
                        siblings.children.remove(&cur);
                        if !siblings.children.is_empty() {
                            break;
                        }
                        cur = p;
                    }
                    // double removal is a no-op
                    trie.remove(leaf);
                    prop_assert!(!trie.is_live(leaf));
                }
                _ => {}
            }

            // -- invariants after every operation ------------------------------
            prop_assert_eq!(trie.node_count(), shadow.len());
            for (&id, node) in &shadow {
                prop_assert!(trie.is_live(id));
                prop_assert_eq!(trie.vertex(id), node.vertex);
                prop_assert_eq!(trie.parent(id), node.parent);
                prop_assert_eq!(trie.child_count(id), node.children.len());
            }
            // live nodes are exactly the ancestors of live leaves: every
            // childless shadow node is a leaf, and walking all leaf-to-root
            // paths must visit every live node exactly through the shadow
            let mut reachable: HashSet<u32> = HashSet::new();
            for (&id, node) in &shadow {
                if node.children.is_empty() {
                    let mut cur = Some(id);
                    while let Some(c) = cur {
                        reachable.insert(c);
                        cur = shadow[&c].parent;
                    }
                }
            }
            prop_assert_eq!(reachable.len(), trie.node_count(), "orphan interior nodes survive");
        }

        // results stay correct across all the slab reuse the script caused
        for &id in shadow.keys() {
            let mut expected = Vec::new();
            let mut cur = Some(id);
            while let Some(c) = cur {
                expected.push(shadow[&c].vertex);
                cur = shadow[&c].parent;
            }
            expected.reverse();
            prop_assert_eq!(trie.result(id), expected);
        }
    }

    /// Counting with symmetry breaking times the automorphism count equals
    /// counting without symmetry breaking (every query, random graphs).
    #[test]
    fn symmetry_breaking_reduction_factor(graph in arb_graph(30, 60), query_idx in 0usize..3) {
        let patterns = [queries::q1(), queries::q2(), queries::query_by_name("triangle").unwrap()];
        let pattern = &patterns[query_idx];
        let with = count_embeddings(&graph, pattern);
        let config = rads::single::EnumerationConfig {
            disable_symmetry_breaking: true,
            ..Default::default()
        };
        let without = rads::single::Enumerator::with_config(&graph, pattern, config)
            .run(|_| true)
            .embeddings;
        let autos = SymmetryBreaking::new(pattern).automorphism_count() as u64;
        prop_assert_eq!(without, with * autos);
    }
}
