//! The `RADS_*` environment is a *startup* input, not a live control
//! surface: [`RadsConfig::from_env`] snapshots every env-sensitive knob at
//! construction and never consults the environment again, and
//! [`Cluster::new`] does the same for `RADS_TRANSPORT`. A resident serve
//! cluster holds both for hours — if any knob were re-read lazily, an env
//! change (or a test harness setting variables for a *different* process it
//! is about to spawn) would silently change query behaviour mid-stream.
//! This test pins the snapshot semantics by flipping each variable after
//! construction and asserting the held values do not move.
//!
//! A single `#[test]` on purpose: it mutates process-global environment
//! variables, which is only safe while no sibling test thread reads them
//! concurrently. Keep this file to one test.

use std::sync::Arc;

use rads::prelude::*;
use rads_core::{MemoryBudget, RoundDriver};
use rads_graph::generators::ring_lattice;
use rads_partition::BfsPartitioner;

#[test]
fn env_knobs_are_snapshotted_at_construction_not_reread_per_use() {
    std::env::set_var("RADS_MEMORY_BUDGET", "64k");
    std::env::set_var("RADS_ROUND_DRIVER", "serial");
    std::env::set_var("RADS_WORKERS", "3");
    std::env::set_var("RADS_TRANSPORT", "in-process");

    let held = RadsConfig::from_env().expect("valid env");
    let graph = ring_lattice(12, 1);
    let partitioning = BfsPartitioner.partition(&graph, 2);
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&graph, partitioning)));

    assert_eq!(held.memory_budget, MemoryBudget::from_bytes(64 * 1024));
    assert_eq!(held.round_driver, RoundDriver::Serial);
    assert_eq!(held.workers, 3);
    assert_eq!(cluster.transport_kind(), TransportKind::InProcess);

    // flip every variable: the held config and cluster must not move
    std::env::set_var("RADS_MEMORY_BUDGET", "128k");
    std::env::set_var("RADS_ROUND_DRIVER", "async");
    std::env::set_var("RADS_WORKERS", "5");
    std::env::set_var("RADS_TRANSPORT", "tcp");

    assert_eq!(
        held.memory_budget,
        MemoryBudget::from_bytes(64 * 1024),
        "memory budget re-read the environment after construction"
    );
    assert_eq!(held.round_driver, RoundDriver::Serial, "round driver re-read the environment");
    assert_eq!(held.workers, 3, "worker count re-read the environment");
    assert_eq!(
        cluster.transport_kind(),
        TransportKind::InProcess,
        "the cluster re-read RADS_TRANSPORT after construction"
    );

    // while a *fresh* snapshot naturally sees the new values
    let fresh = RadsConfig::from_env().expect("valid env");
    assert_eq!(fresh.memory_budget, MemoryBudget::from_bytes(128 * 1024));
    assert_eq!(fresh.round_driver, RoundDriver::Async);
    assert_eq!(fresh.workers, 5);
    let fresh_cluster = Cluster::new(cluster.partitioned().clone());
    assert_eq!(fresh_cluster.transport_kind(), TransportKind::Tcp);

    for var in ["RADS_MEMORY_BUDGET", "RADS_ROUND_DRIVER", "RADS_WORKERS", "RADS_TRANSPORT"] {
        std::env::remove_var(var);
    }
}
