//! Budget-sweep correctness: embedding counts are bit-identical across every
//! memory budget `Φ` (from pathologically tiny to unlimited), both grouping
//! strategies and multiple worker counts. The budget decides *how* the work
//! is chunked — region-group sizes, governor splits, cache evictions — and
//! must never decide *what* is found; region groups partition the start
//! candidates no matter how often the governor re-splits them.

use std::sync::Arc;

use rads::prelude::*;
use rads_core::memory::MemoryBudget;
use rads_core::RegionGroupStrategy;
use rads_graph::queries;

fn sweep(graph: &Graph, pattern: &Pattern, machines: usize, label: &str) {
    let expected = count_embeddings(graph, pattern);
    let partitioning = HashPartitioner.partition(graph, machines);
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(graph, partitioning)));
    let budgets = [
        Some(1024),
        Some(64 * 1024),
        Some(4 * 1024 * 1024),
        None, // unlimited
    ];
    for budget_bytes in budgets {
        let memory_budget = match budget_bytes {
            Some(bytes) => MemoryBudget::from_bytes(bytes),
            None => MemoryBudget::unlimited(),
        };
        for strategy in [RegionGroupStrategy::Proximity, RegionGroupStrategy::Random] {
            for workers in [1, 4] {
                let config = RadsConfig {
                    memory_budget,
                    grouping: strategy,
                    ..RadsConfig::with_workers(workers)
                };
                let outcome = run_rads(&cluster, pattern, &config);
                assert_eq!(
                    outcome.total_embeddings, expected,
                    "{label}: budget {budget_bytes:?} x {strategy:?} x workers {workers} \
                     changed the count"
                );
                // a finite tracked peak respects the reported stats contract
                if budget_bytes.is_none() {
                    assert_eq!(outcome.governor_splits(), 0, "{label}: unlimited budget split");
                }
            }
        }
    }
}

#[test]
fn counts_are_budget_invariant_on_a_dense_power_law_graph() {
    // BA graphs have hubs, so the 1 KiB budget forces heavy governor
    // splitting on the multi-round queries.
    let graph = rads::graph::generators::barabasi_albert(110, 3, 31);
    for q in [queries::q2(), queries::q4()] {
        sweep(&graph, &q, 3, "barabasi_albert");
    }
}

#[test]
fn counts_are_budget_invariant_on_a_community_graph() {
    let graph = rads::graph::generators::community_graph(3, 13, 0.4, 0.03, 19);
    sweep(&graph, &queries::q5(), 2, "community");
}

#[test]
fn tight_budget_actually_engages_the_governor() {
    // Sanity check that the sweep above exercises what it claims to. A
    // governor split needs a group whose static estimate undershoots
    // reality, so this builds a miniature estimate trap: a sparse ring
    // (SM-E trains a small estimate on its interior) plus dense 8-cliques
    // whose vertices all sit on the partition border and explode in the
    // distributed phase.
    let ring = 60u32;
    let pods = 6u32;
    let pod_size = 8u32;
    let mut b = GraphBuilder::new((ring + pods * pod_size) as usize);
    for i in 0..ring {
        b.add_edge(i, (i + 1) % ring);
        b.add_edge(i, (i + 2) % ring);
    }
    for p in 0..pods {
        let base = ring + p * pod_size;
        for i in 0..pod_size {
            for j in i + 1..pod_size {
                b.add_edge(base + i, base + j);
            }
        }
        b.add_edge(base, ring / 2 + p % 4);
    }
    let graph = b.build();
    // ring halves to machines 0 and 1, pod vertices alternating (all border)
    let assignment: Vec<usize> = (0..graph.vertex_count() as u32)
        .map(|v| if v < ring { usize::from(v >= ring / 2) } else { (v - ring) as usize % 2 })
        .collect();
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(
        &graph,
        Partitioning::new(assignment, 2),
    )));
    let pattern = queries::q2();
    let expected = count_embeddings(&graph, &pattern);
    for workers in [1, 4] {
        let outcome = run_rads(
            &cluster,
            &pattern,
            &RadsConfig {
                memory_budget: MemoryBudget::from_bytes(16 * 1024),
                ..RadsConfig::with_workers(workers)
            },
        );
        assert_eq!(outcome.total_embeddings, expected, "workers {workers}");
        assert!(
            outcome.governor_splits() > 0,
            "workers {workers}: the 16 KiB budget never split a group"
        );
        assert!(
            outcome.peak_tracked_bytes() <= 16 * 1024,
            "workers {workers}: peak {} exceeds the budget",
            outcome.peak_tracked_bytes()
        );
    }
}
