//! Differential matrix for the round drivers: the async scatter/harvest
//! engine must be *bit-identical* to the serial oracle — same total count,
//! same per-machine counts, same embeddings (pinned by a digest of the
//! sorted embedding list) — across every dataset stand-in, the full
//! q1–q8 + c1–c4 query set, both cluster transports and both worker
//! configurations. Both drivers are additionally pinned to the
//! single-machine ground truth, so a bug that broke serial and async the
//! same way cannot hide.
//!
//! Only communication-volume statistics (cache hits/misses, request
//! counts, traffic bytes) are allowed to differ between the drivers: the
//! async driver prefetches one region group ahead, which shifts *when*
//! adjacency lists are fetched, never *what* is enumerated.

use std::sync::Arc;

use rads::prelude::*;
use rads_core::RoundDriver;
use rads_graph::queries;

/// FNV-1a over the sorted embedding list — a stable fingerprint that two
/// runs share iff they produced exactly the same embeddings.
fn digest(mut embeddings: Vec<Vec<VertexId>>) -> u64 {
    embeddings.sort();
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut mix = |byte: u8| {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for embedding in &embeddings {
        for &v in embedding {
            for byte in v.to_le_bytes() {
                mix(byte);
            }
        }
        mix(0xff); // embedding separator
    }
    hash
}

fn transports() -> &'static [TransportKind] {
    if cfg!(unix) {
        &[TransportKind::InProcess, TransportKind::Uds]
    } else {
        &[TransportKind::InProcess]
    }
}

/// Runs the full query set × transport × workers × driver matrix for one
/// dataset stand-in and checks every cell against the serial oracle and
/// the single-machine ground truth.
fn check_dataset(kind: DatasetKind, scale: f64, machines: usize, seed: u64) {
    // Above this count, materializing every embedding in eight runs per query
    // dominates the suite's wall clock (UK2002's stand-in is a dense BA graph
    // where q5 alone has millions of embeddings); those cells are pinned by
    // count only, which the same enumeration produces anyway.
    const DIGEST_CEILING: u64 = 100_000;
    let dataset = generate(kind, Scale(scale), seed);
    let partitioning =
        LabelPropagationPartitioner::default().partition(&dataset.graph, machines);
    let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
    for nq in queries::standard_query_set().into_iter().chain(queries::clique_query_set()) {
        let expected_count = count_embeddings(&dataset.graph, &nq.pattern);
        let collect = expected_count <= DIGEST_CEILING;
        let expected_digest =
            collect.then(|| digest(collect_embeddings(&dataset.graph, &nq.pattern)));
        for &transport in transports() {
            let cluster = Cluster::with_transport(pg.clone(), transport);
            for workers in [1usize, 4] {
                let config = |driver| RadsConfig {
                    collect_embeddings: collect,
                    workers,
                    ..RadsConfig::with_round_driver(driver)
                };
                let serial = run_rads(&cluster, &nq.pattern, &config(RoundDriver::Serial));
                let asynch = run_rads(&cluster, &nq.pattern, &config(RoundDriver::Async));
                let cell = format!(
                    "{} / {} / {transport:?} / {workers} workers",
                    dataset.profile.name, nq.name
                );
                assert_eq!(serial.total_embeddings, expected_count, "serial count, {cell}");
                assert_eq!(asynch.total_embeddings, expected_count, "async count, {cell}");
                // Per-machine attribution is NOT asserted here: checkR/shareR
                // load sharing redistributes groups by idleness, which is
                // timing-dependent under either driver (see
                // per_machine_attribution_matches_without_load_sharing).
                if let Some(expected_digest) = expected_digest {
                    assert_eq!(
                        digest(serial.all_embeddings()),
                        expected_digest,
                        "serial digest, {cell}"
                    );
                    assert_eq!(
                        digest(asynch.all_embeddings()),
                        expected_digest,
                        "async digest, {cell}"
                    );
                }
            }
        }
    }
}

#[test]
fn roadnet_async_matches_serial_everywhere() {
    check_dataset(DatasetKind::RoadNet, 0.05, 4, 11);
}

#[test]
fn dblp_async_matches_serial_everywhere() {
    check_dataset(DatasetKind::Dblp, 0.02, 4, 11);
}

#[test]
fn livejournal_async_matches_serial_everywhere() {
    check_dataset(DatasetKind::LiveJournal, 0.012, 4, 11);
}

#[test]
fn uk2002_async_matches_serial_everywhere() {
    check_dataset(DatasetKind::Uk2002, 0.004, 4, 11);
}

/// With load sharing off, region groups never move between machines, so
/// even the *per-machine* counts must be identical between the drivers.
#[test]
fn per_machine_attribution_matches_without_load_sharing() {
    let dataset = generate(DatasetKind::Dblp, Scale(0.02), 11);
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, 4);
    let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
    let cluster = Cluster::new(pg);
    for query in ["q1", "q4", "c1"] {
        let pattern = queries::query_by_name(query).expect("known query");
        for workers in [1usize, 4] {
            let config = |driver| RadsConfig {
                enable_load_sharing: false,
                workers,
                ..RadsConfig::with_round_driver(driver)
            };
            let serial = run_rads(&cluster, &pattern, &config(RoundDriver::Serial));
            let asynch = run_rads(&cluster, &pattern, &config(RoundDriver::Async));
            let serial_counts: Vec<u64> = serial.per_machine.iter().map(|m| m.count).collect();
            let async_counts: Vec<u64> = asynch.per_machine.iter().map(|m| m.count).collect();
            assert_eq!(serial_counts, async_counts, "{query} / {workers} workers");
        }
    }
}

/// The env toggle is honoured end-to-end: `RADS_ROUND_DRIVER` selects the
/// driver `RadsConfig::default()` runs with, and both settings agree.
#[test]
fn env_toggle_selects_the_driver() {
    assert_eq!(RoundDriver::parse("serial"), Some(RoundDriver::Serial));
    assert_eq!(RoundDriver::parse("async"), Some(RoundDriver::Async));
    assert_eq!(RoundDriver::parse("turbo"), None);
    // Not exercised via set_var here: the test harness is multi-threaded and
    // the default is read at config-construction time. The explicit-field
    // matrix above covers both drivers; the CI matrix runs the whole suite
    // under RADS_ROUND_DRIVER=serial to cover the env path.
    assert_eq!(RadsConfig::default().round_driver, RoundDriver::from_env().expect("valid driver env"));
}
