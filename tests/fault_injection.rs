//! Fault-injection layer over the async round engine: wrap every machine's
//! transport in a [`FaultTransport`] that delays, reorders and duplicates
//! responses, and prove the scatter/harvest loops still produce the exact
//! ground-truth counts. The harvest's only ordering assumption is that each
//! [`PendingResponse`] resolves to *its own* response — never that
//! responses arrive in issue order — so arbitrary completion inversion must
//! be invisible to everything but the fault counters.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use rads::prelude::*;
use rads_core::{run_rads_wrapped, RadsConfig as Config, RoundDriver};
use rads_graph::queries;
use rads_runtime::{
    Envelope, FaultPlan, FaultStats, FaultTransport, Request, Response, TrafficSnapshot,
    Transport, TransportError,
};

fn small_cluster(machines: usize) -> (Cluster, u64, Pattern) {
    let dataset = generate(DatasetKind::Dblp, Scale(0.02), 5);
    let pattern = queries::q4();
    let expected = count_embeddings(&dataset.graph, &pattern);
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, machines);
    let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
    (Cluster::new(pg), expected, pattern)
}

/// Runs the engine under `plan` on every machine and returns the outcome
/// plus the per-machine fault stats. `shared_pen` selects cross-peer
/// inversion (one pen for all peers) over the per-peer pens.
fn run_with_faults(
    cluster: &Cluster,
    pattern: &Pattern,
    config: &Config,
    plan: FaultPlan,
    shared_pen: bool,
) -> (rads_core::RadsOutcome, Vec<Arc<FaultStats>>) {
    let stats: Mutex<Vec<Arc<FaultStats>>> = Mutex::new(Vec::new());
    let outcome = run_rads_wrapped(cluster, pattern, config, |_, transport| {
        let faulty = if shared_pen {
            FaultTransport::with_shared_pen(transport, plan)
        } else {
            FaultTransport::new(transport, plan)
        };
        stats.lock().unwrap().push(faulty.stats());
        Arc::new(faulty)
    });
    (outcome, stats.into_inner().unwrap())
}

#[test]
fn async_harvest_tolerates_arbitrary_reordering() {
    let (cluster, expected, pattern) = small_cluster(4);
    let plan = FaultPlan { reorder: true, ..FaultPlan::benign() };
    // The shared pen reverses completion order *across* peers — the
    // engine's scatters put one chunk per owner in flight, so per-peer pens
    // would never hold two requests at once, but the global pen forces every
    // multi-owner harvest to receive its responses in exact reverse issue
    // order. Counts must not move, and the stats must prove inversions fired.
    for workers in [1usize, 4] {
        let config = Config { workers, ..Config::with_round_driver(RoundDriver::Async) };
        let (outcome, stats) = run_with_faults(&cluster, &pattern, &config, plan, true);
        assert_eq!(outcome.total_embeddings, expected, "{workers} workers");
        let reordered: u64 = stats.iter().map(|s| s.counts().1).sum();
        assert!(
            reordered > 0,
            "{workers} workers: no completion was ever inverted — the test proved nothing"
        );
    }
}

#[test]
fn duplicated_responses_are_discarded_not_double_counted() {
    let (cluster, expected, pattern) = small_cluster(3);
    let plan = FaultPlan { duplicate: true, ..FaultPlan::benign() };
    let config = Config::with_round_driver(RoundDriver::Async);
    let (outcome, stats) = run_with_faults(&cluster, &pattern, &config, plan, false);
    assert_eq!(outcome.total_embeddings, expected);
    let duplicates: u64 = stats.iter().map(|s| s.counts().2).sum();
    assert!(duplicates > 0, "no duplicate was ever injected");
}

#[test]
fn hostile_network_is_invisible_to_both_drivers() {
    let (cluster, expected, pattern) = small_cluster(4);
    let plan = FaultPlan::hostile(Duration::from_micros(200));
    for driver in [RoundDriver::Serial, RoundDriver::Async] {
        let config = Config::with_round_driver(driver);
        let (outcome, stats) = run_with_faults(&cluster, &pattern, &config, plan, true);
        assert_eq!(outcome.total_embeddings, expected, "{}", driver.name());
        let delayed: u64 = stats.iter().map(|s| s.counts().0).sum();
        assert!(delayed > 0, "{}: no fault fired", driver.name());
    }
}

// ---------------------------------------------------------------------------
// Chaos faults: drops, resets and corrupted frames, healed by the retry
// layer. Load sharing stays off in these runs so every remote RPC is an
// idempotent read (`fetchV` / `verifyE`) — an injected fault on the
// non-idempotent `shareR` is *supposed* to be terminal, which is a different
// test's job (the process-level fail-fast/recover suite).
// ---------------------------------------------------------------------------

#[test]
fn injected_drops_resets_and_corruptions_are_healed_by_retries() {
    let (cluster, expected, pattern) = small_cluster(3);
    let config = Config {
        enable_load_sharing: false,
        workers: 1,
        ..Config::with_round_driver(RoundDriver::Async)
    };
    for (name, plan, pick) in [
        ("drop", FaultPlan { drop_every: 3, ..FaultPlan::benign() }, 0usize),
        ("reset", FaultPlan { reset_every: 2, ..FaultPlan::benign() }, 1),
        ("corrupt", FaultPlan { corrupt_every: 2, ..FaultPlan::benign() }, 2),
    ] {
        let (outcome, stats) = run_with_faults(&cluster, &pattern, &config, plan, false);
        assert_eq!(outcome.total_embeddings, expected, "{name}: counts drifted under faults");
        let fired: u64 = stats
            .iter()
            .map(|s| {
                let (dropped, resets, corrupted, _) = s.chaos_counts();
                [dropped, resets, corrupted][pick]
            })
            .sum();
        assert!(fired > 0, "{name}: no fault ever fired — the test proved nothing");
        let retries: u64 = outcome.per_machine.iter().map(|m| m.stats.rpc_retries).sum();
        assert!(retries > 0, "{name}: {fired} faults fired but no retry was ever recorded");
    }
}

#[test]
fn combined_chaos_plan_is_invisible_to_both_drivers() {
    let (cluster, expected, pattern) = small_cluster(4);
    // Periods 3/4/5 interleave all three fault kinds across the run.
    let plan = FaultPlan::chaos(3);
    for driver in [RoundDriver::Serial, RoundDriver::Async] {
        let config =
            Config { enable_load_sharing: false, ..Config::with_round_driver(driver) };
        let (outcome, stats) = run_with_faults(&cluster, &pattern, &config, plan, false);
        assert_eq!(outcome.total_embeddings, expected, "{}", driver.name());
        let (dropped, resets, corrupted) = stats.iter().fold((0, 0, 0), |acc, s| {
            let (d, r, c, _) = s.chaos_counts();
            (acc.0 + d, acc.1 + r, acc.2 + c)
        });
        assert!(
            dropped + resets + corrupted > 0,
            "{}: the chaos plan never fired",
            driver.name()
        );
    }
}

#[test]
fn stalls_slow_the_run_down_but_never_change_counts() {
    let (cluster, expected, pattern) = small_cluster(3);
    let plan = FaultPlan {
        stall_every: 4,
        stall: Duration::from_millis(1),
        ..FaultPlan::benign()
    };
    let config = Config::with_round_driver(RoundDriver::Async);
    let (outcome, stats) = run_with_faults(&cluster, &pattern, &config, plan, false);
    assert_eq!(outcome.total_embeddings, expected);
    let stalled: u64 = stats.iter().map(|s| s.chaos_counts().3).sum();
    assert!(stalled > 0, "no stall ever fired");
}

// ---------------------------------------------------------------------------
// Mis-tagged responses: the engine must name the culprit, not just die.
// ---------------------------------------------------------------------------

/// A single-process stand-in for a 2-machine cluster whose peer answers
/// every `fetchV` with the wrong response variant — a mis-tagged frame from
/// a buggy or hostile daemon. Every other request is served faithfully by
/// the peer's real daemon; barriers are no-ops because only machine 0's
/// engine runs (which is exactly what keeps this test hang-free: a real
/// 2-process cluster would leave the healthy machine blocked on a barrier
/// once the poisoned one dies).
struct MisTagTransport {
    peer: Arc<rads_core::daemon::RadsDaemon>,
}

impl Transport for MisTagTransport {
    fn machine(&self) -> usize {
        0
    }
    fn machines(&self) -> usize {
        2
    }
    fn request(&self, to: usize, envelope: Envelope) -> Result<Response, TransportError> {
        if matches!(envelope.body, Request::FetchVertices(_)) {
            return Ok(Response::Ack);
        }
        Ok(rads_runtime::Daemon::handle(&*self.peer, to, envelope))
    }
    fn barrier(&self) -> Result<(), TransportError> {
        Ok(())
    }
    fn send_rows(
        &self,
        _to: usize,
        _tag: u32,
        _rows: Vec<Vec<VertexId>>,
    ) -> Result<(), TransportError> {
        Ok(())
    }
    fn take_rows(&self, _tag: u32) -> Vec<Vec<VertexId>> {
        Vec::new()
    }
    fn traffic(&self) -> TrafficSnapshot {
        TrafficSnapshot::default()
    }
}

#[test]
fn mis_tagged_fetch_response_names_machine_and_correlation() {
    use rads_core::daemon::{new_group_queue, RadsDaemon};
    use rads_core::engine::{run_machine, EngineConfig};
    use rads_runtime::{Daemon, MachineContext};

    let dataset = generate(DatasetKind::Dblp, Scale(0.02), 5);
    let pattern = queries::q4();
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, 2);
    let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
    let queue = new_group_queue();
    let peer = Arc::new(RadsDaemon::new(pg.clone(), 1, new_group_queue()));
    let transport: Arc<dyn Transport> = Arc::new(MisTagTransport { peer });
    let daemon: Arc<dyn Daemon> = Arc::new(RadsDaemon::new(pg.clone(), 0, queue.clone()));
    let ctx = MachineContext::assemble(pg, transport, daemon);
    let plan = best_plan(&pattern, &PlannerConfig { rho: 1.0 });
    let config = EngineConfig { driver: RoundDriver::Async, ..EngineConfig::default() };
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_machine(&ctx, &pattern, &plan, &config, queue)
    }))
    .expect_err("a mis-tagged fetchV response must abort the run");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(
        message.contains("unexpected fetchV response"),
        "panic does not identify the request kind: {message}"
    );
    assert!(
        message.contains("machine"),
        "panic does not identify the machines involved: {message}"
    );
    assert!(
        message.contains("correlation"),
        "panic does not carry the correlation id: {message}"
    );
    assert!(message.contains("Ack"), "panic does not show the offending response: {message}");
}
