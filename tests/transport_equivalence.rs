//! Transport conformance at the full-system level: `run_rads` (and a
//! shuffle-based baseline, which exercises barriers and the row exchange)
//! must produce identical results whether the cluster fabric is the
//! in-process channel simulator, Unix-domain sockets or loopback TCP.
//!
//! The per-transport plumbing differs completely — crossbeam channels vs
//! length-prefixed frames, `std::sync::Barrier` vs all-to-all barrier
//! frames, modelled vs real byte accounting — so count equality here means
//! the wire codec, request pipelining, the distributed barrier and the
//! shutdown drain are all correct under the engine's real traffic.

use std::sync::Arc;

use rads::prelude::*;
use rads_graph::queries;
use rads_partition::PartitionedGraph;
use rads_runtime::Cluster;

fn transports() -> &'static [TransportKind] {
    if cfg!(unix) {
        &[TransportKind::InProcess, TransportKind::Uds, TransportKind::Tcp]
    } else {
        &[TransportKind::InProcess, TransportKind::Tcp]
    }
}

#[test]
fn rads_counts_are_transport_invariant() {
    for (kind_name, scale) in [(DatasetKind::Dblp, 0.08), (DatasetKind::LiveJournal, 0.04)] {
        let dataset = generate(kind_name, Scale(scale), 11);
        let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, 4);
        let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
        for query in ["q1", "q4", "q5"] {
            let pattern = queries::query_by_name(query).expect("known query");
            let expected = count_embeddings(&dataset.graph, &pattern);
            for &transport in transports() {
                let cluster = Cluster::with_transport(pg.clone(), transport);
                let outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
                assert_eq!(
                    outcome.total_embeddings,
                    expected,
                    "{} / {query} over {:?} deviates from ground truth",
                    dataset.profile.name,
                    transport,
                );
            }
        }
    }
}

#[test]
fn shuffle_baseline_is_transport_invariant() {
    // PSgL shuffles rows through barriers every superstep — the heaviest
    // user of the exchange + barrier path the socket transport reimplements.
    let dataset = generate(DatasetKind::Dblp, Scale(0.06), 3);
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, 3);
    let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
    let pattern = queries::query_by_name("q1").expect("known query");
    let expected = count_embeddings(&dataset.graph, &pattern);
    for &transport in transports() {
        let cluster = Cluster::with_transport(pg.clone(), transport);
        let outcome = run_psgl(&cluster, &pattern);
        assert_eq!(
            outcome.total_embeddings, expected,
            "PSgL over {transport:?} deviates from ground truth"
        );
    }
}
