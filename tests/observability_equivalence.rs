//! Observation must never perturb enumeration: every run with
//! `RADS_TRACE` / `RADS_METRICS` enabled must be *bit-identical* — same
//! total count, same embeddings (pinned by a digest of the sorted
//! embedding list) — to the same run with observability off, across every
//! dataset stand-in, the full q1–q8 query set and both round drivers.
//!
//! The obs-on leg additionally checks the layer actually recorded
//! something (published engine counters match the run's own report), so a
//! gating bug that silently disabled recording cannot pass as "no
//! perturbation".
//!
//! The observability toggles are process-global, so every test in this
//! binary serializes on one mutex; the matrix is sized accordingly
//! (in-process transport only — the 4-process cluster artifacts have
//! their own test in `crates/bench/tests/observe_cluster.rs`).

use std::sync::{Arc, Mutex, OnceLock};

use rads::prelude::*;
use rads_core::RoundDriver;
use rads_graph::queries;

/// Serializes the tests in this binary: the `RADS_TRACE` / `RADS_METRICS`
/// toggles and the metrics registry are process-global, and the test
/// harness is multi-threaded.
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// FNV-1a over the sorted embedding list — a stable fingerprint that two
/// runs share iff they produced exactly the same embeddings.
fn digest(mut embeddings: Vec<Vec<VertexId>>) -> u64 {
    embeddings.sort();
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut mix = |byte: u8| {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for embedding in &embeddings {
        for &v in embedding {
            for byte in v.to_le_bytes() {
                mix(byte);
            }
        }
        mix(0xff); // embedding separator
    }
    hash
}

/// Runs the q1–q8 × driver matrix for one dataset stand-in, comparing the
/// obs-off and obs-on legs of every cell.
fn check_dataset(kind: DatasetKind, scale: f64, machines: usize, seed: u64) {
    // Above this count, materializing every embedding in four runs per query
    // dominates the suite's wall clock; those cells are pinned by count only.
    const DIGEST_CEILING: u64 = 100_000;
    let _guard = obs_lock().lock().unwrap();
    let dataset = generate(kind, Scale(scale), seed);
    let partitioning =
        LabelPropagationPartitioner::default().partition(&dataset.graph, machines);
    let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
    let cluster = Cluster::new(pg);
    for nq in queries::standard_query_set() {
        let collect = count_embeddings(&dataset.graph, &nq.pattern) <= DIGEST_CEILING;
        for driver in [RoundDriver::Serial, RoundDriver::Async] {
            let cell = format!("{} / {} / {driver:?}", dataset.profile.name, nq.name);
            let config = RadsConfig {
                collect_embeddings: collect,
                ..RadsConfig::with_round_driver(driver)
            };

            rads_obs::set_metrics_enabled(false);
            rads_obs::set_trace_enabled(false);
            let baseline = run_rads(&cluster, &nq.pattern, &config);

            rads_obs::set_metrics_enabled(true);
            rads_obs::set_trace_enabled(true);
            let observed = run_rads(&cluster, &nq.pattern, &config);
            let snapshot = rads_obs::Registry::global().snapshot();
            rads_obs::set_metrics_enabled(false);
            rads_obs::set_trace_enabled(false);
            rads_obs::discard_trace();
            rads_obs::Registry::global().reset();

            assert_eq!(
                observed.total_embeddings, baseline.total_embeddings,
                "count deviates with observability on, {cell}"
            );
            if collect {
                assert_eq!(
                    digest(observed.all_embeddings()),
                    digest(baseline.all_embeddings()),
                    "embeddings deviate with observability on, {cell}"
                );
            }
            // The obs-on leg really recorded: the registry's published
            // counters agree with the run's own deterministic report.
            let published = snapshot.scalar("rads_sme_embeddings_total").unwrap_or(0)
                + snapshot.scalar("rads_distributed_embeddings_total").unwrap_or(0);
            assert_eq!(published, observed.total_embeddings, "registry misses embeddings, {cell}");
            assert_eq!(
                snapshot.scalar("rads_net_messages_total"),
                Some(observed.traffic.messages),
                "registry misses traffic, {cell}"
            );
        }
    }
}

#[test]
fn roadnet_is_observation_invariant() {
    check_dataset(DatasetKind::RoadNet, 0.05, 4, 11);
}

#[test]
fn dblp_is_observation_invariant() {
    check_dataset(DatasetKind::Dblp, 0.02, 4, 11);
}

#[test]
fn livejournal_is_observation_invariant() {
    check_dataset(DatasetKind::LiveJournal, 0.012, 4, 11);
}

#[test]
fn uk2002_is_observation_invariant() {
    check_dataset(DatasetKind::Uk2002, 0.004, 4, 11);
}

/// Satellite regression for the control-frame accounting asymmetry: the
/// socket transport always charged its one-way control frames as bytes,
/// while the in-process channel transport dropped its barrier
/// notifications from the accounting entirely — so the two fabrics
/// reported incomparable traffic shapes for any barrier-using workload.
/// PSgL shuffles through a barrier every superstep, the heaviest user of
/// that path: both fabrics must now report nonzero control *bytes* for it,
/// and control frames must never leak into the request count.
#[test]
fn control_bytes_are_accounted_on_both_transports() {
    let _guard = obs_lock().lock().unwrap();
    let dataset = generate(DatasetKind::Dblp, Scale(0.04), 11);
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, 4);
    let pg = Arc::new(PartitionedGraph::build(&dataset.graph, partitioning));
    let pattern = queries::query_by_name("q1").expect("known query");
    let mut counts = Vec::new();
    for &transport in &[TransportKind::InProcess, TransportKind::Tcp] {
        let cluster = Cluster::with_transport(pg.clone(), transport);
        let outcome = run_psgl(&cluster, &pattern);
        assert!(
            outcome.traffic.control_bytes > 0,
            "{transport:?}: barrier notifications must be charged as control bytes"
        );
        assert!(
            outcome.traffic.control_bytes < outcome.traffic.total_bytes,
            "{transport:?}: control bytes are a strict subset of the total"
        );
        assert!(
            outcome.traffic.messages > 0,
            "{transport:?}: a 4-machine shuffle always sends rows"
        );
        counts.push(outcome.total_embeddings);
    }
    assert_eq!(counts[0], counts[1], "fabrics disagree on the embedding count");
}
