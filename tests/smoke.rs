//! Smoke tests for the query catalogue and the synthetic dataset suite:
//! cheap invariants that catch a broken build long before the expensive
//! distributed-correctness suites run.

use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;

#[test]
fn every_named_query_roundtrips_and_is_connected() {
    let named: Vec<_> =
        queries::standard_query_set().into_iter().chain(queries::clique_query_set()).collect();
    assert_eq!(named.len(), 12);
    for nq in &named {
        let looked_up = queries::query_by_name(nq.name)
            .unwrap_or_else(|| panic!("query_by_name({}) returned None", nq.name));
        assert_eq!(looked_up, nq.pattern, "{} does not round-trip through query_by_name", nq.name);
        assert!(nq.pattern.is_connected(), "{} is not connected", nq.name);
        assert!(nq.pattern.vertex_count() >= 3, "{} is degenerate", nq.name);
    }
    // the extra alias outside the two query sets
    let triangle = queries::query_by_name("triangle").expect("triangle is a named query");
    assert!(triangle.is_connected());
    assert_eq!(triangle.vertex_count(), 3);
    assert_eq!(triangle.edge_count(), 3);
    assert!(queries::query_by_name("no-such-query").is_none());
}

#[test]
fn every_dataset_kind_generates_a_non_empty_graph() {
    for kind in DatasetKind::all() {
        let dataset = generate(kind, Scale(0.05), 1);
        assert!(
            dataset.graph.vertex_count() > 0,
            "{} generated an empty vertex set",
            kind.name()
        );
        assert!(dataset.graph.edge_count() > 0, "{} generated no edges", kind.name());
        assert_eq!(dataset.profile.vertices, dataset.graph.vertex_count());
        assert_eq!(dataset.profile.edges, dataset.graph.edge_count());
        assert!(dataset.profile.average_degree > 0.0);
    }
}
