//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports no-op
//! derive macros from the sibling `serde_derive` stand-in, so that
//! `#[derive(Serialize, Deserialize)]` annotations compile without network
//! access. No actual serialization is implemented — the RADS workspace only
//! *annotates* types today, it never serializes them. Swap this path
//! dependency for the real crate once network access is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
