//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset of the proptest API that the RADS test suite uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`arbitrary::any`] and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design of this stand-in:
//!
//! * cases are generated from a **deterministic** per-case seed, so failures
//!   are exactly reproducible (re-running hits the same inputs);
//! * there is **no shrinking** — a failing case reports the panic of the
//!   original input;
//! * `prop_assert!` / `prop_assert_eq!` panic immediately (they forward to
//!   `assert!` / `assert_eq!`) instead of returning `TestCaseError`.
//!
//! Swap this path dependency for the real crate once network access is
//! available; the test source is written against the real API.

pub mod test_runner {
    //! The per-test configuration and RNG.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, SeedableRng};

    /// Configuration for a `proptest!` block (subset of the real struct).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies. Deterministic per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// An RNG for test case number `case` (same case → same stream).
        pub fn deterministic(case: u64) -> Self {
            // Golden-ratio stride decorrelates consecutive case seeds.
            TestRng { inner: StdRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5261_6453) }
        }

        /// Uniform sample from `range`.
        pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            self.inner.gen_range(range)
        }

        /// A uniformly random `bool`.
        pub fn random_bool(&mut self) -> bool {
            self.inner.gen_bool(0.5)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy for `bool` (used by `any::<bool>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::{AnyBool, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = core::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_uint!(usize, u64, u32, u16, u8);

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a random length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A vector of `size.start..size.end` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(u64::from(__case));
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        /// Vec + tuple + flat-map compose.
        #[test]
        fn composed_strategies(
            pairs in crate::collection::vec((0usize..8, 0usize..8), 0..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(pairs.len() < 20);
            prop_assert!(pairs.iter().all(|&(a, b)| a < 8 && b < 8));
            let _ = flag;
        }

        /// prop_flat_map makes dependent strategies.
        #[test]
        fn dependent_sizes(v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0usize..100, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0usize..1000, 0usize..1000);
        let mut a = crate::test_runner::TestRng::deterministic(5);
        let mut b = crate::test_runner::TestRng::deterministic(5);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
