//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, backed by the standard library.
//!
//! Three modules are provided, covering the API subset the RADS workspace
//! uses (plus, in [`deque`], the rest of the classic work-stealing trio so
//! the stand-in mirrors the real crate's shape):
//!
//! * [`channel`] — multi-producer channels over `std::sync::mpsc`:
//!   [`channel::unbounded`], [`channel::bounded`], cloneable
//!   [`channel::Sender`]s and blocking [`channel::Receiver::recv`].
//!   `bounded` is implemented without backpressure (it never blocks the
//!   sender); the runtime only uses it for single-use reply channels, where
//!   the two behave identically.
//! * [`deque`] — the work-stealing deque trio of `crossbeam-deque`
//!   ([`deque::Worker`], [`deque::Stealer`], [`deque::Injector`]). The real
//!   crate implements the lock-free Chase–Lev deque; this stand-in guards a
//!   `VecDeque` with a mutex, which preserves the API and the LIFO-pop /
//!   FIFO-steal discipline but not the lock-freedom. [`deque::Steal::Retry`]
//!   is consequently never returned (the mutex serialises racing stealers),
//!   which callers written against the real API already handle.
//! * [`thread`] — scoped threads ([`thread::scope`] /
//!   `Scope::spawn(|scope| ..)`), a thin adapter over `std::thread::scope`
//!   that restores crossbeam's `Result`-returning signature (a panicking
//!   child surfaces as `Err` instead of resuming the unwind).
//!
//! Swap this path dependency for the real crate once network access is
//! available.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if all receivers were dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders were dropped and the queue is drained.
        Disconnected,
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Creates a nominally bounded channel (no sender backpressure in this
    /// stand-in; see the crate docs).
    pub fn bounded<T>(_capacity: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

/// Work-stealing deques, mirroring `crossbeam::deque` (`crossbeam-deque`).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Which end [`Worker::pop`] takes from.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        /// Pop the most recently pushed task (the Chase–Lev default).
        Lifo,
        /// Pop the oldest task.
        Fifo,
    }

    /// The owner's handle of a work-stealing deque.
    ///
    /// The owner pushes and pops at one end; [`Stealer`]s created with
    /// [`Worker::stealer`] take from the opposite end. Unlike the real
    /// crossbeam `Worker` (which is `!Sync` because the owner side is
    /// single-threaded by construction), this mutex-backed stand-in is
    /// naturally `Sync`; code written against the real API is unaffected.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// A deque whose owner pops the most recently pushed task.
        pub fn new_lifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Lifo }
        }

        /// A deque whose owner pops the oldest task.
        pub fn new_fifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Fifo }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque mutex poisoned").push_back(task);
        }

        /// Pops a task from the owner's end (`None` when empty).
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().expect("deque mutex poisoned");
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// `true` when the deque currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque mutex poisoned").is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque mutex poisoned").len()
        }

        /// A new stealing handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: self.queue.clone() }
        }
    }

    /// A stealing handle of a [`Worker`]'s deque. Cloneable and shareable.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: self.queue.clone() }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the deque (FIFO end).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque mutex poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// `true` when the deque currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque mutex poisoned").is_empty()
        }
    }

    /// A FIFO queue shared by all workers of a pool (the global task source).
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector mutex poisoned").push_back(task);
        }

        /// Steals the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector mutex poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// `true` when the injector currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector mutex poisoned").is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector mutex poisoned").len()
        }
    }

    /// The outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// A race was lost and the attempt should be retried. Never produced
        /// by this mutex-backed stand-in, but part of the real API.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// `true` when the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// `true` when the attempt lost a race and should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }
    }
}

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// The error a scope returns when a spawned thread panicked.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope in which threads borrowing non-`'static` data can be spawned.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // `std::thread::Scope` is `Sync`, so handing copies of the wrapper to
    // spawned threads (crossbeam passes `&Scope` into every closure) is safe.
    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to a scoped thread (see [`Scope::spawn`]).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result, or the
        /// panic payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Creates a scope, runs `f` in it, and joins every spawned thread before
    /// returning. Returns `Err` with the first panic payload if `f` or any
    /// unjoined spawned thread panicked (the real crossbeam contract; the
    /// underlying `std::thread::scope` would instead resume the unwind).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn send_recv_roundtrip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        std::thread::spawn(move || tx.send(1).unwrap());
        let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
        assert_eq!(sum, 42);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn lifo_worker_pops_newest_stealers_take_oldest() {
        let w: Worker<u32> = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        let s = w.stealer();
        assert_eq!(s.steal().success(), Some(1)); // FIFO end
        assert_eq!(w.pop(), Some(3)); // LIFO end
        assert_eq!(w.pop(), Some(2));
        assert!(w.is_empty());
        assert!(s.steal().is_empty());
    }

    #[test]
    fn fifo_worker_pops_oldest() {
        let w: Worker<u32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_is_shared_fifo() {
        let inj: Injector<u32> = Injector::new();
        assert!(inj.is_empty());
        inj.push(7);
        inj.push(8);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success(7));
        assert_eq!(inj.steal(), Steal::Success(8));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn stealers_drain_a_worker_from_other_threads() {
        let w: Worker<usize> = Worker::new_lifo();
        for i in 0..100 {
            w.push(i);
        }
        let total: usize = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let stealer = w.stealer();
                    s.spawn(move |_| {
                        let mut sum = 0;
                        while let Some(task) = stealer.steal().success() {
                            sum += task;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, (0..100).sum());
        assert!(w.is_empty());
    }

    #[test]
    fn scope_joins_and_returns_the_closure_value() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_surfaces_child_panics_as_err() {
        let result = crate::thread::scope(|s| {
            s.spawn(|_| panic!("child panic"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
