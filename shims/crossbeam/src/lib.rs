//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, backed by `std::sync::mpsc`.
//!
//! Only [`channel`] is provided, and only the constructors and methods the
//! RADS runtime uses: [`channel::unbounded`], [`channel::bounded`],
//! cloneable [`channel::Sender`]s and blocking [`channel::Receiver::recv`].
//! `bounded` is implemented without backpressure (it never blocks the
//! sender); the runtime only uses it for single-use reply channels, where
//! the two behave identically. Swap this path dependency for the real crate
//! once network access is available.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if all receivers were dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders were dropped and the queue is drained.
        Disconnected,
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Creates a nominally bounded channel (no sender backpressure in this
    /// stand-in; see the crate docs).
    pub fn bounded<T>(_capacity: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};

    #[test]
    fn send_recv_roundtrip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        std::thread::spawn(move || tx.send(1).unwrap());
        let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
        assert_eq!(sum, 42);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
