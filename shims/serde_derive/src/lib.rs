//! Offline stand-in for `serde_derive`.
//!
//! The derives are accepted and expand to nothing: types annotated with
//! `#[derive(Serialize, Deserialize)]` compile, but no serialization code is
//! generated. Nothing in the RADS workspace currently *calls* serde
//! serialization — the derives only declare intent for future persistence —
//! so no-op derives are sufficient until the real crates can be fetched.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
