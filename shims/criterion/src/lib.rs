//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the criterion API the RADS benches use —
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple wall-clock measurement loop: each
//! benchmark is warmed up once, then timed over `sample_size` samples, and
//! the per-iteration minimum / median / maximum are printed to stdout.
//! There is no statistical analysis, HTML report, or outlier rejection.
//! Swap this path dependency for the real crate once network access is
//! available; the bench sources are written against the real API.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Per-sample elapsed times recorded by [`Bencher::iter`].
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// A benchmark identifier: function name plus a parameter, e.g. `plan/q4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

fn run_benchmark(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, times: Vec::new() };
    f(&mut bencher);
    bencher.times.sort_unstable();
    if bencher.times.is_empty() {
        println!("{label:<50} (no measurement)");
        return;
    }
    let min = bencher.times[0];
    let med = bencher.times[bencher.times.len() / 2];
    let max = bencher.times[bencher.times.len() - 1];
    println!("{label:<50} time: [{min:>10.2?} {med:>10.2?} {max:>10.2?}]");
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: group_name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.id, self.sample_size, &mut |b| f(b, input));
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run_their_closures() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("direct", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut group_runs = 0usize;
        group.bench_with_input(BenchmarkId::new("with_input", 3), &2usize, |b, &x| {
            b.iter(|| group_runs += x)
        });
        group.finish();
        // 5 timed samples + 1 warm-up, times input 2
        assert_eq!(group_runs, 12);
    }
}
