//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! Only the API surface the RADS workspace uses is provided: [`Mutex`] with
//! infallible [`Mutex::lock`]. Like real parking_lot (and unlike raw
//! `std::sync::Mutex`), locking never returns a poison error — a poisoned
//! std mutex is transparently recovered, matching parking_lot's no-poisoning
//! semantics. Swap this path dependency for the real crate in the workspace
//! manifest once network access is available.

use std::sync::Mutex as StdMutex;

/// A guard releasing the lock on drop (std's guard, re-exported).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's infallible, non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never fails.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_is_exclusive_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn debug_formats_contents() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert!(format!("{m:?}").contains("[1, 2, 3]"));
    }
}
