//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the *subset* of the rand 0.8 API that the RADS workspace actually
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast and statistically solid for simulation workloads. It is **not** the
//! same stream as the real `StdRng` (ChaCha12), so seeds produce different
//! (but equally reproducible) graphs. Swap this path dependency for the real
//! crate in the workspace manifest once the build environment has network
//! access; no source changes are needed.

/// A source of random `u64`s / `u32`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (the only constructor RADS uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random mantissa bits, exactly like rand's `f64` sampling.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related extensions, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20usize);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
