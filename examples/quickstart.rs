//! Quickstart: enumerate a query pattern on a partitioned graph with RADS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use rads::prelude::*;

fn main() {
    // 1. A data graph: a power-law graph with 2 000 vertices, and the "house"
    //    query pattern (q4 of the paper's query set).
    let graph = rads::graph::generators::barabasi_albert(2_000, 4, 42);
    let pattern = rads::graph::queries::q4();
    println!(
        "data graph: {} vertices, {} edges (avg degree {:.1})",
        graph.vertex_count(),
        graph.edge_count(),
        graph.average_degree()
    );

    // 2. Partition the graph across 4 simulated machines with the
    //    label-propagation partitioner (the METIS stand-in) and build the
    //    cluster.
    let machines = 4;
    let partitioning = LabelPropagationPartitioner::default().partition(&graph, machines);
    let stats = rads::partition::PartitionStats::compute(&graph, &partitioning);
    println!("partitioning: {stats}");
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&graph, partitioning)));

    // 3. Look at the execution plan RADS computes for the query.
    let plan = best_plan(&pattern, &PlannerConfig::default());
    println!(
        "execution plan: {} rounds, start vertex u{} (span {}), score {:.2}",
        plan.rounds(),
        plan.start_vertex(),
        plan.start_span(),
        plan.score(1.0)
    );

    // 4. Run RADS and compare against the single-machine ground truth.
    let outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
    let expected = count_embeddings(&graph, &pattern);
    println!(
        "RADS found {} embeddings ({} by SM-E, {} by R-Meef) in {:.1} ms",
        outcome.total_embeddings,
        outcome.sme_embeddings(),
        outcome.distributed_embeddings(),
        outcome.elapsed.as_secs_f64() * 1000.0
    );
    println!(
        "communication: {:.3} MB over {} messages",
        outcome.traffic.megabytes(),
        outcome.traffic.messages
    );
    assert_eq!(outcome.total_embeddings, expected, "distributed result must match ground truth");
    println!("matches the single-machine ground truth ({expected} embeddings)");
}
