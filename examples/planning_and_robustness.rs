//! Execution planning and memory robustness.
//!
//! Part 1 prints, for every query of the paper's query set, the execution
//! plan RADS computes (rounds, start vertex, span, score) next to the random
//! baselines RanS and RanM of the Figure 13 ablation.
//!
//! Part 2 demonstrates the memory-control strategy of Section 6: a DBLP-style
//! workload is run with progressively smaller region-group budgets. The
//! result never changes; only the number of region groups (and therefore the
//! peak size of the embedding trie) does — this is what makes RADS finish
//! queries that crash systems without memory control.
//!
//! ```text
//! cargo run --release --example planning_and_robustness
//! ```

use std::sync::Arc;

use rads::core::memory::MemoryBudget;
use rads::prelude::*;

fn main() {
    // ---- Part 1: execution plans ------------------------------------------
    println!("query   rounds  start  span  score   RanS-rounds  RanM-rounds");
    for nq in rads::graph::queries::standard_query_set() {
        let plan = best_plan(&nq.pattern, &PlannerConfig::default());
        let rans = rads::plan::random_star_plan(&nq.pattern, 1);
        let ranm = rads::plan::random_min_round_plan(&nq.pattern, 1);
        println!(
            "{:<7} {:<7} u{:<5} {:<5} {:<7.2} {:<12} {:<12}",
            nq.name,
            plan.rounds(),
            plan.start_vertex(),
            plan.start_span(),
            plan.score(1.0),
            rans.rounds(),
            ranm.rounds()
        );
    }

    // ---- Part 2: memory budgets -------------------------------------------
    let dataset = generate(DatasetKind::Dblp, Scale(0.2), 11);
    let pattern = rads::graph::queries::q5();
    let machines = 4;
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, machines);
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&dataset.graph, partitioning)));
    let expected = count_embeddings(&dataset.graph, &pattern);

    println!("\nDBLP stand-in, query q5 ({expected} embeddings), shrinking region-group budgets:");
    println!("budget        groups  peak trie nodes  embeddings  communication");
    for budget_bytes in [4 * 1024 * 1024usize, 64 * 1024, 4 * 1024, 256] {
        let config = RadsConfig {
            memory_budget: MemoryBudget { region_group_bytes: budget_bytes, ..Default::default() },
            ..Default::default()
        };
        let outcome = run_rads(&cluster, &pattern, &config);
        let groups: usize =
            outcome.per_machine.iter().map(|m| m.stats.groups_processed).sum();
        assert_eq!(outcome.total_embeddings, expected);
        println!(
            "{:<13} {:<7} {:<16} {:<11} {:.4} MB",
            format!("{budget_bytes} B"),
            groups,
            outcome.peak_trie_nodes(),
            outcome.total_embeddings,
            outcome.traffic.megabytes()
        );
    }
    println!("\nSmaller budgets mean more, smaller region groups and a lower peak memory footprint,");
    println!("while the enumeration result never changes — the robustness claim of Section 6.");
}
