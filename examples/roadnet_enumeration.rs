//! RoadNet-style enumeration: the workload of Figure 8.
//!
//! Road networks are extremely sparse and have huge diameters, so after a
//! locality-preserving partitioning almost every vertex is far from the
//! partition border. RADS's SM-E phase (Proposition 1) then finds nearly all
//! embeddings without any communication, while exploration- and join-based
//! systems still pay for their shuffles. This example reproduces that effect
//! and compares RADS with PSgL and TwinTwig on the first four queries.
//!
//! ```text
//! cargo run --release --example roadnet_enumeration
//! ```

use std::sync::Arc;
use std::time::Instant;

use rads::prelude::*;

fn main() {
    let dataset = generate(DatasetKind::RoadNet, Scale(0.2), 7);
    println!(
        "RoadNet stand-in: {} vertices, {} edges, avg degree {:.2}, diameter >= {}",
        dataset.profile.vertices,
        dataset.profile.edges,
        dataset.profile.average_degree,
        dataset.profile.diameter
    );

    let machines = 4;
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, machines);
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&dataset.graph, partitioning)));

    println!("\nquery  system    embeddings      time      communication");
    for name in ["q1", "q2", "q3", "q4"] {
        let pattern = rads::graph::queries::query_by_name(name).unwrap();

        let start = Instant::now();
        let rads_outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
        let rads_ms = start.elapsed().as_secs_f64() * 1000.0;
        let sme_share = if rads_outcome.total_embeddings > 0 {
            100.0 * rads_outcome.sme_embeddings() as f64 / rads_outcome.total_embeddings as f64
        } else {
            100.0
        };

        let start = Instant::now();
        let psgl = run_psgl(&cluster, &pattern);
        let psgl_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let twintwig = run_twintwig(&cluster, &pattern);
        let twintwig_ms = start.elapsed().as_secs_f64() * 1000.0;

        assert_eq!(rads_outcome.total_embeddings, psgl.total_embeddings);
        assert_eq!(rads_outcome.total_embeddings, twintwig.total_embeddings);

        println!(
            "{name:<6} RADS      {:<14} {:>7.1}ms  {:>8.4} MB  ({sme_share:.0}% found by SM-E)",
            rads_outcome.total_embeddings,
            rads_ms,
            rads_outcome.traffic.megabytes()
        );
        println!(
            "{:<6} PSgL      {:<14} {:>7.1}ms  {:>8.4} MB",
            "", psgl.total_embeddings, psgl_ms, psgl.traffic.megabytes()
        );
        println!(
            "{:<6} TwinTwig  {:<14} {:>7.1}ms  {:>8.4} MB",
            "", twintwig.total_embeddings, twintwig_ms, twintwig.traffic.megabytes()
        );
    }
    println!("\nOn road networks RADS keeps nearly all work inside SM-E and ships almost nothing.");
}
