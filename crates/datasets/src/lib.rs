//! The synthetic dataset suite of the reproduction.
//!
//! The paper evaluates on four real graphs (Table 1): RoadNet (very sparse,
//! enormous diameter), DBLP (small, moderately dense collaboration network),
//! LiveJournal (large, dense social network) and UK2002 (very large, very
//! dense web graph). Those graphs are not redistributable and are far beyond
//! laptop scale, so this crate generates structurally analogous stand-ins at
//! a configurable scale:
//!
//! | paper dataset | stand-in generator | preserved property |
//! |---|---|---|
//! | RoadNet | perturbed 2-D lattice | avg degree ≈ 2, huge diameter, strong locality |
//! | DBLP | community graph | small, clustered, moderate density |
//! | LiveJournal | Barabási–Albert (m = 5) | power-law, dense, small diameter |
//! | UK2002 | Barabási–Albert (m = 8), larger | densest and largest of the four |
//!
//! The `scale` knob lets experiments trade fidelity for runtime; the default
//! scale keeps every experiment in the seconds range on a laptop while
//! preserving the *relative* characteristics that drive the paper's findings
//! (e.g. "RoadNet is solved almost entirely by SM-E", "join-based systems
//! blow up on the dense graphs").

use serde::{Deserialize, Serialize};

use rads_graph::{algorithms, generators, Graph};

/// Which of the paper's datasets a synthetic graph stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// RoadNet stand-in: perturbed 2-D lattice.
    RoadNet,
    /// DBLP stand-in: clustered community graph.
    Dblp,
    /// LiveJournal stand-in: power-law graph.
    LiveJournal,
    /// UK2002 stand-in: denser, larger power-law graph.
    Uk2002,
}

impl DatasetKind {
    /// All four datasets in the order the paper lists them.
    pub fn all() -> [DatasetKind; 4] {
        [DatasetKind::RoadNet, DatasetKind::Dblp, DatasetKind::LiveJournal, DatasetKind::Uk2002]
    }

    /// The paper's name for the dataset.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::RoadNet => "RoadNet",
            DatasetKind::Dblp => "DBLP",
            DatasetKind::LiveJournal => "LiveJournal",
            DatasetKind::Uk2002 => "UK2002",
        }
    }
}

/// A generated dataset plus its profile (the Table 1 row).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which paper dataset it stands in for.
    pub kind: DatasetKind,
    /// The graph itself.
    pub graph: Graph,
    /// The profile of the generated graph.
    pub profile: DatasetProfile,
}

/// The Table 1 row of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name.
    pub name: String,
    /// Number of vertices.
    pub vertices: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Average degree (2|E| / |V|).
    pub average_degree: f64,
    /// Estimated diameter (double-sweep BFS lower bound).
    pub diameter: u32,
}

/// Scale factor of the generated datasets. `1.0` is the default laptop scale
/// (thousands of vertices); larger values grow the graphs linearly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

impl Scale {
    fn apply(&self, base: usize) -> usize {
        ((base as f64 * self.0).round() as usize).max(16)
    }
}

/// Generates the stand-in graph for `kind` at `scale` with the given seed.
pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> Dataset {
    let graph = match kind {
        DatasetKind::RoadNet => {
            let side = self::isqrt(scale.apply(6400)).max(10);
            generators::road_network(side, side, 0.08, side / 10, seed)
        }
        DatasetKind::Dblp => {
            let communities = scale.apply(40);
            generators::community_graph(communities, 25, 0.25, 0.0015, seed)
        }
        DatasetKind::LiveJournal => generators::barabasi_albert(scale.apply(4000), 5, seed),
        DatasetKind::Uk2002 => generators::barabasi_albert(scale.apply(8000), 8, seed),
    };
    let profile = DatasetProfile {
        name: kind.name().to_string(),
        vertices: graph.vertex_count(),
        edges: graph.edge_count(),
        average_degree: graph.average_degree(),
        diameter: algorithms::estimate_diameter(&graph, 4),
    };
    Dataset { kind, graph, profile }
}

/// Generates all four datasets at `scale`.
pub fn generate_all(scale: Scale, seed: u64) -> Vec<Dataset> {
    DatasetKind::all().into_iter().map(|k| generate(k, scale, seed)).collect()
}

fn isqrt(n: usize) -> usize {
    (n as f64).sqrt() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_reflect_the_papers_relative_ordering() {
        let ds = generate_all(Scale(0.5), 7);
        let by_kind = |k: DatasetKind| ds.iter().find(|d| d.kind == k).unwrap();
        let road = by_kind(DatasetKind::RoadNet);
        let dblp = by_kind(DatasetKind::Dblp);
        let lj = by_kind(DatasetKind::LiveJournal);
        let uk = by_kind(DatasetKind::Uk2002);
        // RoadNet: sparsest and by far the largest diameter
        assert!(road.profile.average_degree < 4.0);
        assert!(road.profile.diameter > 4 * dblp.profile.diameter.max(1));
        // density ordering: RoadNet < DBLP < LiveJournal < UK2002
        assert!(road.profile.average_degree < dblp.profile.average_degree);
        assert!(dblp.profile.average_degree < lj.profile.average_degree);
        assert!(lj.profile.average_degree < uk.profile.average_degree);
        // size ordering: UK is the largest power-law graph
        assert!(uk.profile.vertices > lj.profile.vertices);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(DatasetKind::Dblp, Scale(0.3), 11);
        let b = generate(DatasetKind::Dblp, Scale(0.3), 11);
        let c = generate(DatasetKind::Dblp, Scale(0.3), 12);
        assert_eq!(a.graph, b.graph);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn scale_grows_the_graphs() {
        let small = generate(DatasetKind::LiveJournal, Scale(0.25), 3);
        let large = generate(DatasetKind::LiveJournal, Scale(0.75), 3);
        assert!(large.profile.vertices > 2 * small.profile.vertices);
    }

    #[test]
    fn dataset_names_match_table1() {
        let names: Vec<&str> = DatasetKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["RoadNet", "DBLP", "LiveJournal", "UK2002"]);
    }

    #[test]
    fn profiles_render_their_dataset_name() {
        let d = generate(DatasetKind::Dblp, Scale(0.2), 1);
        let rendered = format!("{:?}", d.profile);
        assert!(rendered.contains("DBLP"));
        assert_eq!(d.profile.edges, d.graph.edge_count());
    }
}
