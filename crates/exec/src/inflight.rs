//! A bounded window of in-flight completions.
//!
//! The async round engine scatters split-phase requests and harvests them
//! later; [`InflightWindow`] is the scheduling primitive that keeps the
//! number of outstanding completions bounded. Pushing into a full window
//! hands back the *oldest* item for the caller to complete first, so
//! harvest order stays the deterministic issue order no matter how the
//! underlying fabric reorders responses — the same FIFO discipline
//! [`parallel_map`](crate::parallel_map) uses to keep results in item
//! order.

use std::collections::VecDeque;
use std::sync::OnceLock;

/// Window occupancy observed at every push — how much split-phase overlap
/// the engine actually sustains (`rads_inflight_window_depth`).
fn depth_histogram() -> &'static rads_obs::Histogram {
    static CELL: OnceLock<rads_obs::Histogram> = OnceLock::new();
    CELL.get_or_init(|| {
        rads_obs::Registry::global().histogram("rads_inflight_window_depth", rads_obs::DEPTH_BUCKETS)
    })
}

/// A FIFO of at most `capacity` outstanding items. Pushing into a full
/// window hands back the oldest item for the caller to complete first, so
/// harvest order stays the deterministic issue order no matter how the
/// underlying fabric reorders responses.
#[derive(Debug)]
pub struct InflightWindow<T> {
    window: VecDeque<T>,
    capacity: usize,
}

impl<T> InflightWindow<T> {
    /// An empty window admitting at most `capacity` in-flight items
    /// (`capacity` 0 is clamped to 1: a window that can hold nothing would
    /// make every push return its own item and never overlap anything).
    pub fn new(capacity: usize) -> InflightWindow<T> {
        InflightWindow { window: VecDeque::new(), capacity: capacity.max(1) }
    }

    /// Adds `item` to the window. When the window is already full, the
    /// *oldest* in-flight item is evicted and returned — the caller must
    /// complete it now, preserving issue order.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted =
            if self.window.len() == self.capacity { self.window.pop_front() } else { None };
        self.window.push_back(item);
        if rads_obs::metrics_enabled() {
            depth_histogram().observe(self.window.len() as u64);
        }
        evicted
    }

    /// Removes and returns the oldest in-flight item.
    pub fn pop(&mut self) -> Option<T> {
        self.window.pop_front()
    }

    /// Number of items currently in flight.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_preserves_issue_order() {
        let mut window = InflightWindow::new(2);
        assert_eq!(window.push(1), None);
        assert_eq!(window.push(2), None);
        assert_eq!(window.push(3), Some(1), "oldest item is completed first");
        assert_eq!(window.push(4), Some(2));
        assert_eq!(window.pop(), Some(3));
        assert_eq!(window.pop(), Some(4));
        assert_eq!(window.pop(), None);
        assert!(window.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut window = InflightWindow::new(0);
        assert_eq!(window.push('a'), None);
        assert_eq!(window.len(), 1);
        assert_eq!(window.push('b'), Some('a'));
    }
}
