//! The scoped work-stealing pool.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Stealer, Worker};

use crate::ExecConfig;

/// What the pool actually did, for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads used (1 = ran inline on the caller's thread).
    pub workers: usize,
    /// Work units (chunks of items) executed.
    pub tasks: usize,
    /// Work units a worker took from a sibling's deque instead of its own.
    pub steals: usize,
}

/// Runs `f(worker_id)` on `workers` scoped threads and returns the results in
/// worker-id order. With `workers <= 1` the closure runs inline on the
/// caller's thread — the exact sequential path, no thread is spawned.
///
/// The closure is responsible for its own work sharing (the engine passes a
/// shared queue); this helper only owns thread lifecycle and deterministic
/// result collection. A panicking worker propagates as a panic here.
pub fn scoped_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 {
        return vec![f(0)];
    }
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> =
            (0..workers).map(|w| scope.spawn(move |_| f(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
    .expect("worker pool panicked")
}

/// Maps `f` over `items` on a work-stealing pool and returns the results in
/// item order, together with pool statistics.
///
/// Items are grouped into work units of `config.steal_granularity` items;
/// units are dealt round-robin onto per-worker deques; a worker pops its own
/// deque LIFO and, when empty, steals FIFO from its siblings (starting at its
/// right neighbour, so contention spreads). Each worker buffers `(index,
/// result)` pairs privately and the pool scatters them into the output vector
/// afterwards, so the result is bit-identical for every worker count (the
/// determinism contract in the [crate docs](crate)) as long as `f` is pure.
///
/// `f` receives `(worker_id, item_index, &item)`.
pub fn parallel_map<T, R, F>(config: &ExecConfig, items: &[T], f: F) -> (Vec<R>, ExecStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    let workers = config.effective_workers();
    let granularity = config.effective_granularity();
    let mut stats = ExecStats { workers, ..Default::default() };

    if workers <= 1 || items.len() <= granularity {
        stats.workers = 1;
        stats.tasks = usize::from(!items.is_empty());
        let out = items.iter().enumerate().map(|(i, item)| f(0, i, item)).collect();
        return (out, stats);
    }

    // Deal work units (index ranges) round-robin onto the per-worker deques.
    let deques: Vec<Worker<Range<usize>>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Range<usize>>> = deques.iter().map(|d| d.stealer()).collect();
    let mut task_count = 0;
    for (t, start) in (0..items.len()).step_by(granularity).enumerate() {
        let end = (start + granularity).min(items.len());
        deques[t % workers].push(start..end);
        task_count += 1;
    }
    stats.tasks = task_count;

    let steals = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = scoped_workers(workers, |w| {
        let mut buffer: Vec<(usize, R)> = Vec::new();
        loop {
            // Own deque first; then scan the siblings for work to steal.
            let unit = deques[w].pop().or_else(|| {
                (1..workers).find_map(|offset| {
                    let victim = (w + offset) % workers;
                    let stolen = stealers[victim].steal().success();
                    if stolen.is_some() {
                        steals.fetch_add(1, Ordering::Relaxed);
                    }
                    stolen
                })
            });
            let Some(range) = unit else { break };
            for i in range {
                buffer.push((i, f(w, i, &items[i])));
            }
        }
        buffer
    });
    stats.steals = steals.load(Ordering::Relaxed);

    // Scatter the buffered results back into item order.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "item {i} executed twice");
        slots[i] = Some(r);
    }
    let out = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("item {i} was never executed")))
        .collect();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_results_are_in_worker_order() {
        for n in [1, 2, 5] {
            let ids = scoped_workers(n, |w| w * 10);
            assert_eq!(ids, (0..n).map(|w| w * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_preserves_item_order_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8] {
            let cfg = ExecConfig { workers, steal_granularity: 4 };
            let (out, stats) = parallel_map(&cfg, &items, |_, _, &x| x * x);
            assert_eq!(out, expected, "workers {workers}");
            assert_eq!(stats.workers, workers.max(1));
            if workers > 1 {
                assert!(stats.tasks >= items.len() / 4, "workers {workers}: {stats:?}");
            }
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        let cfg = ExecConfig { workers: 4, steal_granularity: 1 };
        let (_, stats) = parallel_map(&cfg, &items, |_, i, _| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        assert_eq!(stats.tasks, 100);
    }

    #[test]
    fn imbalanced_work_gets_stolen() {
        // Worker 0's deque gets every slow task (round-robin deal with
        // granularity 1 puts items 0, 4, 8, .. there); the other workers'
        // tasks finish immediately, so they must steal to stay busy.
        let items: Vec<usize> = (0..64).collect();
        let cfg = ExecConfig { workers: 4, steal_granularity: 1 };
        let (out, stats) = parallel_map(&cfg, &items, |_, i, &x| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        assert!(stats.steals > 0, "no stealing happened: {stats:?}");
    }

    #[test]
    fn small_inputs_run_inline() {
        let cfg = ExecConfig { workers: 8, steal_granularity: 16 };
        let (out, stats) = parallel_map(&cfg, &[1, 2, 3], |w, _, &x| {
            assert_eq!(w, 0);
            x * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let cfg = ExecConfig::with_workers(4);
        let (out, stats) = parallel_map(&cfg, &[] as &[u32], |_, _, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn worker_ids_are_within_range() {
        let items: Vec<u32> = (0..200).collect();
        let cfg = ExecConfig { workers: 3, steal_granularity: 2 };
        let (ids, _) = parallel_map(&cfg, &items, |w, _, _| w);
        assert!(ids.iter().all(|&w| w < 3));
    }
}
