//! Intra-machine parallel execution for RADS.
//!
//! The paper's runtime gives every machine one engine thread; on a multicore
//! box that leaves most of the hardware idle. This crate provides the
//! *intra-machine* worker pool the engine uses to parallelize its two
//! embarrassingly decomposable phases — SM-E start-candidate enumeration and
//! R-Meef region-group processing — without changing any result:
//!
//! * [`parallel_map`] runs a function over a slice on a scoped work-stealing
//!   pool (per-worker [Chase–Lev-style deques](crossbeam::deque) seeded
//!   round-robin, idle workers steal from their siblings) and returns the
//!   results **in item order**, so the merged output is independent of which
//!   worker ran which task and of the interleaving between them.
//! * [`scoped_workers`] spawns `n` long-running workers that share work
//!   through caller-provided state (the engine's region-group queue plays
//!   the role of the injector there, because waiting groups must stay
//!   visible to *other machines'* `shareR` requests too) and returns their
//!   results in worker-id order.
//!
//! Determinism contract: for a pure task function, `parallel_map` output is
//! bit-identical for every worker count (including 1, which runs inline on
//! the caller's thread without spawning). [`ExecStats`] reports how much
//! stealing actually happened, which tests use to prove the pool does more
//! than decorate a sequential loop.

mod inflight;
mod pool;

pub use inflight::InflightWindow;
pub use pool::{parallel_map, scoped_workers, ExecStats};

/// Environment variable consulted by [`workers_from_env`] (and therefore by
/// `RadsConfig::default()`): the number of intra-machine worker threads.
pub const WORKERS_ENV: &str = "RADS_WORKERS";

/// Default number of SM-E start candidates per work unit (the stealing
/// granularity). Small enough that a handful of heavy candidates cannot
/// serialize a run, large enough that task bookkeeping stays negligible.
pub const DEFAULT_STEAL_GRANULARITY: usize = 8;

/// Configuration of the intra-machine worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads per machine. `1` (or `0`) runs inline on the
    /// engine thread — the exact sequential code path.
    pub workers: usize,
    /// Number of items per work unit in [`parallel_map`]: the knob trading
    /// stealing overhead (small values) against load imbalance (large
    /// values).
    pub steal_granularity: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { workers: workers_from_env(), steal_granularity: DEFAULT_STEAL_GRANULARITY }
    }
}

impl ExecConfig {
    /// The sequential configuration (one worker), independent of the
    /// environment. Tests that pin the sequential path use this.
    pub fn sequential() -> Self {
        ExecConfig { workers: 1, steal_granularity: DEFAULT_STEAL_GRANULARITY }
    }

    /// A pool of `workers` threads with the default granularity.
    pub fn with_workers(workers: usize) -> Self {
        ExecConfig { workers, steal_granularity: DEFAULT_STEAL_GRANULARITY }
    }

    /// The effective worker count (at least 1).
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// The effective stealing granularity (at least 1).
    pub fn effective_granularity(&self) -> usize {
        self.steal_granularity.max(1)
    }
}

/// Reads the worker count from the `RADS_WORKERS` environment variable,
/// defaulting to `1` (sequential) when unset, unparsable or zero.
///
/// The CI matrix runs the whole test suite under `RADS_WORKERS=1` and
/// `RADS_WORKERS=4`, so both the sequential and the parallel code paths stay
/// green.
pub fn workers_from_env() -> usize {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_to_at_least_one() {
        let cfg = ExecConfig { workers: 0, steal_granularity: 0 };
        assert_eq!(cfg.effective_workers(), 1);
        assert_eq!(cfg.effective_granularity(), 1);
        assert_eq!(ExecConfig::sequential().workers, 1);
        assert_eq!(ExecConfig::with_workers(3).workers, 3);
    }

    #[test]
    fn env_parsing_defaults_to_sequential() {
        // `workers_from_env` reads whatever the harness set; it must always
        // return something usable.
        assert!(workers_from_env() >= 1);
    }
}
