//! Partitioning algorithms.
//!
//! The paper uses METIS's multilevel k-way partitioner. METIS is not
//! available offline, so this module provides three partitioners spanning the
//! locality spectrum:
//!
//! * [`HashPartitioner`] — vertex id modulo machine count. No locality; the
//!   adversarial case where almost every vertex is a border vertex.
//! * [`BfsPartitioner`] — contiguous BFS blocks of equal size. Cheap and
//!   already gives road-network-style locality.
//! * [`LabelPropagationPartitioner`] — farthest-point region growing followed
//!   by balanced label-propagation refinement, our stand-in for METIS: it
//!   minimizes the edge cut while keeping parts balanced within a
//!   configurable slack.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rads_graph::{algorithms, Graph, VertexId};

use crate::partitioning::Partitioning;

/// A k-way graph partitioner.
pub trait Partitioner {
    /// Splits `graph` into `machines` parts.
    fn partition(&self, graph: &Graph, machines: usize) -> Partitioning;

    /// Human-readable name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// Which partitioner to use; a small enum so experiment configs stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// [`HashPartitioner`]
    Hash,
    /// [`BfsPartitioner`]
    Bfs,
    /// [`LabelPropagationPartitioner`] with default settings
    LabelPropagation,
}

impl PartitionerKind {
    /// Instantiates the partitioner.
    pub fn build(self) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::Hash => Box::new(HashPartitioner),
            PartitionerKind::Bfs => Box::new(BfsPartitioner),
            PartitionerKind::LabelPropagation => Box::new(LabelPropagationPartitioner::default()),
        }
    }
}

/// Assigns vertex `v` to machine `v % m`. Maximum dispersion, no locality.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, graph: &Graph, machines: usize) -> Partitioning {
        assert!(machines > 0);
        let assignment = (0..graph.vertex_count()).map(|v| v % machines).collect();
        Partitioning::new(assignment, machines)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Splits the graph into `m` equal-size blocks of a global BFS order, so each
/// part is a connected, local chunk when the graph has spatial structure.
#[derive(Debug, Default, Clone, Copy)]
pub struct BfsPartitioner;

impl Partitioner for BfsPartitioner {
    fn partition(&self, graph: &Graph, machines: usize) -> Partitioning {
        assert!(machines > 0);
        let n = graph.vertex_count();
        if n == 0 {
            return Partitioning::new(Vec::new(), machines);
        }
        // Global BFS order over all components.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            queue.push_back(start as VertexId);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &w in graph.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        // Contiguous BFS blocks of (almost) equal size: machine of BFS rank r
        // is `r * machines / n`, which keeps every machine non-empty whenever
        // n >= machines.
        let mut assignment = vec![0usize; n];
        for (rank, &v) in order.iter().enumerate() {
            assignment[v as usize] = (rank * machines / n).min(machines - 1);
        }
        Partitioning::new(assignment, machines)
    }

    fn name(&self) -> &'static str {
        "bfs-blocks"
    }
}

/// The METIS stand-in: farthest-point region growing (`grow_regions`)
/// seeds one compact, balanced part per machine, then balanced label
/// propagation polishes the boundaries. The region-growing seed is what
/// delivers the low edge cut on spatial graphs; the sweeps only refine it.
#[derive(Debug, Clone)]
pub struct LabelPropagationPartitioner {
    /// Number of label-propagation sweeps.
    pub iterations: usize,
    /// Maximum allowed imbalance: a part may hold at most
    /// `ceil(n / m) * (1 + slack)` vertices.
    pub balance_slack: f64,
    /// RNG seed (vertex visit order is shuffled each sweep).
    pub seed: u64,
}

impl Default for LabelPropagationPartitioner {
    fn default() -> Self {
        LabelPropagationPartitioner { iterations: 8, balance_slack: 0.05, seed: 0x5ADD }
    }
}

impl LabelPropagationPartitioner {
    /// Creates a partitioner with explicit parameters.
    pub fn new(iterations: usize, balance_slack: f64, seed: u64) -> Self {
        LabelPropagationPartitioner { iterations, balance_slack, seed }
    }
}

/// Balanced region growing: seed one part per machine with farthest-point
/// sampling, then grow all parts simultaneously by multi-source BFS under a
/// per-part size cap. On graphs with spatial structure (road networks,
/// lattices) this produces compact, connected regions whose boundary — and
/// therefore edge cut — is close to what a multilevel partitioner achieves,
/// which is exactly the property RADS's SM-E phase depends on.
fn grow_regions(graph: &Graph, machines: usize, cap: usize) -> Vec<usize> {
    let n = graph.vertex_count();
    // Farthest-point seeds: start from vertex 0, repeatedly take the vertex
    // farthest from (or unreachable from) all seeds chosen so far.
    let mut seeds: Vec<VertexId> = vec![0];
    while seeds.len() < machines.min(n) {
        let dist = algorithms::multi_source_bfs(graph, seeds.iter().copied());
        let next = (0..n as VertexId)
            .filter(|&v| dist[v as usize] != 0) // distance 0 == already a seed
            .max_by_key(|&v| dist[v as usize])
            .expect("seeds.len() < n leaves a candidate");
        seeds.push(next);
    }
    const UNASSIGNED: usize = usize::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut sizes = vec![0usize; machines];
    let mut queues: Vec<std::collections::VecDeque<VertexId>> =
        (0..machines).map(|_| std::collections::VecDeque::new()).collect();
    for (m, &s) in seeds.iter().enumerate() {
        assignment[s as usize] = m;
        sizes[m] = 1;
        queues[m].extend(graph.neighbors(s).iter().copied());
    }
    // Round-robin growth keeps the parts balanced without a priority queue.
    let mut active = true;
    while active {
        active = false;
        for m in 0..machines {
            if sizes[m] >= cap {
                continue;
            }
            while let Some(v) = queues[m].pop_front() {
                if assignment[v as usize] != UNASSIGNED {
                    continue;
                }
                assignment[v as usize] = m;
                sizes[m] += 1;
                queues[m].extend(graph.neighbors(v).iter().copied());
                active = true;
                break;
            }
        }
    }
    // Leftovers arise when a component was never reached by any seed, or when
    // a part's growth stalled because neighbouring parts swallowed its whole
    // frontier. Flood-fill each leftover region into the smallest part and
    // spill into the next-smallest part whenever the current one hits the
    // balance cap: vertices stay in contiguous chunks and the cap still holds
    // (the caps sum to at least `n`, so a part below cap always exists).
    let pick_part = |sizes: &[usize]| {
        (0..machines)
            .filter(|&m| sizes[m] < cap)
            .min_by_key(|&m| sizes[m])
            .unwrap_or_else(|| (0..machines).min_by_key(|&m| sizes[m]).unwrap())
    };
    let mut stack = Vec::new();
    for v in 0..n as VertexId {
        if assignment[v as usize] != UNASSIGNED {
            continue;
        }
        let mut m = pick_part(&sizes);
        stack.push(v);
        while let Some(u) = stack.pop() {
            if assignment[u as usize] != UNASSIGNED {
                continue;
            }
            if sizes[m] >= cap {
                m = pick_part(&sizes);
            }
            assignment[u as usize] = m;
            sizes[m] += 1;
            for &w in graph.neighbors(u) {
                if assignment[w as usize] == UNASSIGNED {
                    stack.push(w);
                }
            }
        }
    }
    assignment
}

impl Partitioner for LabelPropagationPartitioner {
    fn partition(&self, graph: &Graph, machines: usize) -> Partitioning {
        assert!(machines > 0);
        let n = graph.vertex_count();
        if n == 0 {
            return Partitioning::new(Vec::new(), machines);
        }
        // Seed with balanced region growing so the initial solution is already
        // compact and balanced; label propagation then only polishes the
        // boundaries.
        let cap = ((n.div_ceil(machines)) as f64 * (1.0 + self.balance_slack)).ceil() as usize;
        let mut assignment = grow_regions(graph, machines, cap);
        let mut sizes = vec![0usize; machines];
        for &m in &assignment {
            sizes[m] += 1;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut visit: Vec<VertexId> = (0..n as VertexId).collect();
        let mut gains = vec![0usize; machines];
        for _ in 0..self.iterations {
            visit.shuffle(&mut rng);
            let mut moved = 0usize;
            for &v in &visit {
                let current = assignment[v as usize];
                for g in gains.iter_mut() {
                    *g = 0;
                }
                for &w in graph.neighbors(v) {
                    gains[assignment[w as usize]] += 1;
                }
                // Best target respecting the balance cap.
                let mut best = current;
                let mut best_gain = gains[current];
                for (m, &g) in gains.iter().enumerate() {
                    if m == current {
                        continue;
                    }
                    if g > best_gain && sizes[m] < cap {
                        best = m;
                        best_gain = g;
                    }
                }
                if best != current && sizes[current] > 1 {
                    sizes[current] -= 1;
                    sizes[best] += 1;
                    assignment[v as usize] = best;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
        // Guarantee every machine owns at least one vertex (degenerate inputs).
        for m in 0..machines {
            if sizes[m] == 0 {
                if let Some(v) = (0..n).find(|&v| sizes[assignment[v]] > 1) {
                    sizes[assignment[v]] -= 1;
                    assignment[v] = m;
                    sizes[m] += 1;
                }
            }
        }
        Partitioning::new(assignment, machines)
    }

    fn name(&self) -> &'static str {
        "label-propagation"
    }
}

/// Edge cut of an assignment: number of edges whose endpoints live on
/// different machines.
pub fn edge_cut(graph: &Graph, partitioning: &Partitioning) -> usize {
    graph
        .edges()
        .filter(|&(u, v)| partitioning.owner(u) != partitioning.owner(v))
        .count()
}

/// Convenience: partition and return quality statistics alongside.
pub fn partition_with_stats(
    partitioner: &dyn Partitioner,
    graph: &Graph,
    machines: usize,
) -> (Partitioning, crate::stats::PartitionStats) {
    let p = partitioner.partition(graph, machines);
    let stats = crate::stats::PartitionStats::compute(graph, &p);
    (p, stats)
}

/// Check partitions stay connected enough for BFS-based diameters; used by a
/// couple of tests that need a quick sanity signal.
pub fn largest_part_fraction(partitioning: &Partitioning) -> f64 {
    let sizes = partitioning.sizes();
    let max = sizes.iter().copied().max().unwrap_or(0);
    let total: usize = sizes.iter().sum();
    if total == 0 {
        0.0
    } else {
        max as f64 / total as f64
    }
}

/// Re-export used by tests: connectivity helper from `rads-graph`.
pub use algorithms::is_connected;

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::{barabasi_albert, community_graph, grid_2d};

    #[test]
    fn hash_partitioner_is_balanced_but_cuts_everything() {
        let g = grid_2d(10, 10);
        let p = HashPartitioner.partition(&g, 4);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes.iter().all(|&s| s == 25));
        // a grid has no edges between vertices with equal id mod 4 except
        // distance-4 pairs, so nearly every edge is cut
        let cut = edge_cut(&g, &p);
        assert!(cut as f64 > 0.9 * g.edge_count() as f64);
    }

    #[test]
    fn bfs_partitioner_has_low_cut_on_grid() {
        let g = grid_2d(10, 10);
        let p = BfsPartitioner.partition(&g, 4);
        let cut = edge_cut(&g, &p);
        let hash_cut = edge_cut(&g, &HashPartitioner.partition(&g, 4));
        assert!(cut < hash_cut / 2, "bfs cut {cut} not much better than hash cut {hash_cut}");
        assert_eq!(p.sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn label_propagation_beats_or_matches_bfs_on_communities() {
        let g = community_graph(4, 25, 0.35, 0.01, 3);
        let bfs_cut = edge_cut(&g, &BfsPartitioner.partition(&g, 4));
        let lp = LabelPropagationPartitioner::default();
        let p = lp.partition(&g, 4);
        let lp_cut = edge_cut(&g, &p);
        assert!(lp_cut <= bfs_cut, "lp cut {lp_cut} worse than bfs cut {bfs_cut}");
        // balance within the configured slack (plus one for rounding)
        let cap = ((100f64 / 4.0) * 1.05).ceil() as usize + 1;
        assert!(p.sizes().iter().all(|&s| s <= cap));
    }

    #[test]
    fn every_machine_owns_at_least_one_vertex() {
        let g = barabasi_albert(200, 2, 5);
        for m in [2, 3, 5, 8] {
            for kind in [PartitionerKind::Hash, PartitionerKind::Bfs, PartitionerKind::LabelPropagation] {
                let p = kind.build().partition(&g, m);
                assert!(p.sizes().iter().all(|&s| s > 0), "{kind:?} with {m} machines left a machine empty");
            }
        }
    }

    #[test]
    fn partitioner_kind_names() {
        assert_eq!(PartitionerKind::Hash.build().name(), "hash");
        assert_eq!(PartitionerKind::Bfs.build().name(), "bfs-blocks");
        assert_eq!(PartitionerKind::LabelPropagation.build().name(), "label-propagation");
    }

    #[test]
    fn single_machine_partition_has_no_cut() {
        let g = grid_2d(5, 5);
        for kind in [PartitionerKind::Hash, PartitionerKind::Bfs, PartitionerKind::LabelPropagation] {
            let p = kind.build().partition(&g, 1);
            assert_eq!(edge_cut(&g, &p), 0);
        }
    }

    #[test]
    fn largest_part_fraction_bounds() {
        let g = grid_2d(6, 6);
        let p = BfsPartitioner.partition(&g, 3);
        let f = largest_part_fraction(&p);
        assert!((1.0 / 3.0..=1.0).contains(&f));
    }
}
