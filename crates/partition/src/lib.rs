//! Graph partitioning substrate for the RADS reproduction.
//!
//! The paper partitions the data graph across `m` machines with METIS and
//! stores, on each machine, the adjacency lists of the vertices it *owns*
//! plus a replicated ownership map (one byte per vertex). This crate provides:
//!
//! * [`Partitioning`] — the assignment of every vertex to a machine.
//! * [`LocalPartition`] — what one machine stores: adjacency lists of owned
//!   vertices, the set of border vertices, border distances (Definition 1),
//!   and local edge verification.
//! * [`PartitionedGraph`] — the whole cluster view (all local partitions plus
//!   the replicated ownership map), which the runtime hands to each machine.
//! * [`partitioner`] — partitioning algorithms: hash (no locality), BFS blocks
//!   (cheap locality), and a label-propagation + greedy refinement partitioner
//!   standing in for METIS's multilevel k-way algorithm.
//! * [`stats`] — partition quality metrics (edge cut, balance, border
//!   fraction) used by tests and the experiment harness.

pub mod local;
pub mod partitioner;
pub mod partitioning;
pub mod stats;

pub use local::LocalPartition;
pub use partitioner::{
    BfsPartitioner, HashPartitioner, LabelPropagationPartitioner, Partitioner, PartitionerKind,
};
pub use partitioning::{MachineId, PartitionedGraph, Partitioning};
pub use stats::PartitionStats;
