//! Vertex-to-machine assignments and the cluster-wide partitioned graph view.

use rads_graph::{Graph, VertexId};

use crate::local::LocalPartition;

/// Identifier of a machine (`M_1 .. M_m` in the paper, zero-based here).
pub type MachineId = usize;

/// The assignment of every data vertex to exactly one machine.
///
/// This is the "ownership record" the paper assumes is replicated on every
/// machine ("a map whose size is |V|, ... one extra byte space for each
/// vertex", Section 3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<MachineId>,
    num_machines: usize,
}

impl Partitioning {
    /// Creates a partitioning from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_machines` or if `num_machines == 0`.
    pub fn new(assignment: Vec<MachineId>, num_machines: usize) -> Self {
        assert!(num_machines > 0, "at least one machine is required");
        for (v, &m) in assignment.iter().enumerate() {
            assert!(m < num_machines, "vertex {v} assigned to machine {m} >= {num_machines}");
        }
        Partitioning { assignment, num_machines }
    }

    /// Puts every vertex on machine 0 (the degenerate single-machine case).
    pub fn single_machine(n: usize) -> Self {
        Partitioning { assignment: vec![0; n], num_machines: 1 }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Number of vertices covered by this partitioning.
    pub fn vertex_count(&self) -> usize {
        self.assignment.len()
    }

    /// The machine that owns `v`.
    pub fn owner(&self, v: VertexId) -> MachineId {
        self.assignment[v as usize]
    }

    /// Whether machine `m` owns vertex `v`.
    pub fn owns(&self, m: MachineId, v: VertexId) -> bool {
        self.owner(v) == m
    }

    /// All vertices owned by machine `m` (in increasing id order).
    pub fn owned_vertices(&self, m: MachineId) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &o)| o == m)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Number of vertices owned by each machine.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_machines];
        for &m in &self.assignment {
            sizes[m] += 1;
        }
        sizes
    }

    /// The raw assignment slice (indexed by vertex id).
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    /// Approximate bytes needed to replicate the ownership map on one machine
    /// (the paper stores one byte per vertex; we account a `u8` as well since
    /// `num_machines <= 255` in all experiments).
    pub fn replicated_bytes(&self) -> usize {
        self.assignment.len()
    }
}

/// The complete partitioned data graph: one [`LocalPartition`] per machine
/// plus the replicated [`Partitioning`].
///
/// The runtime gives machine `t` shared access to `local(t)` and to the
/// ownership map; access to *other* machines' partitions must go through
/// messages (the engines never touch `local(s)` for `s != t` directly, which
/// keeps the simulation faithful to the distributed setting).
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    partitioning: Partitioning,
    locals: Vec<LocalPartition>,
    global_vertex_count: usize,
    global_edge_count: usize,
}

impl PartitionedGraph {
    /// Splits `graph` according to `partitioning`.
    pub fn build(graph: &Graph, partitioning: Partitioning) -> Self {
        assert_eq!(
            graph.vertex_count(),
            partitioning.vertex_count(),
            "partitioning does not cover the graph"
        );
        let locals = (0..partitioning.num_machines())
            .map(|m| LocalPartition::build(graph, &partitioning, m))
            .collect();
        PartitionedGraph {
            global_vertex_count: graph.vertex_count(),
            global_edge_count: graph.edge_count(),
            partitioning,
            locals,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.partitioning.num_machines()
    }

    /// The replicated ownership map.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Machine `m`'s local partition.
    pub fn local(&self, m: MachineId) -> &LocalPartition {
        &self.locals[m]
    }

    /// All local partitions.
    pub fn locals(&self) -> &[LocalPartition] {
        &self.locals
    }

    /// |V| of the global graph.
    pub fn global_vertex_count(&self) -> usize {
        self.global_vertex_count
    }

    /// |E| of the global graph.
    pub fn global_edge_count(&self) -> usize {
        self.global_edge_count
    }

    /// The machine owning vertex `v`.
    pub fn owner(&self, v: VertexId) -> MachineId {
        self.partitioning.owner(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::ring_lattice;

    #[test]
    fn partitioning_basics() {
        let p = Partitioning::new(vec![0, 1, 0, 1, 2], 3);
        assert_eq!(p.num_machines(), 3);
        assert_eq!(p.vertex_count(), 5);
        assert_eq!(p.owner(3), 1);
        assert!(p.owns(2, 4));
        assert!(!p.owns(0, 4));
        assert_eq!(p.owned_vertices(0), vec![0, 2]);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
        assert_eq!(p.replicated_bytes(), 5);
    }

    #[test]
    #[should_panic]
    fn partitioning_rejects_out_of_range_machines() {
        let _ = Partitioning::new(vec![0, 3], 3);
    }

    #[test]
    fn single_machine_partitioning() {
        let p = Partitioning::single_machine(4);
        assert_eq!(p.num_machines(), 1);
        assert!(p.owns(0, 3));
    }

    #[test]
    fn partitioned_graph_covers_all_edges() {
        let g = ring_lattice(12, 1);
        let assignment: Vec<MachineId> = (0..12).map(|v| v / 4).collect();
        let pg = PartitionedGraph::build(&g, Partitioning::new(assignment, 3));
        assert_eq!(pg.num_machines(), 3);
        assert_eq!(pg.global_vertex_count(), 12);
        assert_eq!(pg.global_edge_count(), g.edge_count());
        // every edge of the graph is owned by at least one machine
        for (u, v) in g.edges() {
            let covered = (0..3).any(|m| pg.local(m).verify_edge(u, v) == Some(true));
            assert!(covered, "edge ({u},{v}) not covered");
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let g = ring_lattice(6, 0);
        let _ = PartitionedGraph::build(&g, Partitioning::single_machine(5));
    }
}
