//! Partition quality metrics.

use rads_graph::Graph;

use crate::partitioning::Partitioning;

/// Quality statistics of a partitioning, used by tests, experiments and the
/// dataset profiles (Table 1 companion data).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionStats {
    /// Number of machines.
    pub machines: usize,
    /// Vertices per machine.
    pub sizes: Vec<usize>,
    /// Number of edges with endpoints on different machines.
    pub edge_cut: usize,
    /// Total number of edges.
    pub total_edges: usize,
    /// Number of border vertices (over all machines).
    pub border_vertices: usize,
    /// Total number of vertices.
    pub total_vertices: usize,
}

impl PartitionStats {
    /// Computes statistics of `partitioning` over `graph`.
    pub fn compute(graph: &Graph, partitioning: &Partitioning) -> Self {
        let machines = partitioning.num_machines();
        let sizes = partitioning.sizes();
        let mut edge_cut = 0usize;
        let mut is_border = vec![false; graph.vertex_count()];
        for (u, v) in graph.edges() {
            if partitioning.owner(u) != partitioning.owner(v) {
                edge_cut += 1;
                is_border[u as usize] = true;
                is_border[v as usize] = true;
            }
        }
        PartitionStats {
            machines,
            sizes,
            edge_cut,
            total_edges: graph.edge_count(),
            border_vertices: is_border.iter().filter(|&&b| b).count(),
            total_vertices: graph.vertex_count(),
        }
    }

    /// Fraction of edges cut by the partitioning.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.edge_cut as f64 / self.total_edges as f64
        }
    }

    /// Fraction of vertices that are border vertices.
    pub fn border_fraction(&self) -> f64 {
        if self.total_vertices == 0 {
            0.0
        } else {
            self.border_vertices as f64 / self.total_vertices as f64
        }
    }

    /// Load imbalance: `max part size / ideal part size` (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.sizes.iter().copied().max().unwrap_or(0) as f64;
        let ideal = self.total_vertices as f64 / self.machines as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

impl std::fmt::Display for PartitionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "machines={} cut={}/{} ({:.1}%) border={}/{} ({:.1}%) imbalance={:.3}",
            self.machines,
            self.edge_cut,
            self.total_edges,
            100.0 * self.cut_fraction(),
            self.border_vertices,
            self.total_vertices,
            100.0 * self.border_fraction(),
            self.imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{BfsPartitioner, HashPartitioner, Partitioner};
    use rads_graph::generators::grid_2d;

    #[test]
    fn stats_on_a_grid() {
        let g = grid_2d(8, 8);
        let p = BfsPartitioner.partition(&g, 4);
        let s = PartitionStats::compute(&g, &p);
        assert_eq!(s.machines, 4);
        assert_eq!(s.total_vertices, 64);
        assert_eq!(s.total_edges, g.edge_count());
        assert!(s.cut_fraction() > 0.0 && s.cut_fraction() < 0.5);
        assert!(s.border_fraction() < 0.8);
        assert!(s.imbalance() >= 1.0 && s.imbalance() < 1.2);
        let rendered = format!("{s}");
        assert!(rendered.contains("machines=4"));
    }

    #[test]
    fn hash_partition_has_more_border_vertices_than_bfs() {
        let g = grid_2d(10, 10);
        let hash = PartitionStats::compute(&g, &HashPartitioner.partition(&g, 4));
        let bfs = PartitionStats::compute(&g, &BfsPartitioner.partition(&g, 4));
        assert!(hash.border_fraction() > bfs.border_fraction());
        assert!(hash.edge_cut > bfs.edge_cut);
    }

    #[test]
    fn single_machine_stats_are_trivial() {
        let g = grid_2d(4, 4);
        let s = PartitionStats::compute(&g, &Partitioning::single_machine(16));
        assert_eq!(s.edge_cut, 0);
        assert_eq!(s.border_vertices, 0);
        assert!((s.imbalance() - 1.0).abs() < 1e-9);
    }
}
