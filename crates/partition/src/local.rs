//! One machine's view of the partitioned data graph.

use std::collections::HashMap;

use rads_graph::{Graph, VertexId};

use crate::partitioning::{MachineId, Partitioning};

/// The data stored on one machine `M_t`:
///
/// * the adjacency list of every vertex **owned** by `M_t` (global vertex
///   ids, sorted) — this is the partition `G_t` of the paper, which owns an
///   edge iff at least one endpoint is owned;
/// * the set of **border vertices** `V^b_{G_t}` (owned vertices with at least
///   one neighbour owned elsewhere);
/// * the **border distance** of every owned vertex (Definition 1), computed
///   with a multi-source BFS from the border vertices restricted to owned
///   vertices.
#[derive(Debug, Clone)]
pub struct LocalPartition {
    machine: MachineId,
    /// Owned vertices in increasing global id order.
    owned: Vec<VertexId>,
    /// Global id -> index into `owned` / `offsets`.
    local_index: HashMap<VertexId, u32>,
    /// CSR over the owned vertices; neighbour ids are global.
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    /// `true` for owned vertices with at least one foreign neighbour.
    is_border: Vec<bool>,
    /// Border distance per owned vertex (`u32::MAX` if the vertex cannot
    /// reach any border vertex inside the partition).
    border_distance: Vec<u32>,
    /// Number of edges owned by this machine (at least one endpoint owned).
    owned_edge_count: usize,
}

impl LocalPartition {
    /// Builds machine `machine`'s partition of `graph` under `partitioning`.
    pub fn build(graph: &Graph, partitioning: &Partitioning, machine: MachineId) -> Self {
        let owned = partitioning.owned_vertices(machine);
        let mut local_index = HashMap::with_capacity(owned.len());
        for (i, &v) in owned.iter().enumerate() {
            local_index.insert(v, i as u32);
        }
        let mut offsets = Vec::with_capacity(owned.len() + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        let mut is_border = vec![false; owned.len()];
        let mut owned_edges = 0usize;
        for (i, &v) in owned.iter().enumerate() {
            let adj = graph.neighbors(v);
            neighbors.extend_from_slice(adj);
            offsets.push(neighbors.len());
            for &w in adj {
                if partitioning.owner(w) != machine {
                    is_border[i] = true;
                    owned_edges += 1; // cross edge owned once by this side
                } else if w > v {
                    owned_edges += 1; // internal edge counted once
                }
            }
        }
        let border_distance = Self::compute_border_distance(&owned, &local_index, &offsets, &neighbors, &is_border);
        LocalPartition {
            machine,
            owned,
            local_index,
            offsets,
            neighbors,
            is_border,
            border_distance,
            owned_edge_count: owned_edges,
        }
    }

    fn compute_border_distance(
        owned: &[VertexId],
        local_index: &HashMap<VertexId, u32>,
        offsets: &[usize],
        neighbors: &[VertexId],
        is_border: &[bool],
    ) -> Vec<u32> {
        let mut dist = vec![u32::MAX; owned.len()];
        let mut queue = std::collections::VecDeque::new();
        for (i, &b) in is_border.iter().enumerate() {
            if b {
                dist[i] = 0;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            let d = dist[i];
            for &w in &neighbors[offsets[i]..offsets[i + 1]] {
                if let Some(&j) = local_index.get(&w) {
                    let j = j as usize;
                    if dist[j] == u32::MAX {
                        dist[j] = d + 1;
                        queue.push_back(j);
                    }
                }
            }
        }
        // Vertices that cannot reach any border vertex are effectively
        // infinitely far from the border: leave them at MAX.
        let _ = owned;
        dist
    }

    /// The machine id this partition belongs to.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of owned vertices.
    pub fn owned_count(&self) -> usize {
        self.owned.len()
    }

    /// Number of edges owned by this machine (each counted once per machine;
    /// cross edges are owned by both machines, as in the paper).
    pub fn owned_edge_count(&self) -> usize {
        self.owned_edge_count
    }

    /// The owned vertices, sorted by global id.
    pub fn owned_vertices(&self) -> &[VertexId] {
        &self.owned
    }

    /// Whether this machine owns `v`.
    pub fn owns(&self, v: VertexId) -> bool {
        self.local_index.contains_key(&v)
    }

    /// The adjacency list of an owned vertex (global ids), or `None` if the
    /// vertex is foreign.
    pub fn neighbors(&self, v: VertexId) -> Option<&[VertexId]> {
        self.local_index.get(&v).map(|&i| {
            let i = i as usize;
            &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
        })
    }

    /// Degree of an owned vertex.
    pub fn degree(&self, v: VertexId) -> Option<usize> {
        self.neighbors(v).map(|n| n.len())
    }

    /// Whether an owned vertex is a border vertex.
    pub fn is_border(&self, v: VertexId) -> Option<bool> {
        self.local_index.get(&v).map(|&i| self.is_border[i as usize])
    }

    /// All border vertices of this partition.
    pub fn border_vertices(&self) -> Vec<VertexId> {
        self.owned
            .iter()
            .zip(&self.is_border)
            .filter(|(_, &b)| b)
            .map(|(&v, _)| v)
            .collect()
    }

    /// Border distance of an owned vertex (Definition 1); `None` for foreign
    /// vertices, `u32::MAX` when the vertex cannot reach the border at all
    /// (then every embedding through it is local, so SM-E may process it).
    pub fn border_distance(&self, v: VertexId) -> Option<u32> {
        self.local_index.get(&v).map(|&i| self.border_distance[i as usize])
    }

    /// Verifies the existence of the data edge `(u, v)`.
    ///
    /// Returns `Some(true/false)` when at least one endpoint is owned (the
    /// machine can answer authoritatively, as in the paper's `verifyE`), and
    /// `None` when neither endpoint is owned (an *undetermined* edge for this
    /// machine).
    pub fn verify_edge(&self, u: VertexId, v: VertexId) -> Option<bool> {
        if u == v {
            return Some(false);
        }
        if let Some(adj) = self.neighbors(u) {
            return Some(adj.binary_search(&v).is_ok());
        }
        if let Some(adj) = self.neighbors(v) {
            return Some(adj.binary_search(&u).is_ok());
        }
        None
    }

    /// Approximate memory footprint of this partition in bytes (CSR arrays +
    /// index + flags), used by memory-budget accounting.
    pub fn memory_bytes(&self) -> usize {
        self.owned.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.is_border.len()
            + self.border_distance.len() * std::mem::size_of::<u32>()
            + self.local_index.len() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>())
    }

    /// The candidate vertices of a starting query vertex among the owned
    /// vertices: owned vertices whose degree is at least `min_degree`.
    /// (The usual degree-filter candidates used by all engines.)
    pub fn candidates_with_min_degree(&self, min_degree: usize) -> Vec<VertexId> {
        self.owned
            .iter()
            .enumerate()
            .filter(|(i, _)| self.offsets[*i + 1] - self.offsets[*i] >= min_degree)
            .map(|(_, &v)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::grid_2d;
    use rads_graph::GraphBuilder;

    /// 6-vertex path split in the middle: 0-1-2 | 3-4-5.
    fn split_path() -> (Graph, Partitioning) {
        let edges: Vec<(VertexId, VertexId)> = (0..5).map(|i| (i, i + 1)).collect();
        let g = GraphBuilder::from_edges(6, &edges);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        (g, p)
    }

    #[test]
    fn ownership_and_neighbors() {
        let (g, p) = split_path();
        let l0 = LocalPartition::build(&g, &p, 0);
        let l1 = LocalPartition::build(&g, &p, 1);
        assert_eq!(l0.owned_count(), 3);
        assert_eq!(l1.owned_count(), 3);
        assert!(l0.owns(2));
        assert!(!l0.owns(3));
        assert_eq!(l0.neighbors(2).unwrap(), &[1, 3]);
        assert!(l0.neighbors(4).is_none());
        assert_eq!(l0.degree(0), Some(1));
    }

    #[test]
    fn border_vertices_and_distances() {
        let (g, p) = split_path();
        let l0 = LocalPartition::build(&g, &p, 0);
        assert_eq!(l0.border_vertices(), vec![2]);
        assert_eq!(l0.border_distance(2), Some(0));
        assert_eq!(l0.border_distance(1), Some(1));
        assert_eq!(l0.border_distance(0), Some(2));
        assert_eq!(l0.border_distance(5), None);
        let l1 = LocalPartition::build(&g, &p, 1);
        assert_eq!(l1.border_vertices(), vec![3]);
        assert_eq!(l1.border_distance(5), Some(2));
    }

    #[test]
    fn edge_verification() {
        let (g, p) = split_path();
        let l0 = LocalPartition::build(&g, &p, 0);
        assert_eq!(l0.verify_edge(0, 1), Some(true));
        assert_eq!(l0.verify_edge(2, 3), Some(true)); // cross edge, owned endpoint 2
        assert_eq!(l0.verify_edge(0, 2), Some(false));
        assert_eq!(l0.verify_edge(4, 5), None); // both foreign: undetermined
        assert_eq!(l0.verify_edge(3, 3), Some(false));
    }

    #[test]
    fn owned_edges_count_cross_edges_on_both_sides() {
        let (g, p) = split_path();
        let l0 = LocalPartition::build(&g, &p, 0);
        let l1 = LocalPartition::build(&g, &p, 1);
        // 0-1, 1-2 internal to M0, plus the cross edge 2-3
        assert_eq!(l0.owned_edge_count(), 3);
        assert_eq!(l1.owned_edge_count(), 3);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn grid_interior_has_large_border_distance() {
        let g = grid_2d(6, 6);
        // left half machine 0, right half machine 1
        let assignment: Vec<MachineId> = (0..36).map(|v| if v % 6 < 3 { 0 } else { 1 }).collect();
        let p = Partitioning::new(assignment, 2);
        let l0 = LocalPartition::build(&g, &p, 0);
        // column 2 touches column 3 (foreign): border
        assert_eq!(l0.border_distance(2), Some(0));
        // column 0 is two hops from the border inside the partition
        assert_eq!(l0.border_distance(0), Some(2));
        assert!(l0.border_vertices().len() >= 6);
    }

    #[test]
    fn candidates_with_min_degree_filters() {
        let (g, p) = split_path();
        let l0 = LocalPartition::build(&g, &p, 0);
        assert_eq!(l0.candidates_with_min_degree(2), vec![1, 2]);
        assert_eq!(l0.candidates_with_min_degree(1).len(), 3);
        assert!(l0.candidates_with_min_degree(3).is_empty());
    }

    #[test]
    fn memory_accounting_positive() {
        let (g, p) = split_path();
        let l0 = LocalPartition::build(&g, &p, 0);
        assert!(l0.memory_bytes() > 0);
    }
}
