//! The multi-round distributed hash-join framework shared by TwinTwig, SEED
//! and Crystal.
//!
//! Each decomposition unit becomes a *relation* whose columns are the unit's
//! query vertices and whose rows are the unit's embeddings, enumerated locally
//! from the owned vertices. Units are then joined one per round: both sides
//! are hash-partitioned on the join key (the shared query vertices), shuffled
//! across the cluster, and joined machine-locally — exactly the
//! shuffle-heavy execution model the paper contrasts RADS against.

use std::collections::HashMap;

use rads_graph::{Graph, Pattern, PatternVertex, VertexId};
use rads_runtime::MachineContext;

use crate::common::{route_key, BaselineStats, StarUnit};

/// A relation: a schema of query vertices plus rows of data vertices aligned
/// with that schema.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// The query vertices each column corresponds to.
    pub schema: Vec<PatternVertex>,
    /// The rows.
    pub rows: Vec<Vec<VertexId>>,
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn new(schema: Vec<PatternVertex>) -> Self {
        Relation { schema, rows: Vec::new() }
    }

    /// Column index of query vertex `u`, if present.
    pub fn column_of(&self, u: PatternVertex) -> Option<usize> {
        self.schema.iter().position(|&v| v == u)
    }
}

/// Enumerates the local rows of a star unit: the center ranges over the
/// machine's owned vertices, the leaves over the center's neighbours
/// (ordered, injective). When `clique_storage` is provided and the unit's
/// vertices form a clique in the pattern, the leaf–leaf edges are enforced
/// immediately using the extended storage (SEED's star-clique-preserving
/// partition stores the edges among the neighbours of every owned vertex).
pub fn enumerate_star_relation(
    ctx: &MachineContext,
    pattern: &Pattern,
    unit: &StarUnit,
    clique_storage: Option<&Graph>,
) -> Relation {
    let local = ctx.partition();
    let mut relation = Relation::new(unit.vertices());
    let is_clique_unit = clique_storage.is_some()
        && unit
            .leaves
            .iter()
            .enumerate()
            .all(|(i, &a)| unit.leaves.iter().skip(i + 1).all(|&b| pattern.has_edge(a, b)));
    let min_center_degree = pattern.degree(unit.center).min(unit.leaves.len());
    for &center in local.owned_vertices() {
        let adj = local.neighbors(center).expect("owned vertex");
        if adj.len() < min_center_degree {
            continue;
        }
        let mut assignment: Vec<VertexId> = Vec::with_capacity(unit.leaves.len());
        enumerate_leaves(
            adj,
            unit.leaves.len(),
            center,
            &mut assignment,
            &mut |leaves: &[VertexId]| {
                if is_clique_unit {
                    let g = clique_storage.expect("clique storage present");
                    for i in 0..leaves.len() {
                        for j in i + 1..leaves.len() {
                            if !g.has_edge(leaves[i], leaves[j]) {
                                return;
                            }
                        }
                    }
                }
                let mut row = Vec::with_capacity(1 + leaves.len());
                row.push(center);
                row.extend_from_slice(leaves);
                relation.rows.push(row);
            },
        );
    }
    relation
}

fn enumerate_leaves(
    adj: &[VertexId],
    remaining: usize,
    center: VertexId,
    assignment: &mut Vec<VertexId>,
    emit: &mut impl FnMut(&[VertexId]),
) {
    if remaining == 0 {
        emit(assignment);
        return;
    }
    for &w in adj {
        if w == center || assignment.contains(&w) {
            continue;
        }
        assignment.push(w);
        enumerate_leaves(adj, remaining - 1, center, assignment, emit);
        assignment.pop();
    }
}

/// Performs one distributed hash-join round between `left` and `right`.
///
/// Both relations are shuffled by the values of their shared query vertices
/// (the join key); every machine joins the fragments it receives and returns
/// its part of the joined relation. Must be called by every machine in the
/// same round (it contains barriers). `tag_base` must be unique per round.
pub fn distributed_join(
    ctx: &MachineContext,
    stats: &mut BaselineStats,
    left: &Relation,
    right: &Relation,
    tag_base: u32,
) -> Relation {
    let machines = ctx.machines();
    let key_vars: Vec<PatternVertex> = left
        .schema
        .iter()
        .copied()
        .filter(|&u| right.schema.contains(&u))
        .collect();
    assert!(!key_vars.is_empty(), "join key must not be empty (units must be connected)");
    let left_key_cols: Vec<usize> = key_vars.iter().map(|&u| left.column_of(u).unwrap()).collect();
    let right_key_cols: Vec<usize> =
        key_vars.iter().map(|&u| right.column_of(u).unwrap()).collect();
    let right_extra_cols: Vec<usize> = right
        .schema
        .iter()
        .enumerate()
        .filter(|(_, u)| !key_vars.contains(u))
        .map(|(i, _)| i)
        .collect();
    let out_schema: Vec<PatternVertex> = left
        .schema
        .iter()
        .copied()
        .chain(right_extra_cols.iter().map(|&i| right.schema[i]))
        .collect();

    // -- shuffle both sides by the join key
    let shuffle = |rows: &[Vec<VertexId>], key_cols: &[usize], tag: u32| {
        let mut outgoing: Vec<Vec<Vec<VertexId>>> = vec![Vec::new(); machines];
        for row in rows {
            let key: Vec<VertexId> = key_cols.iter().map(|&c| row[c]).collect();
            outgoing[route_key(&key, machines)].push(row.clone());
        }
        for (target, batch) in outgoing.into_iter().enumerate() {
            ctx.send_rows(target, tag, batch).unwrap_or_else(|e| panic!("{e}"));
        }
    };
    shuffle(&left.rows, &left_key_cols, tag_base);
    shuffle(&right.rows, &right_key_cols, tag_base + 1);
    ctx.barrier().unwrap_or_else(|e| panic!("{e}"));

    let left_in = ctx.take_rows(tag_base);
    let right_in = ctx.take_rows(tag_base + 1);
    stats.observe_rows(left_in.len() + right_in.len(), left.schema.len().max(right.schema.len()));

    // -- local hash join
    let mut table: HashMap<Vec<VertexId>, Vec<&Vec<VertexId>>> = HashMap::new();
    for row in &right_in {
        let key: Vec<VertexId> = right_key_cols.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(row);
    }
    let mut out = Relation::new(out_schema);
    for lrow in &left_in {
        let key: Vec<VertexId> = left_key_cols.iter().map(|&c| lrow[c]).collect();
        let Some(matches) = table.get(&key) else { continue };
        'rows: for rrow in matches {
            let mut new_row = lrow.clone();
            for &c in &right_extra_cols {
                let v = rrow[c];
                // injectivity across the joined row
                if new_row.contains(&v) {
                    continue 'rows;
                }
                new_row.push(v);
            }
            out.rows.push(new_row);
        }
    }
    stats.observe_rows(out.rows.len(), out.schema.len());
    // keep all machines in lock-step before the next round reuses tags
    ctx.barrier().unwrap_or_else(|e| panic!("{e}"));
    out
}

/// Re-orders a final relation into embeddings indexed by query vertex and
/// applies `filter`. The relation's schema must cover every query vertex.
pub fn finalize_embeddings(
    pattern: &Pattern,
    relation: &Relation,
    mut filter: impl FnMut(&[VertexId]) -> bool,
) -> u64 {
    let n = pattern.vertex_count();
    let col_of: Vec<usize> = (0..n)
        .map(|u| relation.column_of(u).expect("final schema covers all query vertices"))
        .collect();
    let mut count = 0;
    let mut mapping = vec![0; n];
    for row in &relation.rows {
        for u in 0..n {
            mapping[u] = row[col_of[u]];
        }
        if filter(&mapping) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::queries;

    #[test]
    fn relation_column_lookup() {
        let r = Relation::new(vec![2, 0, 1]);
        assert_eq!(r.column_of(0), Some(1));
        assert_eq!(r.column_of(2), Some(0));
        assert_eq!(r.column_of(5), None);
    }

    #[test]
    fn leaf_enumeration_is_injective_and_ordered() {
        let adj = [1u32, 2, 3];
        let mut rows = Vec::new();
        let mut assignment = Vec::new();
        enumerate_leaves(&adj, 2, 99, &mut assignment, &mut |l| rows.push(l.to_vec()));
        assert_eq!(rows.len(), 6); // 3 * 2 ordered pairs
        for r in &rows {
            assert_ne!(r[0], r[1]);
        }
    }

    #[test]
    fn finalize_counts_with_filter() {
        let p = queries::query_by_name("triangle").unwrap();
        let r = Relation {
            schema: vec![0, 1, 2],
            rows: vec![vec![1, 2, 3], vec![3, 2, 1], vec![4, 4, 5]],
        };
        let count = finalize_embeddings(&p, &r, |m| m[0] < m[1] && m[1] < m[2]);
        assert_eq!(count, 1);
    }
}
