//! Distributed subgraph-enumeration baselines, reimplemented on the same
//! simulated runtime as RADS so the comparison is apples-to-apples (the paper
//! makes the same methodological choice by reimplementing PSgL, TwinTwig and
//! SEED in C++/MPI).
//!
//! * [`psgl`] — **PSgL** (Shao et al., SIGMOD 2014): Pregel-style graph
//!   exploration. Query vertices are matched one at a time in a connected
//!   order; partial matches are shuffled to the machine owning the vertex to
//!   expand from, then to the owner of the newly matched vertex for
//!   verification. No compression, no memory control.
//! * [`twintwig`] — **TwinTwig** (Lai et al., VLDB 2015): multi-round
//!   distributed hash joins where every decomposition unit is a star with at
//!   most two edges.
//! * [`seed`] — **SEED** (Lai et al., VLDB 2016): the same join framework
//!   with larger units — unrestricted stars plus clique units that are
//!   enumerated locally thanks to SEED's star-clique-preserving storage
//!   (each machine additionally stores the edges among the neighbours of its
//!   vertices).
//! * [`crystal`] — **Crystal** (Qiao et al., VLDB 2017): relies on a
//!   pre-built clique index; clique sub-patterns of the query are answered
//!   directly from the index and only the remainder is joined.
//!
//! All four systems return a [`BaselineOutcome`] carrying the embedding count,
//! the communication volume and the peak number of intermediate rows held by
//! any machine, which is what the evaluation section compares.

pub mod common;
pub mod crystal;
pub mod join;
pub mod psgl;
pub mod seed;
pub mod twintwig;

pub use common::{BaselineOutcome, BaselineStats};
pub use crystal::{run_crystal, CliqueIndex};
pub use psgl::run_psgl;
pub use seed::run_seed;
pub use twintwig::run_twintwig;
