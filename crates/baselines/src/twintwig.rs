//! TwinTwig (Lai et al., VLDB 2015): multi-round distributed joins of
//! "twin twig" units — stars with at most two edges.

use rads_graph::{Pattern, SymmetryBreaking};
use rads_runtime::Cluster;

use crate::common::{
    connect_units, is_canonical_embedding, star_edge_decomposition, BaselineOutcome, BaselineStats,
};
use crate::join::{distributed_join, enumerate_star_relation, finalize_embeddings};

/// Runs the TwinTwig join strategy (stars of at most two edges).
pub fn run_twintwig(cluster: &Cluster, pattern: &Pattern) -> BaselineOutcome {
    run_star_join(cluster, pattern, 2, "twintwig")
}

/// Shared star-join driver used by TwinTwig (`max_leaves = 2`) and by SEED's
/// no-clique fallback (`max_leaves = usize::MAX`).
pub(crate) fn run_star_join(
    cluster: &Cluster,
    pattern: &Pattern,
    max_leaves: usize,
    system: &'static str,
) -> BaselineOutcome {
    let units = connect_units(star_edge_decomposition(pattern, max_leaves));
    let symmetry = SymmetryBreaking::new(pattern);

    let outcome = cluster.run(|ctx| {
        let mut stats = BaselineStats::default();
        let mut current = enumerate_star_relation(ctx, pattern, &units[0], None);
        stats.observe_rows(current.rows.len(), current.schema.len());
        for (k, unit) in units.iter().enumerate().skip(1) {
            let right = enumerate_star_relation(ctx, pattern, unit, None);
            stats.observe_rows(right.rows.len(), right.schema.len());
            current = distributed_join(ctx, &mut stats, &current, &right, (10 + 2 * k) as u32);
        }
        stats.embeddings = finalize_embeddings(pattern, &current, |m| {
            is_canonical_embedding(pattern, &symmetry, m)
        });
        stats
    });

    BaselineOutcome {
        system,
        total_embeddings: outcome.results.iter().map(|s| s.embeddings).sum(),
        per_machine: outcome.results,
        traffic: outcome.traffic,
        elapsed: outcome.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::barabasi_albert;
    use rads_graph::queries;
    use rads_partition::{HashPartitioner, PartitionedGraph, Partitioner};
    use rads_single::count_embeddings;
    use std::sync::Arc;

    fn cluster(graph: &rads_graph::Graph, machines: usize) -> Cluster {
        let p = HashPartitioner.partition(graph, machines);
        Cluster::new(Arc::new(PartitionedGraph::build(graph, p)))
    }

    #[test]
    fn twintwig_counts_match_ground_truth() {
        let g = barabasi_albert(70, 3, 8);
        for q in [
            queries::query_by_name("triangle").unwrap(),
            queries::q1(),
            queries::q2(),
            queries::q4(),
        ] {
            let expected = count_embeddings(&g, &q);
            let outcome = run_twintwig(&cluster(&g, 3), &q);
            assert_eq!(outcome.total_embeddings, expected);
        }
    }

    #[test]
    fn twintwig_generates_large_intermediate_results() {
        let g = barabasi_albert(80, 4, 1);
        let q = queries::q4();
        let outcome = run_twintwig(&cluster(&g, 3), &q);
        // join-based processing shuffles far more rows than there are results
        assert!(outcome.total_intermediate_rows() > outcome.total_embeddings);
        assert!(outcome.traffic.total_bytes > 0);
    }

    #[test]
    fn twintwig_single_machine_still_works() {
        let g = barabasi_albert(50, 3, 3);
        let q = queries::q2();
        let outcome = run_twintwig(&cluster(&g, 1), &q);
        assert_eq!(outcome.total_embeddings, count_embeddings(&g, &q));
    }
}
