//! SEED (Lai et al., VLDB 2016): the join framework of TwinTwig upgraded with
//! larger decomposition units — unrestricted stars and clique units.
//!
//! Clique units can be enumerated locally because SEED uses a
//! *star-clique-preserving* storage: besides the adjacency list of every
//! owned vertex, a machine also stores the edges among that vertex's
//! neighbours (the paper loads exactly this extra data for its SEED runs).
//! We model that storage by letting SEED consult the full graph when — and
//! only when — it enumerates a clique unit around an owned centre; the extra
//! storage is what Table 2-style accounting charges SEED for, not network
//! traffic.

use rads_graph::{Graph, Pattern, SymmetryBreaking};
use rads_runtime::Cluster;

use crate::common::{
    connect_units, is_canonical_embedding, BaselineOutcome, BaselineStats, StarUnit,
};
use crate::join::{distributed_join, enumerate_star_relation, finalize_embeddings};

/// Computes SEED's decomposition: greedy clique units (size ≥ 3) first, then
/// unrestricted stars over the remaining edges.
pub fn seed_decomposition(pattern: &Pattern) -> Vec<StarUnit> {
    let n = pattern.vertex_count();
    let mut covered = vec![vec![false; n]; n];
    let mut units: Vec<StarUnit> = Vec::new();

    // find the largest clique in the pattern covering uncovered edges,
    // repeatedly (patterns are tiny, brute force over vertex subsets)
    loop {
        let mut best: Option<Vec<usize>> = None;
        for mask in 1u32..(1 << n) {
            let vs: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
            if vs.len() < 3 {
                continue;
            }
            let is_clique = vs
                .iter()
                .enumerate()
                .all(|(i, &a)| vs.iter().skip(i + 1).all(|&b| pattern.has_edge(a, b)));
            if !is_clique {
                continue;
            }
            let has_uncovered = vs
                .iter()
                .enumerate()
                .any(|(i, &a)| vs.iter().skip(i + 1).any(|&b| !covered[a][b]));
            if is_clique && has_uncovered && best.as_ref().is_none_or(|b| vs.len() > b.len()) {
                best = Some(vs);
            }
        }
        let Some(vs) = best else { break };
        for (i, &a) in vs.iter().enumerate() {
            for &b in vs.iter().skip(i + 1) {
                covered[a][b] = true;
                covered[b][a] = true;
            }
        }
        units.push(StarUnit { center: vs[0], leaves: vs[1..].to_vec() });
    }

    // remaining edges: unrestricted stars
    let mut residual_edges: Vec<(usize, usize)> = pattern
        .edges()
        .into_iter()
        .filter(|&(a, b)| !covered[a][b])
        .collect();
    while !residual_edges.is_empty() {
        // centre with the most residual incident edges
        let center = (0..n)
            .max_by_key(|&u| residual_edges.iter().filter(|&&(a, b)| a == u || b == u).count())
            .unwrap();
        let leaves: Vec<usize> = residual_edges
            .iter()
            .filter(|&&(a, b)| a == center || b == center)
            .map(|&(a, b)| if a == center { b } else { a })
            .collect();
        residual_edges.retain(|&(a, b)| a != center && b != center);
        if leaves.is_empty() {
            break;
        }
        units.push(StarUnit { center, leaves });
    }
    connect_units(units)
}

/// Runs SEED. `graph` provides the star-clique-preserving storage used to
/// enumerate clique units locally.
pub fn run_seed(cluster: &Cluster, graph: &Graph, pattern: &Pattern) -> BaselineOutcome {
    let units = seed_decomposition(pattern);
    let symmetry = SymmetryBreaking::new(pattern);

    let outcome = cluster.run(|ctx| {
        let mut stats = BaselineStats::default();
        let mut current = enumerate_star_relation(ctx, pattern, &units[0], Some(graph));
        stats.observe_rows(current.rows.len(), current.schema.len());
        for (k, unit) in units.iter().enumerate().skip(1) {
            let right = enumerate_star_relation(ctx, pattern, unit, Some(graph));
            stats.observe_rows(right.rows.len(), right.schema.len());
            current = distributed_join(ctx, &mut stats, &current, &right, (10 + 2 * k) as u32);
        }
        stats.embeddings = finalize_embeddings(pattern, &current, |m| {
            is_canonical_embedding(pattern, &symmetry, m)
        });
        stats
    });

    BaselineOutcome {
        system: "seed",
        total_embeddings: outcome.results.iter().map(|s| s.embeddings).sum(),
        per_machine: outcome.results,
        traffic: outcome.traffic,
        elapsed: outcome.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::barabasi_albert;
    use rads_graph::queries;
    use rads_partition::{HashPartitioner, PartitionedGraph, Partitioner};
    use rads_single::count_embeddings;
    use std::sync::Arc;

    fn cluster(graph: &rads_graph::Graph, machines: usize) -> Cluster {
        let p = HashPartitioner.partition(graph, machines);
        Cluster::new(Arc::new(PartitionedGraph::build(graph, p)))
    }

    #[test]
    fn seed_decomposition_covers_all_edges_and_uses_cliques() {
        for nq in queries::clique_query_set() {
            let units = seed_decomposition(&nq.pattern);
            let mut covered = std::collections::HashSet::new();
            for u in &units {
                for &l in &u.leaves {
                    // clique units cover leaf-leaf edges too
                    covered.insert((u.center.min(l), u.center.max(l)));
                }
                let vs = u.vertices();
                let is_clique = vs
                    .iter()
                    .enumerate()
                    .all(|(i, &a)| vs.iter().skip(i + 1).all(|&b| nq.pattern.has_edge(a, b)));
                if is_clique {
                    for (i, &a) in vs.iter().enumerate() {
                        for &b in vs.iter().skip(i + 1) {
                            covered.insert((a.min(b), a.max(b)));
                        }
                    }
                }
            }
            assert_eq!(covered.len(), nq.pattern.edge_count(), "{}", nq.name);
        }
        // the 4-clique decomposes into a single clique unit
        let units = seed_decomposition(&queries::c1());
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].vertices().len(), 4);
    }

    #[test]
    fn seed_counts_match_ground_truth() {
        let g = barabasi_albert(70, 3, 12);
        for q in [
            queries::query_by_name("triangle").unwrap(),
            queries::q2(),
            queries::q4(),
            queries::c1(),
        ] {
            let expected = count_embeddings(&g, &q);
            let outcome = run_seed(&cluster(&g, 3), &g, &q);
            assert_eq!(outcome.total_embeddings, expected);
        }
    }

    #[test]
    fn seed_uses_fewer_rounds_than_twintwig_on_cliques() {
        // structural check: SEED's decomposition of the 4-clique has one unit,
        // TwinTwig's has at least three.
        let c1 = queries::c1();
        let seed_units = seed_decomposition(&c1);
        let tt_units = crate::common::star_edge_decomposition(&c1, 2);
        assert!(seed_units.len() < tt_units.len());
    }
}
