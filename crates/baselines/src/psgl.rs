//! PSgL: Pregel-style distributed subgraph listing (Shao et al., SIGMOD 2014).
//!
//! Query vertices are matched one at a time along a connected matching order.
//! In every superstep the partial matches are shuffled twice: first to the
//! machine owning the data vertex to expand from, then — extended by one
//! vertex — to the machine owning the newly matched vertex, which verifies
//! the remaining back edges locally. There is no compression of intermediate
//! results and no memory control, which is exactly what the paper's
//! evaluation exercises.

use rads_graph::{Pattern, SymmetryBreaking, VertexId};
use rads_runtime::Cluster;
use rads_single::MatchingOrder;

use crate::common::{BaselineOutcome, BaselineStats};

/// Runs PSgL on the cluster and returns the aggregated outcome.
pub fn run_psgl(cluster: &Cluster, pattern: &Pattern) -> BaselineOutcome {
    let order = MatchingOrder::default_for(pattern);
    let symmetry = SymmetryBreaking::new(pattern);
    let n = pattern.vertex_count();

    let outcome = cluster.run(|ctx| {
        let mut stats = BaselineStats::default();
        let local = ctx.partition();
        let start = order.start_vertex();

        // --- superstep 0: seed partial matches from owned candidates --------
        let seeds: Vec<Vec<VertexId>> = local
            .candidates_with_min_degree(pattern.degree(start))
            .into_iter()
            .map(|v| vec![v])
            .collect();
        stats.observe_rows(seeds.len(), 1);
        if n == 1 {
            stats.embeddings = seeds.len() as u64;
            return stats;
        }
        // route every seed to the owner of the vertex the next step expands
        // from (the anchor of position 1, which is the start vertex itself,
        // so this stays local — kept generic for clarity)
        route_for_expansion(ctx, &order, 1, seeds);

        let mut assigned: Vec<Option<VertexId>> = vec![None; n];
        for pos in 1..n {
            let expand_tag = expand_tag(pos);
            let verify_tag = verify_tag(pos);
            ctx.barrier().unwrap_or_else(|e| panic!("{e}"));

            // --- expansion phase: we own the anchor's data vertex -----------
            let incoming = ctx.take_rows(expand_tag);
            stats.observe_rows(incoming.len(), pos);
            let u = order.vertex_at(pos);
            let anchor_pos = order.anchor_of(pos);
            let mut extended: Vec<Vec<Vec<VertexId>>> = vec![Vec::new(); ctx.machines()];
            for row in incoming {
                let anchor_data = row[anchor_pos];
                let Some(adj) = local.neighbors(anchor_data) else { continue };
                assigned.iter_mut().for_each(|a| *a = None);
                for (p, &v) in row.iter().enumerate() {
                    assigned[order.vertex_at(p)] = Some(v);
                }
                for &w in adj {
                    if row.contains(&w) {
                        continue;
                    }
                    if !symmetry.check_partial(u, w, &assigned) {
                        continue;
                    }
                    let mut new_row = row.clone();
                    new_row.push(w);
                    extended[ctx.ownership().owner(w)].push(new_row);
                }
            }
            let produced: usize = extended.iter().map(|b| b.len()).sum();
            stats.observe_rows(produced, pos + 1);
            for (target, batch) in extended.into_iter().enumerate() {
                ctx.send_rows(target, verify_tag, batch).unwrap_or_else(|e| panic!("{e}"));
            }
            ctx.barrier().unwrap_or_else(|e| panic!("{e}"));

            // --- verification phase: we own the newly matched vertex ---------
            let incoming = ctx.take_rows(verify_tag);
            stats.observe_rows(incoming.len(), pos + 1);
            let mut survivors: Vec<Vec<VertexId>> = Vec::new();
            for row in incoming {
                let w = row[pos];
                let Some(adj) = local.neighbors(w) else { continue };
                let ok = pattern.neighbors(u).iter().all(|&u2| {
                    let p2 = order.position_of(u2);
                    if p2 >= pos || p2 == anchor_pos {
                        return true; // not matched yet, or the expansion edge
                    }
                    adj.binary_search(&row[p2]).is_ok()
                });
                if ok {
                    survivors.push(row);
                }
            }
            if pos == n - 1 {
                stats.embeddings += survivors.len() as u64;
            } else {
                route_for_expansion(ctx, &order, pos + 1, survivors);
            }
        }
        stats
    });

    BaselineOutcome {
        system: "psgl",
        total_embeddings: outcome.results.iter().map(|s| s.embeddings).sum(),
        per_machine: outcome.results,
        traffic: outcome.traffic,
        elapsed: outcome.elapsed,
    }
}

fn expand_tag(pos: usize) -> u32 {
    (pos * 2) as u32
}

fn verify_tag(pos: usize) -> u32 {
    (pos * 2 + 1) as u32
}

/// Routes partial matches to the machine owning the data vertex mapped to the
/// anchor of matching position `pos`.
fn route_for_expansion(
    ctx: &rads_runtime::MachineContext,
    order: &MatchingOrder,
    pos: usize,
    rows: Vec<Vec<VertexId>>,
) {
    let anchor_pos = order.anchor_of(pos);
    let mut outgoing: Vec<Vec<Vec<VertexId>>> = vec![Vec::new(); ctx.machines()];
    for row in rows {
        outgoing[ctx.ownership().owner(row[anchor_pos])].push(row);
    }
    for (target, batch) in outgoing.into_iter().enumerate() {
        ctx.send_rows(target, expand_tag(pos), batch).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::{barabasi_albert, grid_2d};
    use rads_graph::queries;
    use rads_partition::{BfsPartitioner, HashPartitioner, PartitionedGraph, Partitioner};
    use rads_single::count_embeddings;
    use std::sync::Arc;

    fn cluster(graph: &rads_graph::Graph, machines: usize) -> Cluster {
        let p = HashPartitioner.partition(graph, machines);
        Cluster::new(Arc::new(PartitionedGraph::build(graph, p)))
    }

    #[test]
    fn psgl_counts_match_ground_truth() {
        let g = barabasi_albert(90, 3, 5);
        for q in [
            queries::query_by_name("triangle").unwrap(),
            queries::q1(),
            queries::q2(),
            queries::q4(),
        ] {
            let expected = count_embeddings(&g, &q);
            let outcome = run_psgl(&cluster(&g, 3), &q);
            assert_eq!(outcome.total_embeddings, expected);
        }
    }

    #[test]
    fn psgl_on_grid_with_bfs_partitioning() {
        let g = grid_2d(8, 8);
        let p = BfsPartitioner.partition(&g, 4);
        let c = Cluster::new(Arc::new(PartitionedGraph::build(&g, p)));
        let outcome = run_psgl(&c, &queries::q1());
        assert_eq!(outcome.total_embeddings, count_embeddings(&g, &queries::q1()));
        assert!(outcome.peak_intermediate_rows() > 0);
    }

    #[test]
    fn psgl_ships_intermediate_results() {
        // on a hash-partitioned graph PSgL must shuffle partial matches
        let g = barabasi_albert(80, 3, 2);
        let outcome = run_psgl(&cluster(&g, 4), &queries::q2());
        assert!(outcome.traffic.total_bytes > 0);
        assert!(outcome.total_intermediate_rows() > outcome.total_embeddings);
    }
}
