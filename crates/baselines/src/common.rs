//! Shared infrastructure for the baseline systems.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use rads_graph::{Pattern, PatternVertex, SymmetryBreaking, VertexId};
use rads_runtime::TrafficSnapshot;

/// Per-machine statistics reported by a baseline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Embeddings emitted by this machine.
    pub embeddings: u64,
    /// Peak number of intermediate rows this machine held at any superstep.
    pub peak_intermediate_rows: usize,
    /// Total intermediate rows this machine produced over the whole run.
    pub total_intermediate_rows: u64,
    /// Peak bytes of intermediate rows (rows × arity × 4).
    pub peak_intermediate_bytes: usize,
}

impl BaselineStats {
    /// Records that the machine currently holds `rows` rows of `arity`
    /// columns.
    pub fn observe_rows(&mut self, rows: usize, arity: usize) {
        self.peak_intermediate_rows = self.peak_intermediate_rows.max(rows);
        self.peak_intermediate_bytes = self
            .peak_intermediate_bytes
            .max(rows * arity * std::mem::size_of::<VertexId>());
        self.total_intermediate_rows += rows as u64;
    }
}

/// The aggregated outcome of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Name of the system (e.g. `"psgl"`).
    pub system: &'static str,
    /// Total embeddings across all machines.
    pub total_embeddings: u64,
    /// Per-machine statistics.
    pub per_machine: Vec<BaselineStats>,
    /// Network traffic of the run.
    pub traffic: TrafficSnapshot,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl BaselineOutcome {
    /// Peak intermediate rows over all machines (the memory-pressure metric
    /// that makes the join-based systems fail on dense graphs).
    pub fn peak_intermediate_rows(&self) -> usize {
        self.per_machine.iter().map(|m| m.peak_intermediate_rows).max().unwrap_or(0)
    }

    /// Total intermediate rows produced cluster-wide.
    pub fn total_intermediate_rows(&self) -> u64 {
        self.per_machine.iter().map(|m| m.total_intermediate_rows).sum()
    }

    /// Peak bytes of intermediate rows held by any single machine — the
    /// quantity that determines whether a machine with a memory cap survives
    /// the query (the paper's robustness test in Exp-4).
    pub fn peak_intermediate_bytes(&self) -> usize {
        self.per_machine.iter().map(|m| m.peak_intermediate_bytes).max().unwrap_or(0)
    }
}

/// Deterministic hash routing of a join key to a machine.
pub fn route_key(key: &[VertexId], machines: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % machines as u64) as usize
}

/// `true` if the complete assignment (indexed by query vertex) is a valid
/// embedding of `pattern` *and* passes the final symmetry-breaking filter.
/// The baselines enumerate without intermediate symmetry breaking and apply
/// this filter at the end, so every occurrence is reported exactly once.
pub fn is_canonical_embedding(
    pattern: &Pattern,
    symmetry: &SymmetryBreaking,
    mapping: &[VertexId],
) -> bool {
    // injectivity
    for i in 0..mapping.len() {
        for j in i + 1..mapping.len() {
            if mapping[i] == mapping[j] {
                return false;
            }
        }
    }
    // edge preservation
    for (a, b) in pattern.edges() {
        if mapping[a] == mapping[b] {
            return false;
        }
    }
    symmetry.check_full(mapping)
}

/// A star sub-pattern: a center query vertex plus a set of leaves, covering
/// the edges `(center, leaf)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarUnit {
    /// The star's center query vertex.
    pub center: PatternVertex,
    /// The star's leaves.
    pub leaves: Vec<PatternVertex>,
}

impl StarUnit {
    /// The query vertices of the unit (center first).
    pub fn vertices(&self) -> Vec<PatternVertex> {
        let mut v = vec![self.center];
        v.extend(&self.leaves);
        v
    }
}

/// Decomposes the pattern's edge set into stars whose centers have maximal
/// residual degree, with at most `max_leaves` leaves per star (TwinTwig uses
/// 2, SEED uses unlimited). The union of the star edges is exactly `E_P`, so
/// joining the stars on shared vertices enforces every pattern edge.
pub fn star_edge_decomposition(pattern: &Pattern, max_leaves: usize) -> Vec<StarUnit> {
    let n = pattern.vertex_count();
    let mut covered = vec![vec![false; n]; n];
    let mut remaining = pattern.edge_count();
    let mut units = Vec::new();
    while remaining > 0 {
        // pick the vertex with the most uncovered incident edges
        let center = pattern
            .vertices()
            .max_by_key(|&u| {
                pattern.neighbors(u).iter().filter(|&&v| !covered[u][v]).count()
            })
            .expect("pattern has vertices");
        let mut leaves: Vec<PatternVertex> = pattern
            .neighbors(center)
            .iter()
            .copied()
            .filter(|&v| !covered[center][v])
            .collect();
        leaves.truncate(max_leaves.max(1));
        assert!(!leaves.is_empty(), "decomposition made no progress");
        for &v in &leaves {
            covered[center][v] = true;
            covered[v][center] = true;
            remaining -= 1;
        }
        units.push(StarUnit { center, leaves });
    }
    units
}

/// Orders units so that every unit after the first shares at least one query
/// vertex with the union of the previous units (needed for key-based joins).
pub fn connect_units(units: Vec<StarUnit>) -> Vec<StarUnit> {
    if units.is_empty() {
        return units;
    }
    let mut remaining = units;
    let mut ordered = vec![remaining.remove(0)];
    let mut covered: Vec<PatternVertex> = ordered[0].vertices();
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|u| u.vertices().iter().any(|v| covered.contains(v)))
            .unwrap_or(0);
        let unit = remaining.remove(pos);
        covered.extend(unit.vertices());
        covered.sort_unstable();
        covered.dedup();
        ordered.push(unit);
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::queries;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for machines in [1usize, 3, 7] {
            for key in [[1u32, 2].as_slice(), &[9], &[5, 5, 5]] {
                let a = route_key(key, machines);
                let b = route_key(key, machines);
                assert_eq!(a, b);
                assert!(a < machines);
            }
        }
    }

    #[test]
    fn canonical_embedding_filter() {
        let p = queries::query_by_name("triangle").unwrap();
        let sb = SymmetryBreaking::new(&p);
        // valid triangle 1-2-3 in a world where those edges exist: the filter
        // only checks injectivity + symmetry order here, edges are checked by
        // construction in the baselines; craft a mapping with a repeat:
        assert!(!is_canonical_embedding(&p, &sb, &[1, 1, 2]));
        // exactly one of the orderings of {1,2,3} is canonical
        let orderings = [[1, 2, 3], [1, 3, 2], [2, 1, 3], [2, 3, 1], [3, 1, 2], [3, 2, 1]];
        let canonical = orderings
            .iter()
            .filter(|m| is_canonical_embedding(&p, &sb, &m[..]))
            .count();
        assert_eq!(canonical, 1);
    }

    #[test]
    fn star_decomposition_covers_every_edge() {
        for nq in queries::standard_query_set().into_iter().chain(queries::clique_query_set()) {
            for max_leaves in [2usize, usize::MAX] {
                let units = star_edge_decomposition(&nq.pattern, max_leaves);
                let mut covered = std::collections::HashSet::new();
                for u in &units {
                    for &l in &u.leaves {
                        assert!(nq.pattern.has_edge(u.center, l));
                        let key = (u.center.min(l), u.center.max(l));
                        assert!(covered.insert(key), "{}: edge covered twice", nq.name);
                    }
                }
                assert_eq!(covered.len(), nq.pattern.edge_count(), "{}", nq.name);
                if max_leaves == 2 {
                    assert!(units.iter().all(|u| u.leaves.len() <= 2));
                }
            }
        }
    }

    #[test]
    fn connected_unit_order() {
        for nq in queries::standard_query_set() {
            let units = connect_units(star_edge_decomposition(&nq.pattern, 2));
            let mut covered: Vec<PatternVertex> = units[0].vertices();
            for u in &units[1..] {
                assert!(
                    u.vertices().iter().any(|v| covered.contains(v)),
                    "{}: unit {u:?} not connected to previous units",
                    nq.name
                );
                covered.extend(u.vertices());
            }
        }
    }

    #[test]
    fn baseline_stats_observe_rows() {
        let mut s = BaselineStats::default();
        s.observe_rows(10, 3);
        s.observe_rows(4, 5);
        assert_eq!(s.peak_intermediate_rows, 10);
        assert_eq!(s.total_intermediate_rows, 14);
        assert_eq!(s.peak_intermediate_bytes, 10 * 3 * 4);
    }
}
