//! Crystal (Qiao et al., VLDB 2017): subgraph matching based on compression
//! and a pre-built clique index.
//!
//! The full Crystal system decomposes the query into a core (derived from a
//! minimum vertex cover) and "crystals", and stores results in a compressed
//! code. What the RADS paper's evaluation exercises is the part that matters
//! for the comparison: Crystal answers the clique sub-patterns of the query
//! *directly from a disk-resident clique index* (fast for clique-heavy
//! queries, useless for triangle-free ones) and pays for that with an index
//! that is an order of magnitude larger than the data graph (Table 2). This
//! module reproduces exactly that behaviour:
//!
//! * [`CliqueIndex::build`] enumerates every clique of size 3..=k offline and
//!   reports its size (Table 2).
//! * [`run_crystal`] seeds the join with the indexed instances of the query's
//!   largest clique (retrieved without enumeration work, partitioned by the
//!   owner of the clique's smallest vertex) and joins the remaining edges with
//!   the same distributed star-join machinery as SEED/TwinTwig. Queries
//!   without a triangle fall back to the plain star join.

use std::collections::HashMap;

use rads_graph::{Graph, Pattern, PatternVertex, SymmetryBreaking, VertexId};
use rads_runtime::Cluster;

use crate::common::{is_canonical_embedding, BaselineOutcome, BaselineStats, StarUnit};
use crate::join::{distributed_join, enumerate_star_relation, finalize_embeddings, Relation};

/// The offline clique index.
#[derive(Debug, Clone, Default)]
pub struct CliqueIndex {
    /// Cliques by size; every clique is a sorted vertex list.
    by_size: HashMap<usize, Vec<Vec<VertexId>>>,
    max_size: usize,
}

impl CliqueIndex {
    /// Enumerates every clique of size 3 up to `max_size` of `graph`.
    /// (Offline pre-processing — not charged to query time, but its size is
    /// what Table 2 reports.)
    pub fn build(graph: &Graph, max_size: usize) -> Self {
        let mut by_size: HashMap<usize, Vec<Vec<VertexId>>> = HashMap::new();
        if max_size >= 3 {
            let mut current: Vec<Vec<VertexId>> = rads_graph::algorithms::triangles(graph)
                .into_iter()
                .map(|t| t.to_vec())
                .collect();
            by_size.insert(3, current.clone());
            let mut size = 3;
            while size < max_size && !current.is_empty() {
                let mut next = Vec::new();
                for clique in &current {
                    // extend by a common neighbour larger than the last vertex
                    let last = *clique.last().unwrap();
                    let mut common: Vec<VertexId> = graph.neighbors(clique[0]).to_vec();
                    for &v in &clique[1..] {
                        common = intersect_sorted(&common, graph.neighbors(v));
                    }
                    for &w in common.iter().filter(|&&w| w > last) {
                        let mut bigger = clique.clone();
                        bigger.push(w);
                        next.push(bigger);
                    }
                }
                size += 1;
                if !next.is_empty() {
                    by_size.insert(size, next.clone());
                }
                current = next;
            }
        }
        CliqueIndex { by_size, max_size }
    }

    /// Instances of cliques of exactly `size` (empty if none were indexed).
    pub fn instances(&self, size: usize) -> &[Vec<VertexId>] {
        self.by_size.get(&size).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of indexed cliques across all sizes.
    pub fn total_cliques(&self) -> usize {
        self.by_size.values().map(|v| v.len()).sum()
    }

    /// Largest clique size the index can answer.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// On-disk size of the index in bytes (one vertex id per clique member),
    /// the quantity Table 2 compares against the data-graph file size.
    pub fn size_bytes(&self) -> usize {
        self.by_size
            .values()
            .flat_map(|cliques| cliques.iter())
            .map(|c| c.len() * std::mem::size_of::<VertexId>())
            .sum()
    }
}

fn intersect_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The largest clique of the pattern (brute force; patterns are tiny).
pub fn largest_pattern_clique(pattern: &Pattern) -> Vec<PatternVertex> {
    let n = pattern.vertex_count();
    let mut best: Vec<PatternVertex> = vec![0];
    for mask in 1u32..(1 << n) {
        let vs: Vec<PatternVertex> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        if vs.len() <= best.len() {
            continue;
        }
        let is_clique = vs
            .iter()
            .enumerate()
            .all(|(i, &a)| vs.iter().skip(i + 1).all(|&b| pattern.has_edge(a, b)));
        if is_clique {
            best = vs;
        }
    }
    best
}

/// Runs Crystal for `pattern`, using the pre-built `index`.
pub fn run_crystal(
    cluster: &Cluster,
    graph: &Graph,
    pattern: &Pattern,
    index: &CliqueIndex,
) -> BaselineOutcome {
    let core = largest_pattern_clique(pattern);
    if core.len() < 3 || core.len() > index.max_size() {
        // No useful clique in the query: the index cannot help (the paper's
        // q1/q3/q6/q7/q8 case); fall back to the unrestricted star join.
        let mut outcome = crate::twintwig::run_star_join(cluster, pattern, usize::MAX, "crystal");
        outcome.system = "crystal";
        return outcome;
    }

    // residual edges not covered by the core clique, decomposed into stars
    let n = pattern.vertex_count();
    let in_core = |v: PatternVertex| core.contains(&v);
    let mut residual: Vec<(PatternVertex, PatternVertex)> = pattern
        .edges()
        .into_iter()
        .filter(|&(a, b)| !(in_core(a) && in_core(b)))
        .collect();
    let mut units: Vec<StarUnit> = Vec::new();
    while !residual.is_empty() {
        let center = (0..n)
            .max_by_key(|&u| residual.iter().filter(|&&(a, b)| a == u || b == u).count())
            .unwrap();
        let leaves: Vec<PatternVertex> = residual
            .iter()
            .filter(|&&(a, b)| a == center || b == center)
            .map(|&(a, b)| if a == center { b } else { a })
            .collect();
        residual.retain(|&(a, b)| a != center && b != center);
        units.push(StarUnit { center, leaves });
    }
    // order units so each shares a vertex with what is already covered
    let mut covered: Vec<PatternVertex> = core.clone();
    let mut ordered: Vec<StarUnit> = Vec::new();
    let mut pending = units;
    while !pending.is_empty() {
        let pos = pending
            .iter()
            .position(|u| u.vertices().iter().any(|v| covered.contains(v)))
            .unwrap_or(0);
        let unit = pending.remove(pos);
        covered.extend(unit.vertices());
        covered.sort_unstable();
        covered.dedup();
        ordered.push(unit);
    }

    let symmetry = SymmetryBreaking::new(pattern);
    let core_for_engines = core.clone();
    let outcome = cluster.run(|ctx| {
        let mut stats = BaselineStats::default();
        // seed relation: indexed clique instances whose smallest vertex we own,
        // expanded into ordered assignments of the core query vertices
        let mut current = Relation::new(core_for_engines.clone());
        for instance in index.instances(core_for_engines.len()) {
            if ctx.ownership().owner(instance[0]) != ctx.machine() {
                continue;
            }
            permute_into(instance, &mut |perm| current.rows.push(perm.to_vec()));
        }
        stats.observe_rows(current.rows.len(), current.schema.len());

        for (k, unit) in ordered.iter().enumerate() {
            let right = enumerate_star_relation(ctx, pattern, unit, Some(graph));
            stats.observe_rows(right.rows.len(), right.schema.len());
            current = distributed_join(ctx, &mut stats, &current, &right, (10 + 2 * k) as u32);
        }
        stats.embeddings = finalize_embeddings(pattern, &current, |m| {
            is_canonical_embedding(pattern, &symmetry, m)
        });
        stats
    });

    BaselineOutcome {
        system: "crystal",
        total_embeddings: outcome.results.iter().map(|s| s.embeddings).sum(),
        per_machine: outcome.results,
        traffic: outcome.traffic,
        elapsed: outcome.elapsed,
    }
}

/// Calls `emit` with every permutation of `items` (Heap's algorithm; items
/// are at most 5 long).
fn permute_into(items: &[VertexId], emit: &mut impl FnMut(&[VertexId])) {
    fn heaps(k: usize, arr: &mut Vec<VertexId>, emit: &mut impl FnMut(&[VertexId])) {
        if k <= 1 {
            emit(arr);
            return;
        }
        for i in 0..k {
            heaps(k - 1, arr, emit);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr = items.to_vec();
    heaps(arr.len(), &mut arr, emit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::barabasi_albert;
    use rads_graph::queries;
    use rads_partition::{HashPartitioner, PartitionedGraph, Partitioner};
    use rads_single::count_embeddings;
    use std::sync::Arc;

    fn cluster(graph: &rads_graph::Graph, machines: usize) -> Cluster {
        let p = HashPartitioner.partition(graph, machines);
        Cluster::new(Arc::new(PartitionedGraph::build(graph, p)))
    }

    #[test]
    fn clique_index_counts_triangles_and_k4s() {
        let g = barabasi_albert(60, 4, 3);
        let index = CliqueIndex::build(&g, 4);
        assert_eq!(
            index.instances(3).len(),
            rads_graph::algorithms::triangle_count(&g)
        );
        assert_eq!(
            index.instances(4).len() as u64,
            count_embeddings(&g, &queries::c1())
        );
        assert!(index.size_bytes() > 0);
        assert_eq!(index.max_size(), 4);
    }

    #[test]
    fn largest_pattern_clique_detection() {
        assert_eq!(largest_pattern_clique(&queries::c1()).len(), 4);
        assert_eq!(largest_pattern_clique(&queries::q2()).len(), 3);
        assert_eq!(largest_pattern_clique(&queries::q1()).len(), 2);
    }

    #[test]
    fn crystal_counts_match_ground_truth_on_clique_queries() {
        let g = barabasi_albert(60, 4, 7);
        let index = CliqueIndex::build(&g, 4);
        for q in [queries::q2(), queries::q4(), queries::c1(), queries::c2()] {
            let expected = count_embeddings(&g, &q);
            let outcome = run_crystal(&cluster(&g, 3), &g, &q, &index);
            assert_eq!(outcome.total_embeddings, expected);
        }
    }

    #[test]
    fn crystal_falls_back_on_triangle_free_queries() {
        let g = barabasi_albert(50, 3, 9);
        let index = CliqueIndex::build(&g, 4);
        let q = queries::q1();
        let outcome = run_crystal(&cluster(&g, 2), &g, &q, &index);
        assert_eq!(outcome.system, "crystal");
        assert_eq!(outcome.total_embeddings, count_embeddings(&g, &q));
    }

    #[test]
    fn permutations_are_complete() {
        let mut perms = Vec::new();
        permute_into(&[1, 2, 3], &mut |p| perms.push(p.to_vec()));
        perms.sort();
        perms.dedup();
        assert_eq!(perms.len(), 6);
    }
}
