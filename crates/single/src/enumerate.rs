//! The backtracking enumerator.
//!
//! Candidate generation is **intersection-based** by default: at every
//! matching position the enumerator intersects the adjacency lists of all
//! already-matched pattern neighbours ([`rads_graph::intersect`]), so a
//! candidate is only ever inspected if it is adjacent to *every* matched
//! neighbour. The pre-intersection kernel — seed from one anchor adjacency
//! list, reject with one `has_edge` binary search per back edge — is kept as
//! [`CandidateKernel::Probe`] so tests and benchmarks can pin the two paths
//! against each other.

use std::ops::Range;

use rads_graph::intersect::{intersect_k_into, IntersectStats};
use rads_graph::{Graph, Pattern, SymmetryBreaking, VertexId};

use crate::candidates::FilterThresholds;
use crate::order::MatchingOrder;

/// How candidates for each matching position are generated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CandidateKernel {
    /// Intersect the adjacency lists of every already-matched pattern
    /// neighbour (shortest list first, galloping on skewed length ratios).
    /// The default and the fast path.
    #[default]
    Intersect,
    /// The pre-intersection kernel: scan the anchor's adjacency list and
    /// probe each remaining back edge with a binary search. Kept for
    /// equivalence tests and before/after benchmarks.
    Probe,
}

/// Configuration of an enumeration run.
#[derive(Debug, Clone, Default)]
pub struct EnumerationConfig {
    /// Apply automorphism-based symmetry breaking (the paper applies it "by
    /// default"); disable only to cross-check counts in tests.
    pub disable_symmetry_breaking: bool,
    /// Stop after this many embeddings have been reported.
    pub max_results: Option<u64>,
    /// Restrict the data vertices the *start* query vertex may be mapped to.
    /// `None` means all vertices of the graph. This is how SM-E enumerates
    /// only from the candidates with sufficient border distance.
    pub start_candidates: Option<Vec<VertexId>>,
    /// Enumerate only the start candidates at these positions of the start
    /// candidate list (the explicit one, or all graph vertices in vertex
    /// order when `start_candidates` is `None`). The range is applied
    /// *before* the per-vertex filters and is clamped to the list length, so
    /// a family of runs whose ranges partition `0..len` partitions the
    /// result set exactly — this is what makes start-candidate work units
    /// splittable for the intra-machine worker pool.
    pub start_range: Option<Range<usize>>,
    /// Explicit matching order; `None` selects [`MatchingOrder::default_for`].
    pub order: Option<MatchingOrder>,
    /// Candidate-generation kernel (default: [`CandidateKernel::Intersect`]).
    pub kernel: CandidateKernel,
}

/// Statistics of an enumeration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Number of embeddings reported to the callback.
    pub embeddings: u64,
    /// Number of search-tree nodes (successful partial matches) per matching
    /// position. `nodes_per_level[i]` counts the partial matches in which
    /// `i + 1` query vertices are mapped. RADS's memory estimator uses the sum
    /// of this vector as the embedding-trie node count for the vertex
    /// (Section 6). Identical for both [`CandidateKernel`]s.
    pub nodes_per_level: Vec<u64>,
    /// Candidates inspected but rejected by filters / adjacency checks /
    /// symmetry breaking. Kernel-dependent: the intersection kernel never
    /// materializes the candidates the probe kernel rejects with adjacency
    /// checks, so its `pruned` is smaller for the same search.
    pub pruned: u64,
    /// Intersection-kernel counters (all zero under the probe kernel).
    pub intersect: IntersectStats,
}

impl EnumerationStats {
    /// Total number of search-tree nodes (the embedding-trie node estimate).
    pub fn total_nodes(&self) -> u64 {
        self.nodes_per_level.iter().sum()
    }

    /// Adds the counters of an independent work unit (field-wise sums, level
    /// counters padded to the longer vector).
    pub fn absorb(&mut self, other: &EnumerationStats) {
        self.embeddings += other.embeddings;
        self.pruned += other.pruned;
        self.intersect.absorb(&other.intersect);
        if self.nodes_per_level.len() < other.nodes_per_level.len() {
            self.nodes_per_level.resize(other.nodes_per_level.len(), 0);
        }
        for (level, n) in other.nodes_per_level.iter().enumerate() {
            self.nodes_per_level[level] += n;
        }
    }
}

/// Per-run-family state derived from the pattern once and shared by every
/// work unit of a run: the matching order, the symmetry-breaking constraints
/// and the precomputed filter thresholds. Building these is cheap relative to
/// a whole enumeration but not relative to one *work unit* of the
/// intra-machine pool (tens of start candidates), which is why SM-E derives
/// one `SharedRun` per machine run instead of one per unit.
#[derive(Debug, Clone)]
pub struct SharedRun {
    order: MatchingOrder,
    symmetry: SymmetryBreaking,
    thresholds: FilterThresholds,
}

impl SharedRun {
    /// Builds the shared state for `pattern` with an explicit matching order.
    pub fn new(pattern: &Pattern, order: MatchingOrder, disable_symmetry_breaking: bool) -> Self {
        let symmetry = if disable_symmetry_breaking {
            SymmetryBreaking::disabled(pattern)
        } else {
            SymmetryBreaking::new(pattern)
        };
        SharedRun { order, symmetry, thresholds: FilterThresholds::new(pattern) }
    }

    /// Builds the shared state a given `config` implies.
    pub fn for_config(pattern: &Pattern, config: &EnumerationConfig) -> Self {
        let order = match &config.order {
            Some(o) => o.clone(),
            None => MatchingOrder::default_for(pattern),
        };
        Self::new(pattern, order, config.disable_symmetry_breaking)
    }

    /// The matching order of this run family.
    pub fn order(&self) -> &MatchingOrder {
        &self.order
    }
}

/// A reusable enumerator over a graph/pattern pair.
pub struct Enumerator<'a> {
    graph: &'a Graph,
    pattern: &'a Pattern,
    config: EnumerationConfig,
}

impl<'a> Enumerator<'a> {
    /// Creates an enumerator with the default configuration.
    pub fn new(graph: &'a Graph, pattern: &'a Pattern) -> Self {
        Enumerator { graph, pattern, config: EnumerationConfig::default() }
    }

    /// Creates an enumerator with an explicit configuration.
    pub fn with_config(graph: &'a Graph, pattern: &'a Pattern, config: EnumerationConfig) -> Self {
        Enumerator { graph, pattern, config }
    }

    /// Runs the enumeration. The callback receives each embedding as a slice
    /// indexed by query vertex (`mapping[u]` is the data vertex of `u`) and
    /// returns `true` to continue, `false` to stop early.
    pub fn run<F: FnMut(&[VertexId]) -> bool>(&self, callback: F) -> EnumerationStats {
        if self.pattern.vertex_count() == 0 {
            return EnumerationStats::default();
        }
        let shared = SharedRun::for_config(self.pattern, &self.config);
        let all_vertices: Vec<VertexId>;
        let candidates: &[VertexId] = match &self.config.start_candidates {
            Some(cands) => cands,
            None => {
                all_vertices = self.graph.vertices().collect();
                &all_vertices
            }
        };
        self.run_units(&shared, candidates, self.config.start_range.clone(), callback)
    }

    /// Runs the enumeration over one sub-range of an externally owned start
    /// candidate list, with externally shared per-run state. This is the
    /// splittable entry point the SM-E worker pool uses: the candidate list,
    /// matching order, symmetry constraints and filter thresholds are built
    /// once per machine run and borrowed by every work unit, so a unit costs
    /// no setup beyond its own scratch buffers.
    ///
    /// `range = None` means the whole list; ranges are clamped to the list
    /// length, and a family of calls whose ranges partition `0..len`
    /// partitions the result set exactly (the range applies *before* the
    /// per-vertex filters). `config.start_candidates`, `config.start_range`
    /// and `config.order` are ignored by this entry point.
    pub fn run_units<F: FnMut(&[VertexId]) -> bool>(
        &self,
        shared: &SharedRun,
        candidates: &[VertexId],
        range: Option<Range<usize>>,
        callback: F,
    ) -> EnumerationStats {
        let n = self.pattern.vertex_count();
        let mut search = Search {
            graph: self.graph,
            pattern: self.pattern,
            shared,
            kernel: self.config.kernel,
            max_results: self.config.max_results,
            assigned: vec![None; n],
            matched: Vec::with_capacity(n),
            mapping: vec![0; n],
            bufs: vec![Vec::new(); n],
            tmp: Vec::new(),
            lists: Vec::with_capacity(n),
            stats: EnumerationStats {
                nodes_per_level: vec![0; n],
                ..EnumerationStats::default()
            },
            callback,
            stop: false,
        };
        if n == 0 {
            return search.stats;
        }
        let ranged = match range {
            Some(range) => {
                let lo = range.start.min(candidates.len());
                let hi = range.end.min(candidates.len());
                &candidates[lo..hi.max(lo)]
            }
            None => candidates,
        };
        let start = shared.order.start_vertex();
        for &v0 in ranged {
            if search.stop {
                break;
            }
            if !shared.thresholds.passes(self.graph, start, v0) {
                continue;
            }
            if !shared.symmetry.check_partial(start, v0, &search.assigned) {
                search.stats.pruned += 1;
                continue;
            }
            search.place(start, v0, 0);
            search.extend(1);
            search.unplace(start, v0);
        }
        search.stats
    }
}

/// The backtracking state of one run: the partial assignment, the reusable
/// per-level candidate buffers and the statistics. Scratch vectors are
/// allocated once per [`Enumerator::run_units`] call and reused across the
/// whole search tree, so the inner loop is allocation-free once the buffers
/// have grown to their working size.
struct Search<'e, F> {
    graph: &'e Graph,
    pattern: &'e Pattern,
    shared: &'e SharedRun,
    kernel: CandidateKernel,
    max_results: Option<u64>,
    /// `assigned[u]` — the data vertex matched to query vertex `u`.
    assigned: Vec<Option<VertexId>>,
    /// The currently matched data vertices, kept sorted: injectivity is a
    /// binary search instead of an `assigned.contains(&Some(v))` scan.
    matched: Vec<VertexId>,
    /// Callback scratch (embedding indexed by query vertex).
    mapping: Vec<VertexId>,
    /// Per-level candidate buffers for the intersection kernel.
    bufs: Vec<Vec<VertexId>>,
    /// k-way intersection scratch.
    tmp: Vec<VertexId>,
    /// Adjacency-list collection scratch (used transiently before recursing,
    /// never across a recursive call).
    lists: Vec<&'e [VertexId]>,
    stats: EnumerationStats,
    callback: F,
    stop: bool,
}

impl<F: FnMut(&[VertexId]) -> bool> Search<'_, F> {
    /// Records the match `u -> v` (position `pos` of the order).
    fn place(&mut self, u: usize, v: VertexId, pos: usize) {
        self.assigned[u] = Some(v);
        let idx = self.matched.binary_search(&v).unwrap_err();
        self.matched.insert(idx, v);
        self.stats.nodes_per_level[pos] += 1;
    }

    /// Reverts [`Search::place`].
    fn unplace(&mut self, u: usize, v: VertexId) {
        self.assigned[u] = None;
        let idx = self.matched.binary_search(&v).expect("placed vertex");
        self.matched.remove(idx);
    }

    /// Extends the partial match at position `pos` of the matching order.
    fn extend(&mut self, pos: usize) {
        if pos == self.pattern.vertex_count() {
            self.emit();
            return;
        }
        let u = self.shared.order.vertex_at(pos);
        match self.kernel {
            CandidateKernel::Intersect => self.extend_intersect(pos, u),
            CandidateKernel::Probe => self.extend_probe(pos, u),
        }
    }

    /// Reports a complete embedding.
    fn emit(&mut self) {
        for (u, a) in self.assigned.iter().enumerate() {
            self.mapping[u] = a.expect("complete assignment");
        }
        self.stats.embeddings += 1;
        if !(self.callback)(&self.mapping) {
            self.stop = true;
        }
        if let Some(max) = self.max_results {
            if self.stats.embeddings >= max {
                self.stop = true;
            }
        }
    }

    /// Intersection kernel: candidates are the intersection of the adjacency
    /// lists of every already-matched pattern neighbour of `u`, so no
    /// per-candidate adjacency check is needed afterwards.
    fn extend_intersect(&mut self, pos: usize, u: usize) {
        self.lists.clear();
        for &w in self.pattern.neighbors(u) {
            if let Some(vw) = self.assigned[w] {
                self.lists.push(self.graph.neighbors(vw));
            }
        }
        // The matching order is connected, so at least one neighbour of `u`
        // is always matched.
        debug_assert!(!self.lists.is_empty());
        if self.lists.len() == 1 {
            // Single back edge: the adjacency list itself is the candidate
            // set; intersecting would only copy it.
            let seed = self.lists[0];
            self.scan_candidates(pos, u, seed);
        } else {
            let mut buf = std::mem::take(&mut self.bufs[pos]);
            // Disjoint &mut borrows of self fields; `lists` is free for
            // reuse by deeper levels once the candidates are materialized.
            intersect_k_into(&mut self.lists, &mut buf, &mut self.tmp, &mut self.stats.intersect);
            self.scan_candidates(pos, u, &buf);
            self.bufs[pos] = buf;
        }
    }

    /// Filters `candidates` (already adjacency-correct) and recurses.
    fn scan_candidates(&mut self, pos: usize, u: usize, candidates: &[VertexId]) {
        for &v in candidates {
            if self.stop {
                return;
            }
            // injectivity
            if self.matched.binary_search(&v).is_ok() {
                self.stats.pruned += 1;
                continue;
            }
            if !self.shared.thresholds.passes(self.graph, u, v) {
                self.stats.pruned += 1;
                continue;
            }
            if !self.shared.symmetry.check_partial(u, v, &self.assigned) {
                self.stats.pruned += 1;
                continue;
            }
            self.place(u, v, pos);
            self.extend(pos + 1);
            self.unplace(u, v);
        }
    }

    /// Probe kernel (pre-intersection behaviour): seed candidates from the
    /// anchor's adjacency list, reject with one `has_edge` binary search per
    /// remaining back edge.
    fn extend_probe(&mut self, pos: usize, u: usize) {
        let anchor_pos = self.shared.order.anchor_of(pos);
        let anchor_vertex = self.shared.order.vertex_at(anchor_pos);
        let anchor_data = self.assigned[anchor_vertex].expect("anchor must be assigned");
        let seed = self.graph.neighbors(anchor_data);

        'candidates: for &v in seed {
            if self.stop {
                return;
            }
            // injectivity
            if self.matched.binary_search(&v).is_ok() {
                self.stats.pruned += 1;
                continue;
            }
            if !self.shared.thresholds.passes(self.graph, u, v) {
                self.stats.pruned += 1;
                continue;
            }
            // adjacency with every already-matched neighbour of u
            for &w in self.pattern.neighbors(u) {
                if let Some(vw) = self.assigned[w] {
                    if !self.graph.has_edge(v, vw) {
                        self.stats.pruned += 1;
                        continue 'candidates;
                    }
                }
            }
            if !self.shared.symmetry.check_partial(u, v, &self.assigned) {
                self.stats.pruned += 1;
                continue;
            }
            self.place(u, v, pos);
            self.extend(pos + 1);
            self.unplace(u, v);
        }
    }
}

/// Enumerates embeddings of `pattern` in `graph` under `config`, invoking
/// `callback` for each one. Returns run statistics.
pub fn enumerate_embeddings<F: FnMut(&[VertexId]) -> bool>(
    graph: &Graph,
    pattern: &Pattern,
    config: EnumerationConfig,
    callback: F,
) -> EnumerationStats {
    Enumerator::with_config(graph, pattern, config).run(callback)
}

/// Counts the embeddings of `pattern` in `graph` (with symmetry breaking, so
/// each occurrence is counted once).
pub fn count_embeddings(graph: &Graph, pattern: &Pattern) -> u64 {
    Enumerator::new(graph, pattern).run(|_| true).embeddings
}

/// Collects every embedding of `pattern` in `graph` as a vector indexed by
/// query vertex. Intended for tests and small graphs.
pub fn collect_embeddings(graph: &Graph, pattern: &Pattern) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    Enumerator::new(graph, pattern).run(|m| {
        out.push(m.to_vec());
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::{erdos_renyi, grid_2d, ring_lattice};
    use rads_graph::{queries, GraphBuilder, PatternBuilder};

    fn triangle_pattern() -> Pattern {
        PatternBuilder::new(3).clique(&[0, 1, 2]).build()
    }

    #[test]
    fn counts_triangles_in_k4() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                b.add_edge(i, j);
            }
        }
        let g = b.build();
        assert_eq!(count_embeddings(&g, &triangle_pattern()), 4);
        // 4-clique occurs exactly once
        assert_eq!(count_embeddings(&g, &queries::c1()), 1);
        // 4-cycle occurs 3 times in K4
        assert_eq!(count_embeddings(&g, &queries::q1()), 3);
    }

    #[test]
    fn counts_match_triangle_counter_on_random_graphs() {
        for seed in 0..3u64 {
            let g = erdos_renyi(60, 0.12, seed);
            let expected = rads_graph::algorithms::triangle_count(&g) as u64;
            assert_eq!(count_embeddings(&g, &triangle_pattern()), expected, "seed {seed}");
        }
    }

    #[test]
    fn symmetry_breaking_divides_by_automorphism_count() {
        let g = erdos_renyi(40, 0.18, 9);
        for q in [queries::q1(), queries::q2(), queries::c1(), triangle_pattern()] {
            let with = count_embeddings(&g, &q);
            let without = Enumerator::with_config(
                &g,
                &q,
                EnumerationConfig { disable_symmetry_breaking: true, ..Default::default() },
            )
            .run(|_| true)
            .embeddings;
            let autos = SymmetryBreaking::new(&q).automorphism_count() as u64;
            assert_eq!(without, with * autos);
        }
    }

    #[test]
    fn squares_in_a_grid() {
        // Each unit cell of the lattice is exactly one 4-cycle; 2x2 cells in a
        // 3x3 grid -> 4 squares.
        let g = grid_2d(3, 3);
        assert_eq!(count_embeddings(&g, &queries::q1()), 4);
    }

    #[test]
    fn max_results_stops_early() {
        let g = ring_lattice(30, 2);
        let cfg = EnumerationConfig { max_results: Some(5), ..Default::default() };
        let stats = enumerate_embeddings(&g, &triangle_pattern(), cfg, |_| true);
        assert_eq!(stats.embeddings, 5);
    }

    #[test]
    fn callback_can_stop_enumeration() {
        let g = ring_lattice(30, 2);
        let mut seen = 0;
        enumerate_embeddings(&g, &triangle_pattern(), EnumerationConfig::default(), |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn start_candidate_restriction_partitions_the_result_set() {
        let g = erdos_renyi(50, 0.15, 4);
        let q = queries::q2();
        let total = count_embeddings(&g, &q);
        // Split the vertex set in two halves and restrict the start vertex.
        let half_a: Vec<VertexId> = g.vertices().filter(|v| v % 2 == 0).collect();
        let half_b: Vec<VertexId> = g.vertices().filter(|v| v % 2 == 1).collect();
        let count = |cands: Vec<VertexId>| {
            Enumerator::with_config(
                &g,
                &q,
                EnumerationConfig { start_candidates: Some(cands), ..Default::default() },
            )
            .run(|_| true)
            .embeddings
        };
        assert_eq!(count(half_a) + count(half_b), total);
    }

    #[test]
    fn start_range_chunks_partition_the_result_set() {
        let g = erdos_renyi(50, 0.15, 8);
        let q = queries::q2();
        let total = count_embeddings(&g, &q);
        let candidates: Vec<VertexId> = g.vertices().collect();
        let count_range = |range: std::ops::Range<usize>| {
            Enumerator::with_config(
                &g,
                &q,
                EnumerationConfig {
                    start_candidates: Some(candidates.clone()),
                    start_range: Some(range),
                    ..Default::default()
                },
            )
            .run(|_| true)
            .embeddings
        };
        // any chunking of 0..len partitions the result set
        for chunk in [7usize, 16, 50] {
            let mut sum = 0;
            let mut lo = 0;
            while lo < candidates.len() {
                sum += count_range(lo..(lo + chunk).min(candidates.len()));
                lo += chunk;
            }
            assert_eq!(sum, total, "chunk size {chunk}");
        }
        // out-of-bounds ranges are clamped instead of panicking
        assert_eq!(count_range(0..usize::MAX), total);
        assert_eq!(count_range(candidates.len() + 5..candidates.len() + 9), 0);
        // a range also applies to the implicit all-vertices candidate list
        let implicit_total: u64 = [0..25usize, 25..50]
            .into_iter()
            .map(|range| {
                Enumerator::with_config(
                    &g,
                    &q,
                    EnumerationConfig { start_range: Some(range), ..Default::default() },
                )
                .run(|_| true)
                .embeddings
            })
            .sum();
        assert_eq!(implicit_total, total);
    }

    #[test]
    fn collected_embeddings_are_valid_and_distinct() {
        let g = erdos_renyi(30, 0.2, 2);
        let q = queries::q4();
        let embeddings = collect_embeddings(&g, &q);
        let mut seen = std::collections::HashSet::new();
        for m in &embeddings {
            // distinct data vertices
            let mut sorted = m.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), q.vertex_count());
            // every pattern edge is present
            for (a, b) in q.edges() {
                assert!(g.has_edge(m[a], m[b]));
            }
            assert!(seen.insert(m.clone()), "duplicate embedding {m:?}");
        }
        assert_eq!(embeddings.len() as u64, count_embeddings(&g, &q));
    }

    #[test]
    fn stats_levels_are_monotone_in_meaning() {
        let g = erdos_renyi(40, 0.15, 7);
        let q = queries::q3();
        let stats = Enumerator::new(&g, &q).run(|_| true);
        assert_eq!(stats.nodes_per_level.len(), q.vertex_count());
        assert_eq!(*stats.nodes_per_level.last().unwrap(), stats.embeddings);
        assert!(stats.total_nodes() >= stats.embeddings);
    }

    #[test]
    fn empty_pattern_and_empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(count_embeddings(&g, &triangle_pattern()), 0);
        let g2 = erdos_renyi(10, 0.3, 1);
        let single_vertex = Pattern::from_edges(1, &[]);
        // a single query vertex matches every data vertex
        assert_eq!(count_embeddings(&g2, &single_vertex), 10);
    }

    #[test]
    fn all_standard_queries_run_on_a_small_graph() {
        let g = erdos_renyi(35, 0.2, 11);
        for q in queries::standard_query_set() {
            let c = count_embeddings(&g, &q.pattern);
            // sanity: enumeration terminates and counts are deterministic
            assert_eq!(c, count_embeddings(&g, &q.pattern), "{}", q.name);
        }
    }

    /// Both kernels must walk the *same* search tree: identical embeddings in
    /// identical order, identical per-level node counts. (`pruned` is
    /// kernel-dependent by design — the intersection kernel never sees the
    /// candidates the probe kernel rejects with adjacency checks.)
    #[test]
    fn kernels_agree_on_embeddings_and_search_tree() {
        let g = erdos_renyi(45, 0.18, 13);
        for q in queries::standard_query_set() {
            let run = |kernel: CandidateKernel| {
                let mut embeddings = Vec::new();
                let stats = Enumerator::with_config(
                    &g,
                    &q.pattern,
                    EnumerationConfig { kernel, ..Default::default() },
                )
                .run(|m| {
                    embeddings.push(m.to_vec());
                    true
                });
                (embeddings, stats)
            };
            let (fast, fast_stats) = run(CandidateKernel::Intersect);
            let (probe, probe_stats) = run(CandidateKernel::Probe);
            assert_eq!(fast, probe, "{}", q.name);
            assert_eq!(fast_stats.embeddings, probe_stats.embeddings, "{}", q.name);
            assert_eq!(fast_stats.nodes_per_level, probe_stats.nodes_per_level, "{}", q.name);
            assert_eq!(probe_stats.intersect, Default::default(), "{}", q.name);
        }
    }

    #[test]
    fn run_units_matches_run_and_absorbs_stats() {
        let g = erdos_renyi(40, 0.2, 21);
        let q = queries::q2();
        let enumerator = Enumerator::new(&g, &q);
        let whole = enumerator.run(|_| true);
        let shared = SharedRun::for_config(&q, &EnumerationConfig::default());
        let candidates: Vec<VertexId> = g.vertices().collect();
        let mut merged = EnumerationStats::default();
        for lo in (0..candidates.len()).step_by(11) {
            let unit = enumerator.run_units(
                &shared,
                &candidates,
                Some(lo..(lo + 11).min(candidates.len())),
                |_| true,
            );
            merged.absorb(&unit);
        }
        assert_eq!(merged, whole);
    }
}
