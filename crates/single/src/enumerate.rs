//! The backtracking enumerator.

use rads_graph::{Graph, Pattern, SymmetryBreaking, VertexId};

use crate::candidates::passes_filters;
use crate::order::MatchingOrder;

/// Configuration of an enumeration run.
#[derive(Debug, Clone, Default)]
pub struct EnumerationConfig {
    /// Apply automorphism-based symmetry breaking (the paper applies it "by
    /// default"); disable only to cross-check counts in tests.
    pub disable_symmetry_breaking: bool,
    /// Stop after this many embeddings have been reported.
    pub max_results: Option<u64>,
    /// Restrict the data vertices the *start* query vertex may be mapped to.
    /// `None` means all vertices of the graph. This is how SM-E enumerates
    /// only from the candidates with sufficient border distance.
    pub start_candidates: Option<Vec<VertexId>>,
    /// Enumerate only the start candidates at these positions of the start
    /// candidate list (the explicit one, or all graph vertices in vertex
    /// order when `start_candidates` is `None`). The range is applied
    /// *before* the per-vertex filters and is clamped to the list length, so
    /// a family of runs whose ranges partition `0..len` partitions the
    /// result set exactly — this is what makes start-candidate work units
    /// splittable for the intra-machine worker pool.
    pub start_range: Option<std::ops::Range<usize>>,
    /// Explicit matching order; `None` selects [`MatchingOrder::default_for`].
    pub order: Option<MatchingOrder>,
}

/// Statistics of an enumeration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Number of embeddings reported to the callback.
    pub embeddings: u64,
    /// Number of search-tree nodes (successful partial matches) per matching
    /// position. `nodes_per_level[i]` counts the partial matches in which
    /// `i + 1` query vertices are mapped. RADS's memory estimator uses the sum
    /// of this vector as the embedding-trie node count for the vertex
    /// (Section 6).
    pub nodes_per_level: Vec<u64>,
    /// Candidates rejected by filters / adjacency checks / symmetry breaking.
    pub pruned: u64,
}

impl EnumerationStats {
    /// Total number of search-tree nodes (the embedding-trie node estimate).
    pub fn total_nodes(&self) -> u64 {
        self.nodes_per_level.iter().sum()
    }
}

/// A reusable enumerator over a graph/pattern pair.
pub struct Enumerator<'a> {
    graph: &'a Graph,
    pattern: &'a Pattern,
    config: EnumerationConfig,
}

impl<'a> Enumerator<'a> {
    /// Creates an enumerator with the default configuration.
    pub fn new(graph: &'a Graph, pattern: &'a Pattern) -> Self {
        Enumerator { graph, pattern, config: EnumerationConfig::default() }
    }

    /// Creates an enumerator with an explicit configuration.
    pub fn with_config(graph: &'a Graph, pattern: &'a Pattern, config: EnumerationConfig) -> Self {
        Enumerator { graph, pattern, config }
    }

    /// Runs the enumeration. The callback receives each embedding as a slice
    /// indexed by query vertex (`mapping[u]` is the data vertex of `u`) and
    /// returns `true` to continue, `false` to stop early.
    pub fn run<F: FnMut(&[VertexId]) -> bool>(&self, mut callback: F) -> EnumerationStats {
        let n = self.pattern.vertex_count();
        let mut stats = EnumerationStats {
            embeddings: 0,
            nodes_per_level: vec![0; n],
            pruned: 0,
        };
        if n == 0 {
            return stats;
        }
        let order = match &self.config.order {
            Some(o) => o.clone(),
            None => MatchingOrder::default_for(self.pattern),
        };
        let symmetry = if self.config.disable_symmetry_breaking {
            SymmetryBreaking::disabled(self.pattern)
        } else {
            SymmetryBreaking::new(self.pattern)
        };
        let start = order.start_vertex();
        let all_candidates: Vec<VertexId> = match &self.config.start_candidates {
            Some(cands) => cands.clone(),
            None => self.graph.vertices().collect(),
        };
        let ranged = match &self.config.start_range {
            Some(range) => {
                let lo = range.start.min(all_candidates.len());
                let hi = range.end.min(all_candidates.len());
                &all_candidates[lo..hi.max(lo)]
            }
            None => &all_candidates[..],
        };
        let start_candidates: Vec<VertexId> = ranged
            .iter()
            .copied()
            .filter(|&v| passes_filters(self.graph, self.pattern, start, v))
            .collect();

        let mut assigned: Vec<Option<VertexId>> = vec![None; n];
        let mut mapping: Vec<VertexId> = vec![0; n];
        let mut stop = false;

        for &v0 in &start_candidates {
            if stop {
                break;
            }
            if !symmetry.check_partial(start, v0, &assigned) {
                stats.pruned += 1;
                continue;
            }
            assigned[start] = Some(v0);
            stats.nodes_per_level[0] += 1;
            self.extend(
                1,
                &order,
                &symmetry,
                &mut assigned,
                &mut mapping,
                &mut stats,
                &mut callback,
                &mut stop,
            );
            assigned[start] = None;
        }
        stats
    }

    #[allow(clippy::too_many_arguments)]
    fn extend<F: FnMut(&[VertexId]) -> bool>(
        &self,
        pos: usize,
        order: &MatchingOrder,
        symmetry: &SymmetryBreaking,
        assigned: &mut Vec<Option<VertexId>>,
        mapping: &mut Vec<VertexId>,
        stats: &mut EnumerationStats,
        callback: &mut F,
        stop: &mut bool,
    ) {
        let n = self.pattern.vertex_count();
        if pos == n {
            for (u, a) in assigned.iter().enumerate() {
                mapping[u] = a.expect("complete assignment");
            }
            stats.embeddings += 1;
            if !callback(mapping) {
                *stop = true;
            }
            if let Some(max) = self.config.max_results {
                if stats.embeddings >= max {
                    *stop = true;
                }
            }
            return;
        }
        let u = order.vertex_at(pos);
        // Seed candidates from the anchor's adjacency list.
        let anchor_pos = order.anchor_of(pos);
        let anchor_vertex = order.vertex_at(anchor_pos);
        let anchor_data = assigned[anchor_vertex].expect("anchor must be assigned");
        let seed = self.graph.neighbors(anchor_data);

        'candidates: for &v in seed {
            if *stop {
                return;
            }
            // injectivity
            if assigned.contains(&Some(v)) {
                stats.pruned += 1;
                continue;
            }
            if !passes_filters(self.graph, self.pattern, u, v) {
                stats.pruned += 1;
                continue;
            }
            // adjacency with every already-matched neighbour of u
            for &w in self.pattern.neighbors(u) {
                if let Some(vw) = assigned[w] {
                    if !self.graph.has_edge(v, vw) {
                        stats.pruned += 1;
                        continue 'candidates;
                    }
                }
            }
            if !symmetry.check_partial(u, v, assigned) {
                stats.pruned += 1;
                continue;
            }
            assigned[u] = Some(v);
            stats.nodes_per_level[pos] += 1;
            self.extend(pos + 1, order, symmetry, assigned, mapping, stats, callback, stop);
            assigned[u] = None;
        }
    }
}

/// Enumerates embeddings of `pattern` in `graph` under `config`, invoking
/// `callback` for each one. Returns run statistics.
pub fn enumerate_embeddings<F: FnMut(&[VertexId]) -> bool>(
    graph: &Graph,
    pattern: &Pattern,
    config: EnumerationConfig,
    callback: F,
) -> EnumerationStats {
    Enumerator::with_config(graph, pattern, config).run(callback)
}

/// Counts the embeddings of `pattern` in `graph` (with symmetry breaking, so
/// each occurrence is counted once).
pub fn count_embeddings(graph: &Graph, pattern: &Pattern) -> u64 {
    Enumerator::new(graph, pattern).run(|_| true).embeddings
}

/// Collects every embedding of `pattern` in `graph` as a vector indexed by
/// query vertex. Intended for tests and small graphs.
pub fn collect_embeddings(graph: &Graph, pattern: &Pattern) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    Enumerator::new(graph, pattern).run(|m| {
        out.push(m.to_vec());
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::{erdos_renyi, grid_2d, ring_lattice};
    use rads_graph::{queries, GraphBuilder, PatternBuilder};

    fn triangle_pattern() -> Pattern {
        PatternBuilder::new(3).clique(&[0, 1, 2]).build()
    }

    #[test]
    fn counts_triangles_in_k4() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                b.add_edge(i, j);
            }
        }
        let g = b.build();
        assert_eq!(count_embeddings(&g, &triangle_pattern()), 4);
        // 4-clique occurs exactly once
        assert_eq!(count_embeddings(&g, &queries::c1()), 1);
        // 4-cycle occurs 3 times in K4
        assert_eq!(count_embeddings(&g, &queries::q1()), 3);
    }

    #[test]
    fn counts_match_triangle_counter_on_random_graphs() {
        for seed in 0..3u64 {
            let g = erdos_renyi(60, 0.12, seed);
            let expected = rads_graph::algorithms::triangle_count(&g) as u64;
            assert_eq!(count_embeddings(&g, &triangle_pattern()), expected, "seed {seed}");
        }
    }

    #[test]
    fn symmetry_breaking_divides_by_automorphism_count() {
        let g = erdos_renyi(40, 0.18, 9);
        for q in [queries::q1(), queries::q2(), queries::c1(), triangle_pattern()] {
            let with = count_embeddings(&g, &q);
            let without = Enumerator::with_config(
                &g,
                &q,
                EnumerationConfig { disable_symmetry_breaking: true, ..Default::default() },
            )
            .run(|_| true)
            .embeddings;
            let autos = SymmetryBreaking::new(&q).automorphism_count() as u64;
            assert_eq!(without, with * autos);
        }
    }

    #[test]
    fn squares_in_a_grid() {
        // Each unit cell of the lattice is exactly one 4-cycle; 2x2 cells in a
        // 3x3 grid -> 4 squares.
        let g = grid_2d(3, 3);
        assert_eq!(count_embeddings(&g, &queries::q1()), 4);
    }

    #[test]
    fn max_results_stops_early() {
        let g = ring_lattice(30, 2);
        let cfg = EnumerationConfig { max_results: Some(5), ..Default::default() };
        let stats = enumerate_embeddings(&g, &triangle_pattern(), cfg, |_| true);
        assert_eq!(stats.embeddings, 5);
    }

    #[test]
    fn callback_can_stop_enumeration() {
        let g = ring_lattice(30, 2);
        let mut seen = 0;
        enumerate_embeddings(&g, &triangle_pattern(), EnumerationConfig::default(), |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn start_candidate_restriction_partitions_the_result_set() {
        let g = erdos_renyi(50, 0.15, 4);
        let q = queries::q2();
        let total = count_embeddings(&g, &q);
        // Split the vertex set in two halves and restrict the start vertex.
        let order = MatchingOrder::default_for(&q);
        let start = order.start_vertex();
        let _ = start;
        let half_a: Vec<VertexId> = g.vertices().filter(|v| v % 2 == 0).collect();
        let half_b: Vec<VertexId> = g.vertices().filter(|v| v % 2 == 1).collect();
        let count = |cands: Vec<VertexId>| {
            Enumerator::with_config(
                &g,
                &q,
                EnumerationConfig { start_candidates: Some(cands), ..Default::default() },
            )
            .run(|_| true)
            .embeddings
        };
        assert_eq!(count(half_a) + count(half_b), total);
    }

    #[test]
    fn start_range_chunks_partition_the_result_set() {
        let g = erdos_renyi(50, 0.15, 8);
        let q = queries::q2();
        let total = count_embeddings(&g, &q);
        let candidates: Vec<VertexId> = g.vertices().collect();
        let count_range = |range: std::ops::Range<usize>| {
            Enumerator::with_config(
                &g,
                &q,
                EnumerationConfig {
                    start_candidates: Some(candidates.clone()),
                    start_range: Some(range),
                    ..Default::default()
                },
            )
            .run(|_| true)
            .embeddings
        };
        // any chunking of 0..len partitions the result set
        for chunk in [7usize, 16, 50] {
            let mut sum = 0;
            let mut lo = 0;
            while lo < candidates.len() {
                sum += count_range(lo..(lo + chunk).min(candidates.len()));
                lo += chunk;
            }
            assert_eq!(sum, total, "chunk size {chunk}");
        }
        // out-of-bounds ranges are clamped instead of panicking
        assert_eq!(count_range(0..usize::MAX), total);
        assert_eq!(count_range(candidates.len() + 5..candidates.len() + 9), 0);
        // a range also applies to the implicit all-vertices candidate list
        let implicit_total: u64 = [0..25usize, 25..50]
            .into_iter()
            .map(|range| {
                Enumerator::with_config(
                    &g,
                    &q,
                    EnumerationConfig { start_range: Some(range), ..Default::default() },
                )
                .run(|_| true)
                .embeddings
            })
            .sum();
        assert_eq!(implicit_total, total);
    }

    #[test]
    fn collected_embeddings_are_valid_and_distinct() {
        let g = erdos_renyi(30, 0.2, 2);
        let q = queries::q4();
        let embeddings = collect_embeddings(&g, &q);
        let mut seen = std::collections::HashSet::new();
        for m in &embeddings {
            // distinct data vertices
            let mut sorted = m.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), q.vertex_count());
            // every pattern edge is present
            for (a, b) in q.edges() {
                assert!(g.has_edge(m[a], m[b]));
            }
            assert!(seen.insert(m.clone()), "duplicate embedding {m:?}");
        }
        assert_eq!(embeddings.len() as u64, count_embeddings(&g, &q));
    }

    #[test]
    fn stats_levels_are_monotone_in_meaning() {
        let g = erdos_renyi(40, 0.15, 7);
        let q = queries::q3();
        let stats = Enumerator::new(&g, &q).run(|_| true);
        assert_eq!(stats.nodes_per_level.len(), q.vertex_count());
        assert_eq!(*stats.nodes_per_level.last().unwrap(), stats.embeddings);
        assert!(stats.total_nodes() >= stats.embeddings);
    }

    #[test]
    fn empty_pattern_and_empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(count_embeddings(&g, &triangle_pattern()), 0);
        let g2 = erdos_renyi(10, 0.3, 1);
        let single_vertex = Pattern::from_edges(1, &[]);
        // a single query vertex matches every data vertex
        assert_eq!(count_embeddings(&g2, &single_vertex), 10);
    }

    #[test]
    fn all_standard_queries_run_on_a_small_graph() {
        let g = erdos_renyi(35, 0.2, 11);
        for q in queries::standard_query_set() {
            let c = count_embeddings(&g, &q.pattern);
            // sanity: enumeration terminates and counts are deterministic
            assert_eq!(c, count_embeddings(&g, &q.pattern), "{}", q.name);
        }
    }
}
