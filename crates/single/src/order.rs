//! Matching-order selection for the backtracking enumerator.

use rads_graph::{Pattern, PatternVertex};

/// A total order over the query vertices in which they are matched.
///
/// The order is *connected*: except for the first vertex, every vertex has at
/// least one neighbour earlier in the order, so the candidate set of each new
/// vertex can always be derived from the adjacency list of an already-matched
/// vertex (no Cartesian products).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingOrder {
    order: Vec<PatternVertex>,
    position: Vec<usize>,
    /// For each position `i > 0`, the position of one earlier neighbour of
    /// `order[i]` ("anchor") whose mapped data vertex seeds the candidate set.
    anchor: Vec<usize>,
}

impl MatchingOrder {
    /// Builds a matching order starting from `start`, then repeatedly
    /// appending the not-yet-ordered vertex with (a) the most neighbours
    /// already in the order, breaking ties by (b) larger pattern degree and
    /// (c) smaller vertex id. This is the usual candidate-connectivity greedy
    /// heuristic.
    pub fn greedy_from(pattern: &Pattern, start: PatternVertex) -> Self {
        let n = pattern.vertex_count();
        assert!(start < n);
        assert!(pattern.is_connected(), "matching order requires a connected pattern");
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        order.push(start);
        placed[start] = true;
        while order.len() < n {
            let mut best: Option<(usize, usize, PatternVertex)> = None;
            for u in pattern.vertices() {
                if placed[u] {
                    continue;
                }
                let back_edges = pattern.neighbors(u).iter().filter(|&&w| placed[w]).count();
                if back_edges == 0 {
                    continue;
                }
                let key = (back_edges, pattern.degree(u), u);
                let better = match best {
                    None => true,
                    Some((be, deg, id)) => {
                        (key.0, key.1) > (be, deg) || ((key.0, key.1) == (be, deg) && u < id)
                    }
                };
                if better {
                    best = Some(key);
                }
            }
            let (_, _, next) = best.expect("pattern is connected, a next vertex must exist");
            placed[next] = true;
            order.push(next);
        }
        Self::from_order(pattern, order)
    }

    /// Builds a matching order with the given explicit vertex sequence.
    ///
    /// # Panics
    /// Panics if the sequence is not a permutation of the pattern vertices or
    /// is not connected.
    pub fn from_order(pattern: &Pattern, order: Vec<PatternVertex>) -> Self {
        let n = pattern.vertex_count();
        assert_eq!(order.len(), n, "order must cover every query vertex");
        let mut position = vec![usize::MAX; n];
        for (i, &u) in order.iter().enumerate() {
            assert!(u < n, "unknown query vertex {u}");
            assert_eq!(position[u], usize::MAX, "query vertex {u} appears twice");
            position[u] = i;
        }
        let mut anchor = vec![usize::MAX; n];
        for (i, &u) in order.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let a = pattern
                .neighbors(u)
                .iter()
                .map(|&w| position[w])
                .filter(|&p| p < i)
                .min()
                .unwrap_or_else(|| panic!("vertex {u} has no earlier neighbour: order is not connected"));
            anchor[i] = a;
        }
        MatchingOrder { order, position, anchor }
    }

    /// Picks the start vertex with the largest degree (a cheap selectivity
    /// proxy) and builds the greedy order from it.
    pub fn default_for(pattern: &Pattern) -> Self {
        let start = pattern
            .vertices()
            .max_by_key(|&u| (pattern.degree(u), std::cmp::Reverse(u)))
            .unwrap_or(0);
        Self::greedy_from(pattern, start)
    }

    /// The ordered query vertices.
    pub fn order(&self) -> &[PatternVertex] {
        &self.order
    }

    /// Number of query vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the pattern has no vertices.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The query vertex matched at position `i`.
    pub fn vertex_at(&self, i: usize) -> PatternVertex {
        self.order[i]
    }

    /// The position of query vertex `u` in the order.
    pub fn position_of(&self, u: PatternVertex) -> usize {
        self.position[u]
    }

    /// The anchor position for the vertex at position `i > 0`: an earlier
    /// position whose query vertex is adjacent to `order[i]`.
    pub fn anchor_of(&self, i: usize) -> usize {
        self.anchor[i]
    }

    /// The start (first) query vertex.
    pub fn start_vertex(&self) -> PatternVertex {
        self.order[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::queries;
    use rads_graph::PatternBuilder;

    #[test]
    fn greedy_order_is_connected() {
        for q in queries::standard_query_set() {
            let order = MatchingOrder::default_for(&q.pattern);
            assert_eq!(order.len(), q.pattern.vertex_count());
            for i in 1..order.len() {
                let u = order.vertex_at(i);
                let a = order.anchor_of(i);
                assert!(a < i);
                assert!(q.pattern.has_edge(u, order.vertex_at(a)));
            }
        }
    }

    #[test]
    fn start_vertex_has_max_degree() {
        let p = queries::q4(); // house: roof-adjacent base vertices have degree 3
        let order = MatchingOrder::default_for(&p);
        let start = order.start_vertex();
        assert_eq!(p.degree(start), p.vertices().map(|u| p.degree(u)).max().unwrap());
    }

    #[test]
    fn explicit_order_roundtrips() {
        let p = PatternBuilder::new(4).cycle(&[0, 1, 2, 3]).build();
        let order = MatchingOrder::from_order(&p, vec![2, 1, 0, 3]);
        assert_eq!(order.order(), &[2, 1, 0, 3]);
        assert_eq!(order.position_of(0), 2);
        assert_eq!(order.vertex_at(3), 3);
        assert_eq!(order.start_vertex(), 2);
    }

    #[test]
    #[should_panic]
    fn disconnected_order_is_rejected() {
        let p = PatternBuilder::new(4).cycle(&[0, 1, 2, 3]).build();
        // vertex 2 is not adjacent to 0, so [0, 2, ...] is not connected
        let _ = MatchingOrder::from_order(&p, vec![0, 2, 1, 3]);
    }

    #[test]
    #[should_panic]
    fn duplicate_vertices_are_rejected() {
        let p = PatternBuilder::new(3).clique(&[0, 1, 2]).build();
        let _ = MatchingOrder::from_order(&p, vec![0, 1, 1]);
    }

    #[test]
    fn greedy_from_every_start_vertex_works() {
        let p = queries::q7();
        for start in p.vertices() {
            let order = MatchingOrder::greedy_from(&p, start);
            assert_eq!(order.start_vertex(), start);
            assert_eq!(order.len(), p.vertex_count());
        }
    }
}
