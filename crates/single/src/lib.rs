//! Single-machine subgraph enumeration.
//!
//! The paper delegates purely local work to "a single-machine algorithm, such
//! as TurboIso" (Section 3.1). This crate is that algorithm for the
//! reproduction: a backtracking subgraph-isomorphism enumerator in the style
//! of TurboIso / the generic framework of Lee et al. (VLDB 2012), with
//!
//! * candidate filtering by degree and neighbourhood degree,
//! * a connected, selectivity-aware matching order,
//! * `IsJoinable`-style adjacency checks against already-matched vertices,
//! * automorphism-based symmetry breaking (shared with the distributed
//!   engines via [`rads_graph::SymmetryBreaking`]),
//! * optional restriction of the start vertex to an explicit candidate set —
//!   exactly what RADS's SM-E phase needs (it enumerates only from the
//!   candidates whose border distance is at least the span of the start
//!   vertex),
//! * per-level search statistics used by RADS's memory estimator
//!   (Section 6 "Estimating memory usage").
//!
//! Besides SM-E, every baseline and every test that needs ground-truth
//! embedding counts uses this crate.

pub mod candidates;
pub mod enumerate;
pub mod order;

pub use candidates::FilterThresholds;
pub use enumerate::{
    collect_embeddings, count_embeddings, enumerate_embeddings, CandidateKernel,
    EnumerationConfig, EnumerationStats, Enumerator, SharedRun,
};
pub use order::MatchingOrder;
