//! Candidate filtering for query vertices.

use rads_graph::{Graph, Pattern, PatternVertex, VertexId};

/// Per-query-vertex filter thresholds, precomputed once per enumeration run.
///
/// [`passes_filters`] re-derives the pattern-side minimum neighbour degree on
/// every call, which is wasteful inside the enumeration hot loop where the
/// same query vertex is tested against thousands of data-vertex candidates.
/// This struct hoists both thresholds out of the loop; `passes` is then two
/// array reads plus one (early-exiting) scan of the candidate's adjacency
/// list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterThresholds {
    /// `degree[u]` — the pattern degree of `u` (candidates need at least it).
    degree: Vec<usize>,
    /// `min_nbr_degree[u]` — the minimum pattern degree among `u`'s
    /// neighbours; a data neighbour counts as "strong" if its degree reaches
    /// this.
    min_nbr_degree: Vec<usize>,
}

impl FilterThresholds {
    /// Precomputes the thresholds for every query vertex of `pattern`.
    pub fn new(pattern: &Pattern) -> Self {
        let degree: Vec<usize> = pattern.vertices().map(|u| pattern.degree(u)).collect();
        let min_nbr_degree = pattern
            .vertices()
            .map(|u| {
                pattern
                    .neighbors(u)
                    .iter()
                    .map(|&w| pattern.degree(w))
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        FilterThresholds { degree, min_nbr_degree }
    }

    /// Returns `true` if data vertex `v` passes the structural filters for
    /// query vertex `u` (same semantics as [`passes_filters`]).
    pub fn passes(&self, graph: &Graph, u: PatternVertex, v: VertexId) -> bool {
        let du = self.degree[u];
        if graph.degree(v) < du {
            return false;
        }
        if du == 0 {
            return true;
        }
        let need = self.min_nbr_degree[u];
        let mut strong = 0usize;
        for &w in graph.neighbors(v) {
            if graph.degree(w) >= need {
                strong += 1;
                if strong >= du {
                    return true;
                }
            }
        }
        false
    }
}

/// Returns `true` if data vertex `v` passes the cheap structural filters for
/// query vertex `u`:
///
/// * degree filter: `deg(v) >= deg(u)`,
/// * neighbourhood degree filter: `v` has at least `deg(u)` neighbours whose
///   degree is at least the minimum degree among `u`'s neighbours.
///
/// These are the standard TurboIso-style pruning rules; they are sound (never
/// reject a vertex that participates in an embedding mapping `u -> v`).
///
/// One-shot convenience over [`FilterThresholds`]; code that tests many
/// candidates against the same pattern should build the thresholds once
/// instead.
pub fn passes_filters(graph: &Graph, pattern: &Pattern, u: PatternVertex, v: VertexId) -> bool {
    FilterThresholds::new(pattern).passes(graph, u, v)
}

/// Candidate set of query vertex `u`: every data vertex passing
/// [`passes_filters`].
pub fn candidates(graph: &Graph, pattern: &Pattern, u: PatternVertex) -> Vec<VertexId> {
    let thresholds = FilterThresholds::new(pattern);
    graph
        .vertices()
        .filter(|&v| thresholds.passes(graph, u, v))
        .collect()
}

/// Candidate-set sizes of all query vertices (used to pick the start vertex
/// with the best selectivity).
pub fn candidate_counts(graph: &Graph, pattern: &Pattern) -> Vec<usize> {
    let thresholds = FilterThresholds::new(pattern);
    pattern
        .vertices()
        .map(|u| {
            graph
                .vertices()
                .filter(|&v| thresholds.passes(graph, u, v))
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::{GraphBuilder, PatternBuilder};

    #[test]
    fn degree_filter_rejects_low_degree_vertices() {
        // star data graph: 0 is the hub of 4 leaves
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = PatternBuilder::new(3).edge(0, 1).edge(0, 2).build(); // path center 0
        let c0 = candidates(&g, &p, 0);
        assert_eq!(c0, vec![0]); // only the hub has degree >= 2
        let c1 = candidates(&g, &p, 1);
        // Leaves qualify (their hub neighbour has degree >= 2); the hub itself
        // is rejected by the neighbourhood filter because its neighbours all
        // have degree 1, and the path centre needs degree >= 2.
        assert_eq!(c1, vec![1, 2, 3, 4]);
    }

    #[test]
    fn neighborhood_filter_counts_strong_neighbors() {
        // path 0-1-2-3: query triangle needs vertices with 2 neighbours of
        // degree >= 2; only vertices 1 and 2 qualify for the degree filter,
        // and vertex 1's strong neighbours are {2} only (0 has degree 1).
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let triangle = PatternBuilder::new(3).clique(&[0, 1, 2]).build();
        for u in 0..3 {
            assert!(candidates(&g, &triangle, u).is_empty());
        }
    }

    #[test]
    fn candidate_counts_cover_all_query_vertices() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let p = PatternBuilder::new(3).clique(&[0, 1, 2]).build();
        let counts = candidate_counts(&g, &p);
        assert_eq!(counts.len(), 3);
        // the triangle 0-1-2 exists, vertex 3 is excluded by the degree filter
        assert!(counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn thresholds_agree_with_one_shot_filter() {
        let g = GraphBuilder::from_edges(
            7,
            &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 3)],
        );
        for p in [
            PatternBuilder::new(3).clique(&[0, 1, 2]).build(),
            PatternBuilder::new(4).cycle(&[0, 1, 2, 3]).build(),
            PatternBuilder::new(2).edge(0, 1).build(),
        ] {
            let thresholds = FilterThresholds::new(&p);
            for u in p.vertices() {
                for v in g.vertices() {
                    assert_eq!(
                        thresholds.passes(&g, u, v),
                        passes_filters(&g, &p, u, v),
                        "u={u} v={v}"
                    );
                }
            }
        }
    }
}
