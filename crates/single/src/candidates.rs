//! Candidate filtering for query vertices.

use rads_graph::{Graph, Pattern, PatternVertex, VertexId};

/// Returns `true` if data vertex `v` passes the cheap structural filters for
/// query vertex `u`:
///
/// * degree filter: `deg(v) >= deg(u)`,
/// * neighbourhood degree filter: `v` has at least `deg(u)` neighbours whose
///   degree is at least the minimum degree among `u`'s neighbours.
///
/// These are the standard TurboIso-style pruning rules; they are sound (never
/// reject a vertex that participates in an embedding mapping `u -> v`).
pub fn passes_filters(graph: &Graph, pattern: &Pattern, u: PatternVertex, v: VertexId) -> bool {
    let du = pattern.degree(u);
    if graph.degree(v) < du {
        return false;
    }
    if du == 0 {
        return true;
    }
    let min_nbr_deg = pattern
        .neighbors(u)
        .iter()
        .map(|&w| pattern.degree(w))
        .min()
        .unwrap_or(0);
    let strong_neighbors = graph
        .neighbors(v)
        .iter()
        .filter(|&&w| graph.degree(w) >= min_nbr_deg)
        .count();
    strong_neighbors >= du
}

/// Candidate set of query vertex `u`: every data vertex passing
/// [`passes_filters`].
pub fn candidates(graph: &Graph, pattern: &Pattern, u: PatternVertex) -> Vec<VertexId> {
    graph
        .vertices()
        .filter(|&v| passes_filters(graph, pattern, u, v))
        .collect()
}

/// Candidate-set sizes of all query vertices (used to pick the start vertex
/// with the best selectivity).
pub fn candidate_counts(graph: &Graph, pattern: &Pattern) -> Vec<usize> {
    pattern
        .vertices()
        .map(|u| {
            graph
                .vertices()
                .filter(|&v| passes_filters(graph, pattern, u, v))
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::{GraphBuilder, PatternBuilder};

    #[test]
    fn degree_filter_rejects_low_degree_vertices() {
        // star data graph: 0 is the hub of 4 leaves
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = PatternBuilder::new(3).edge(0, 1).edge(0, 2).build(); // path center 0
        let c0 = candidates(&g, &p, 0);
        assert_eq!(c0, vec![0]); // only the hub has degree >= 2
        let c1 = candidates(&g, &p, 1);
        // Leaves qualify (their hub neighbour has degree >= 2); the hub itself
        // is rejected by the neighbourhood filter because its neighbours all
        // have degree 1, and the path centre needs degree >= 2.
        assert_eq!(c1, vec![1, 2, 3, 4]);
    }

    #[test]
    fn neighborhood_filter_counts_strong_neighbors() {
        // path 0-1-2-3: query triangle needs vertices with 2 neighbours of
        // degree >= 2; only vertices 1 and 2 qualify for the degree filter,
        // and vertex 1's strong neighbours are {2} only (0 has degree 1).
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let triangle = PatternBuilder::new(3).clique(&[0, 1, 2]).build();
        for u in 0..3 {
            assert!(candidates(&g, &triangle, u).is_empty());
        }
    }

    #[test]
    fn candidate_counts_cover_all_query_vertices() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let p = PatternBuilder::new(3).clique(&[0, 1, 2]).build();
        let counts = candidate_counts(&g, &p);
        assert_eq!(counts.len(), 3);
        // the triangle 0-1-2 exists, vertex 3 is excluded by the degree filter
        assert!(counts.iter().all(|&c| c == 3));
    }
}
