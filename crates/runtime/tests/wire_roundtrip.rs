//! Property tests over the socket wire codec: every value of the full
//! `Request` / `Response` enum — empty adjacency lists, empty batches,
//! extreme ids — must survive encode → frame → unframe → decode exactly,
//! and the length-prefix boundaries must hold.

use proptest::prelude::*;

use rads_runtime::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Frame, FrameKind, MAX_FRAME_BYTES,
};
use rads_runtime::{Request, Response};

fn arb_vertices(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..=u32::MAX, 0..max_len)
}

/// Frames `value` through an in-memory wire and hands back the decoded
/// frame, checking the byte accounting along the way.
fn frame_roundtrip(kind: FrameKind, correlation: u64, payload: &[u8]) -> Frame {
    let mut wire = Vec::new();
    let written = write_frame(&mut wire, kind, correlation, payload).expect("write frame");
    assert_eq!(written, wire.len(), "write_frame must report exactly the bytes it wrote");
    let mut cursor = wire.as_slice();
    let frame = read_frame(&mut cursor).expect("read frame").expect("one frame");
    assert!(read_frame(&mut cursor).expect("clean tail").is_none());
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every `Request` variant round-trips through codec + framing.
    #[test]
    fn requests_round_trip(
        variant in 0usize..5,
        pairs in proptest::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..48),
        vertices in arb_vertices(48),
        tag in 0u32..=u32::MAX,
        rows in proptest::collection::vec(arb_vertices(7), 0..12),
        correlation in 0u64..=u64::MAX,
    ) {
        let request = match variant {
            0 => Request::VerifyEdges(pairs),
            1 => Request::FetchVertices(vertices),
            2 => Request::CheckRegionGroups,
            3 => Request::ShareRegionGroup,
            _ => Request::DeliverRows { tag, rows },
        };
        let mut payload = Vec::new();
        encode_request(&request, &mut payload);
        prop_assert_eq!(decode_request(&payload).as_ref(), Ok(&request));

        let frame = frame_roundtrip(FrameKind::Request, correlation, &payload);
        prop_assert_eq!(frame.kind, FrameKind::Request);
        prop_assert_eq!(frame.correlation, correlation);
        prop_assert_eq!(decode_request(&frame.payload), Ok(request));
    }

    /// Every `Response` variant round-trips through codec + framing —
    /// including empty adjacency lists (a fetched vertex the partition does
    /// not own) and empty verification batches.
    #[test]
    fn responses_round_trip(
        variant in 0usize..6,
        verdicts in proptest::collection::vec(any::<bool>(), 0..64),
        adjacency in proptest::collection::vec((0u32..=u32::MAX, arb_vertices(9)), 0..12),
        count in 0u64..=u64::MAX,
        group in arb_vertices(48),
        some in any::<bool>(),
        correlation in 0u64..=u64::MAX,
    ) {
        let response = match variant {
            0 => Response::EdgeVerification(verdicts),
            1 => Response::Adjacency(adjacency),
            2 => Response::RegionGroupCount(count as usize),
            3 => Response::RegionGroup(some.then_some(group)),
            4 => Response::Ack,
            _ => Response::Unsupported,
        };
        let mut payload = Vec::new();
        encode_response(&response, &mut payload);
        prop_assert_eq!(decode_response(&payload).as_ref(), Ok(&response));

        let frame = frame_roundtrip(FrameKind::Response, correlation, &payload);
        prop_assert_eq!(decode_response(&frame.payload), Ok(response));
    }

    /// Truncating an encoded message anywhere strictly inside it never
    /// panics and never decodes successfully — except at a prefix that is
    /// itself a complete encoding (impossible here: every variant's length
    /// fields make prefixes incomplete).
    #[test]
    fn truncated_requests_are_rejected_not_misread(
        vertices in arb_vertices(24),
        cut in 0usize..128,
    ) {
        let request = Request::FetchVertices(vertices);
        let mut payload = Vec::new();
        encode_request(&request, &mut payload);
        if cut < payload.len() {
            let truncated = &payload[..cut];
            prop_assert!(decode_request(truncated).is_err());
        }
    }

    /// Arbitrary bytes never panic the decoders (they may legitimately
    /// decode if they happen to be well-formed).
    #[test]
    fn random_bytes_never_panic_the_decoders(
        bytes in proptest::collection::vec(0u8..=u8::MAX, 0..96),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let mut cursor = bytes.as_slice();
        let _ = read_frame(&mut cursor);
    }
}

/// A frame at the size cap is readable; one byte past it is rejected from a
/// forged length prefix without allocating the declared body.
#[test]
fn frame_length_boundaries_hold() {
    // just-under-the-cap body, forged header only (no 64 MiB allocation):
    // declared length == MAX_FRAME_BYTES must be accepted by the prefix
    // check and then fail as *truncation*, not as oversize
    let mut wire = Vec::new();
    wire.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_le_bytes());
    wire.extend_from_slice(&[2u8; 16]);
    let mut cursor = wire.as_slice();
    let err = read_frame(&mut cursor).expect_err("body is missing");
    assert!(err.to_string().contains("truncated"), "{err}");

    // one past the cap is rejected at the prefix
    let mut wire = Vec::new();
    wire.extend_from_slice(&((MAX_FRAME_BYTES + 1) as u32).to_le_bytes());
    wire.extend_from_slice(&[2u8; 16]);
    let mut cursor = wire.as_slice();
    let err = read_frame(&mut cursor).expect_err("over the cap");
    assert!(err.to_string().contains("exceeds"), "{err}");
}

/// A megabyte-scale adjacency response (the realistic "huge frame": a hub
/// vertex's neighbourhood) survives the full round trip.
#[test]
fn large_adjacency_frames_round_trip() {
    let adj: Vec<u32> = (0..300_000u32).collect();
    let response = Response::Adjacency(vec![(7, adj)]);
    let mut payload = Vec::new();
    encode_response(&response, &mut payload);
    assert!(payload.len() > 1024 * 1024, "the test payload should exceed 1 MiB");
    let mut wire = Vec::new();
    write_frame(&mut wire, FrameKind::Response, 99, &payload).expect("write");
    let mut cursor = wire.as_slice();
    let frame = read_frame(&mut cursor).expect("read").expect("frame");
    assert_eq!(decode_response(&frame.payload), Ok(response));
}
