//! Property tests over the socket wire codec: every value of the full
//! `Request` / `Response` enum — empty adjacency lists, empty batches,
//! extreme ids — must survive encode → frame → unframe → decode exactly,
//! query-scoped [`Envelope`]s must round-trip with their ids intact, and
//! the length-prefix boundaries must hold.

use proptest::prelude::*;

use rads_runtime::wire::{
    decode_envelope, decode_request, decode_response, encode_envelope, encode_request,
    encode_response, read_frame, read_message, write_frame, write_message,
    write_message_with_cap, Frame, FrameKind, CONTINUE_SEQ_BYTES, MAX_FRAME_BYTES,
};
use rads_runtime::{Envelope, QueryId, Request, Response};

/// A deliberately tiny frame cap so multi-frame continuation runs can be
/// exercised without materializing 64 MiB payloads. Each frame's body holds
/// the 18-byte header, the 4-byte sequence number and up to
/// [`TEST_CHUNK`] payload bytes.
const TEST_FRAME_CAP: usize = 64;
const TEST_CHUNK: usize = TEST_FRAME_CAP - 18 - CONTINUE_SEQ_BYTES;

fn arb_vertices(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..=u32::MAX, 0..max_len)
}

fn request_from(
    variant: usize,
    pairs: Vec<(u32, u32)>,
    vertices: Vec<u32>,
    tag: u32,
    rows: Vec<Vec<u32>>,
    id: u64,
    budget: Option<u64>,
) -> Request {
    match variant {
        0 => Request::VerifyEdges(pairs),
        1 => Request::FetchVertices(vertices),
        2 => Request::CheckRegionGroups,
        3 => Request::ShareRegionGroup,
        4 => Request::Query { id, pattern: format!("q{}", id % 9), budget },
        _ => Request::DeliverRows { tag, rows },
    }
}

/// Frames `value` through an in-memory wire and hands back the decoded
/// frame, checking the byte accounting along the way.
fn frame_roundtrip(kind: FrameKind, correlation: u64, query: QueryId, payload: &[u8]) -> Frame {
    let mut wire = Vec::new();
    let written = write_frame(&mut wire, kind, correlation, query, payload).expect("write frame");
    assert_eq!(written, wire.len(), "write_frame must report exactly the bytes it wrote");
    let mut cursor = wire.as_slice();
    let frame = read_frame(&mut cursor).expect("read frame").expect("one frame");
    assert!(read_frame(&mut cursor).expect("clean tail").is_none());
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every `Request` variant round-trips through codec + framing, and the
    /// frame's query id survives untouched.
    #[test]
    fn requests_round_trip(
        variant in 0usize..6,
        pairs in proptest::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..48),
        vertices in arb_vertices(48),
        tag in 0u32..=u32::MAX,
        rows in proptest::collection::vec(arb_vertices(7), 0..12),
        id in 0u64..=u64::MAX,
        budget_set in any::<bool>(),
        budget_raw in 0u64..=u64::MAX,
        correlation in 0u64..=u64::MAX,
        query in 0u64..=u64::MAX,
    ) {
        let request =
            request_from(variant, pairs, vertices, tag, rows, id, budget_set.then_some(budget_raw));
        let mut payload = Vec::new();
        encode_request(&request, &mut payload);
        prop_assert_eq!(decode_request(&payload).as_ref(), Ok(&request));

        let frame = frame_roundtrip(FrameKind::Request, correlation, QueryId(query), &payload);
        prop_assert_eq!(frame.kind, FrameKind::Request);
        prop_assert_eq!(frame.correlation, correlation);
        prop_assert_eq!(frame.query, QueryId(query));
        prop_assert_eq!(decode_request(&frame.payload), Ok(request));
    }

    /// Every `Response` variant round-trips through codec + framing —
    /// including empty adjacency lists (a fetched vertex the partition does
    /// not own) and empty verification batches.
    #[test]
    fn responses_round_trip(
        variant in 0usize..6,
        verdicts in proptest::collection::vec(any::<bool>(), 0..64),
        adjacency in proptest::collection::vec((0u32..=u32::MAX, arb_vertices(9)), 0..12),
        count in 0u64..=u64::MAX,
        group in arb_vertices(48),
        some in any::<bool>(),
        correlation in 0u64..=u64::MAX,
        query in 0u64..=u64::MAX,
    ) {
        let response = match variant {
            0 => Response::EdgeVerification(verdicts),
            1 => Response::Adjacency(adjacency),
            2 => Response::RegionGroupCount(count as usize),
            3 => Response::RegionGroup(some.then_some(group)),
            4 => Response::Ack,
            _ => Response::Unsupported,
        };
        let mut payload = Vec::new();
        encode_response(&response, &mut payload);
        prop_assert_eq!(decode_response(&payload).as_ref(), Ok(&response));

        let frame = frame_roundtrip(FrameKind::Response, correlation, QueryId(query), &payload);
        prop_assert_eq!(frame.query, QueryId(query));
        prop_assert_eq!(decode_response(&frame.payload), Ok(response));
    }

    /// Full [`Envelope`]s — query id, sequence number and any request body —
    /// round-trip through the envelope codec exactly. The envelope *is* the
    /// engine-facing RPC unit now, so this is the compatibility contract the
    /// concurrent serving mode leans on.
    #[test]
    fn envelopes_round_trip(
        variant in 0usize..6,
        pairs in proptest::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..24),
        vertices in arb_vertices(24),
        tag in 0u32..=u32::MAX,
        rows in proptest::collection::vec(arb_vertices(5), 0..8),
        id in 0u64..=u64::MAX,
        budget_set in any::<bool>(),
        budget_raw in 0u64..=u64::MAX,
        query in 0u64..=u64::MAX,
        seq in 0u64..=u64::MAX,
    ) {
        let body =
            request_from(variant, pairs, vertices, tag, rows, id, budget_set.then_some(budget_raw));
        let envelope = Envelope::new(QueryId(query), seq, body);
        let mut buf = Vec::new();
        encode_envelope(&envelope, &mut buf);
        let decoded = decode_envelope(&buf).expect("decode envelope");
        prop_assert_eq!(decoded.query, envelope.query);
        prop_assert_eq!(decoded.seq, envelope.seq);
        prop_assert_eq!(decoded.body, envelope.body);
    }

    /// Truncating an encoded envelope anywhere strictly inside it never
    /// panics and never decodes to the original.
    #[test]
    fn truncated_envelopes_are_rejected_not_misread(
        vertices in arb_vertices(24),
        query in 0u64..=u64::MAX,
        seq in 0u64..=u64::MAX,
        cut in 0usize..128,
    ) {
        let envelope = Envelope::new(QueryId(query), seq, Request::FetchVertices(vertices));
        let mut buf = Vec::new();
        encode_envelope(&envelope, &mut buf);
        if cut < buf.len() {
            prop_assert!(decode_envelope(&buf[..cut]).is_err());
        }
    }

    /// Truncating an encoded message anywhere strictly inside it never
    /// panics and never decodes successfully — except at a prefix that is
    /// itself a complete encoding (impossible here: every variant's length
    /// fields make prefixes incomplete).
    #[test]
    fn truncated_requests_are_rejected_not_misread(
        vertices in arb_vertices(24),
        cut in 0usize..128,
    ) {
        let request = Request::FetchVertices(vertices);
        let mut payload = Vec::new();
        encode_request(&request, &mut payload);
        if cut < payload.len() {
            let truncated = &payload[..cut];
            prop_assert!(decode_request(truncated).is_err());
        }
    }

    /// Arbitrary bytes never panic the decoders (they may legitimately
    /// decode if they happen to be well-formed).
    #[test]
    fn random_bytes_never_panic_the_decoders(
        bytes in proptest::collection::vec(0u8..=u8::MAX, 0..96),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = decode_envelope(&bytes);
        let mut cursor = bytes.as_slice();
        let _ = read_frame(&mut cursor);
    }

    /// Payloads straddling the 1-, 2- and 3-frame boundaries (every chunk
    /// multiple ± 1 byte) reassemble to exactly the written bytes, and a
    /// payload that fits in one frame produces byte-identical wire output
    /// to a bare [`write_frame`] — the continuation layer must be invisible
    /// when it is not needed.
    #[test]
    fn continuation_runs_reassemble_across_frame_boundaries(
        boundary in 0usize..4,
        delta in 0usize..=2, // boundary*chunk - 1, exactly, + 1
        fill in any::<u8>(),
        correlation in 0u64..=u64::MAX,
        query in 0u64..=u64::MAX,
    ) {
        let Some(len) = (boundary * TEST_CHUNK + delta).checked_sub(1) else {
            return; // boundary 0, delta 0: no length -1
        };
        let payload: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
        let mut wire = Vec::new();
        let written = write_message_with_cap(
            &mut wire, FrameKind::Response, correlation, QueryId(query), &payload, TEST_FRAME_CAP,
        ).expect("write message");
        prop_assert_eq!(written, wire.len(), "reported bytes must match the wire");
        let mut cursor = wire.as_slice();
        let frame = read_message(&mut cursor).expect("read message").expect("one message");
        prop_assert!(read_message(&mut cursor).expect("clean tail").is_none());
        prop_assert_eq!(frame.kind, FrameKind::Response);
        prop_assert_eq!(frame.correlation, correlation);
        prop_assert_eq!(frame.query, QueryId(query));
        prop_assert_eq!(frame.payload, payload.clone());
        if payload.len() + 18 <= TEST_FRAME_CAP {
            let mut single = Vec::new();
            write_frame(&mut single, FrameKind::Response, correlation, QueryId(query), &payload)
                .expect("write frame");
            prop_assert_eq!(single, wire, "single-frame messages must not change shape");
        }
    }

    /// Cutting a continuation run anywhere strictly inside it — mid-frame
    /// or exactly between two frames of the run — is truncation, never a
    /// shorter-but-valid message.
    #[test]
    fn truncated_continuation_runs_are_rejected(
        extra in 0usize..(2 * TEST_CHUNK),
        cut in 1usize..512,
    ) {
        // at least two frames: one Continue + the terminating Response
        let payload: Vec<u8> = (0..TEST_CHUNK + 1 + extra).map(|i| i as u8).collect();
        let mut wire = Vec::new();
        write_message_with_cap(
            &mut wire, FrameKind::Response, 7, QueryId::SOLO, &payload, TEST_FRAME_CAP,
        )
        .expect("write message");
        if cut >= wire.len() {
            return; // out of range for this payload size — nothing to cut
        }
        let mut cursor = &wire[..cut];
        prop_assert!(read_message(&mut cursor).is_err(), "cut at byte {} decoded", cut);
    }
}

/// A run whose terminating frame carries a different correlation id is
/// rejected: responses are matched to requests by correlation, so a run
/// interleaved with another message's frame must never reassemble.
#[test]
fn continuation_run_with_mismatched_correlation_is_rejected() {
    let mut wire = Vec::new();
    let mut body = Vec::new();
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&[0xAA; 10]);
    write_frame(&mut wire, FrameKind::Continue, 1, QueryId::SOLO, &body).expect("write continue");
    write_frame(&mut wire, FrameKind::Response, 2, QueryId::SOLO, &[0xBB; 4])
        .expect("write response");
    let err = read_message(&mut wire.as_slice()).expect_err("correlation switch mid-run");
    assert!(err.to_string().contains("correlation"), "{err}");
}

/// A run whose terminating frame carries a different *query id* is rejected
/// just the same — under concurrent queries the header's query id is part
/// of the run's identity.
#[test]
fn continuation_run_with_mismatched_query_is_rejected() {
    let mut wire = Vec::new();
    let mut body = Vec::new();
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&[0xAA; 10]);
    write_frame(&mut wire, FrameKind::Continue, 1, QueryId(8), &body).expect("write continue");
    write_frame(&mut wire, FrameKind::Response, 1, QueryId(9), &[0xBB; 4])
        .expect("write response");
    let err = read_message(&mut wire.as_slice()).expect_err("query switch mid-run");
    assert!(err.to_string().contains("query"), "{err}");
}

/// A run that skips a sequence number is rejected — a dropped or reordered
/// continuation frame must surface as an error, not as silently reassembled
/// garbage.
#[test]
fn continuation_run_with_skipped_sequence_is_rejected() {
    let mut wire = Vec::new();
    for seq in [0u32, 2] {
        let mut body = Vec::new();
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&[0xCC; 8]);
        write_frame(&mut wire, FrameKind::Continue, 5, QueryId::SOLO, &body)
            .expect("write continue");
    }
    write_frame(&mut wire, FrameKind::Response, 5, QueryId::SOLO, &[0xDD; 4])
        .expect("write response");
    let err = read_message(&mut wire.as_slice()).expect_err("sequence skip mid-run");
    assert!(err.to_string().contains("sequence"), "{err}");
}

/// An adjacency response larger than [`MAX_FRAME_BYTES`] — a hub vertex
/// whose encoded neighbourhood exceeds the 64 MiB frame cap — round-trips
/// through a real continuation run at the *production* cap. Before the
/// multi-frame layer this payload was simply unsendable.
#[test]
fn adjacency_response_over_the_frame_cap_round_trips() {
    let adj: Vec<u32> = (0..17_000_000u32).collect(); // 68 MB encoded
    let response = Response::Adjacency(vec![(1, adj)]);
    let mut payload = Vec::new();
    encode_response(&response, &mut payload);
    assert!(payload.len() > MAX_FRAME_BYTES, "payload must exceed the frame cap");
    let mut wire = Vec::new();
    let written = write_message(&mut wire, FrameKind::Response, 3, QueryId(2), &payload)
        .expect("write message");
    assert_eq!(written, wire.len());
    // the run really is multi-frame: it starts with a Continue frame
    let first = read_frame(&mut wire.as_slice()).expect("read").expect("frame");
    assert_eq!(first.kind, FrameKind::Continue);
    let mut cursor = wire.as_slice();
    let frame = read_message(&mut cursor).expect("read message").expect("one message");
    assert!(read_message(&mut cursor).expect("clean tail").is_none());
    assert_eq!(frame.kind, FrameKind::Response);
    assert_eq!(frame.correlation, 3);
    assert_eq!(frame.query, QueryId(2));
    assert_eq!(decode_response(&frame.payload), Ok(response));
}

/// A stream that ends cleanly *between* the frames of a run (peer closed
/// with the run unterminated) is truncation, not end-of-stream.
#[test]
fn continuation_run_ending_between_frames_is_truncation() {
    let payload: Vec<u8> = (0..2 * TEST_CHUNK).map(|i| i as u8).collect();
    let mut wire = Vec::new();
    write_message_with_cap(&mut wire, FrameKind::Response, 9, QueryId::SOLO, &payload, TEST_FRAME_CAP)
        .expect("write message");
    // keep exactly the first frame of the run
    let first_len = 4 + u32::from_le_bytes(wire[..4].try_into().expect("4 bytes")) as usize;
    let err = read_message(&mut &wire[..first_len]).expect_err("unterminated run");
    assert!(err.to_string().contains("truncated"), "{err}");
}

/// A frame at the size cap is readable; one byte past it is rejected from a
/// forged length prefix without allocating the declared body.
#[test]
fn frame_length_boundaries_hold() {
    // just-under-the-cap body, forged header only (no 64 MiB allocation):
    // declared length == MAX_FRAME_BYTES must be accepted by the prefix
    // check and then fail as *truncation*, not as oversize
    let mut wire = Vec::new();
    wire.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_le_bytes());
    wire.extend_from_slice(&[2u8; 16]);
    let mut cursor = wire.as_slice();
    let err = read_frame(&mut cursor).expect_err("body is missing");
    assert!(err.to_string().contains("truncated"), "{err}");

    // one past the cap is rejected at the prefix
    let mut wire = Vec::new();
    wire.extend_from_slice(&((MAX_FRAME_BYTES + 1) as u32).to_le_bytes());
    wire.extend_from_slice(&[2u8; 16]);
    let mut cursor = wire.as_slice();
    let err = read_frame(&mut cursor).expect_err("over the cap");
    assert!(err.to_string().contains("exceeds"), "{err}");
}

/// A megabyte-scale adjacency response (the realistic "huge frame": a hub
/// vertex's neighbourhood) survives the full round trip.
#[test]
fn large_adjacency_frames_round_trip() {
    let adj: Vec<u32> = (0..300_000u32).collect();
    let response = Response::Adjacency(vec![(7, adj)]);
    let mut payload = Vec::new();
    encode_response(&response, &mut payload);
    assert!(payload.len() > 1024 * 1024, "the test payload should exceed 1 MiB");
    let mut wire = Vec::new();
    write_frame(&mut wire, FrameKind::Response, 99, QueryId(1), &payload).expect("write");
    let mut cursor = wire.as_slice();
    let frame = read_frame(&mut cursor).expect("read").expect("frame");
    assert_eq!(decode_response(&frame.payload), Ok(response));
}
