//! Resilience of the socket wire decoder: whatever bytes a broken, killed
//! or hostile peer leaves on a connection, the decoder must answer with a
//! *typed* [`WireError`] — never a panic, never an over-allocation, never a
//! silently wrong value. The fault-tolerant runtime leans on this totality:
//! `TransportError::Decode` is only a recoverable, retryable condition
//! because the layer below cannot bring the process down.
//!
//! The fuzz loops are deterministic (a fixed-seed xorshift generator), so a
//! failure reproduces byte-for-byte.

use std::io;

use rads_runtime::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, read_message,
    version_byte, write_frame, write_message_with_cap, FrameKind, WireError, CONTINUE_SEQ_BYTES,
    FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use rads_runtime::{QueryId, Request, Response};

/// Deterministic xorshift64* stream — the whole suite's only randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The typed wire error inside an `io::Error`, if that is what it carries.
fn wire_error(e: &io::Error) -> Option<&WireError> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<WireError>())
}

fn sample_requests(rng: &mut Rng) -> Request {
    match rng.below(5) {
        0 => Request::VerifyEdges(
            (0..rng.below(20)).map(|_| (rng.next() as u32, rng.next() as u32)).collect(),
        ),
        1 => Request::FetchVertices((0..rng.below(30)).map(|_| rng.next() as u32).collect()),
        2 => Request::CheckRegionGroups,
        3 => Request::ShareRegionGroup,
        _ => Request::DeliverRows {
            tag: rng.next() as u32,
            rows: (0..rng.below(6))
                .map(|_| (0..rng.below(5)).map(|_| rng.next() as u32).collect())
                .collect(),
        },
    }
}

fn sample_responses(rng: &mut Rng) -> Response {
    match rng.below(6) {
        0 => Response::EdgeVerification((0..rng.below(25)).map(|_| rng.next().is_multiple_of(2)).collect()),
        1 => Response::Adjacency(
            (0..rng.below(8))
                .map(|_| {
                    (rng.next() as u32, (0..rng.below(10)).map(|_| rng.next() as u32).collect())
                })
                .collect(),
        ),
        2 => Response::RegionGroupCount(rng.below(1 << 20)),
        3 => Response::RegionGroup(Some((0..rng.below(12)).map(|_| rng.next() as u32).collect())),
        4 => Response::RegionGroup(None),
        _ => Response::Ack,
    }
}

/// Truncating a valid message encoding at *every* prefix length yields a
/// typed error (or, coincidentally, another valid value — a prefix of a
/// vertex list is still a vertex list), never a panic.
#[test]
fn every_truncation_of_a_valid_message_decodes_or_errors() {
    let mut rng = Rng(0x5EED_0001);
    for _ in 0..200 {
        let mut buf = Vec::new();
        if rng.next().is_multiple_of(2) {
            encode_request(&sample_requests(&mut rng), &mut buf);
        } else {
            encode_response(&sample_responses(&mut rng), &mut buf);
        }
        for cut in 0..buf.len() {
            // both decoders must be total over the truncated prefix
            let _ = decode_request(&buf[..cut]);
            let _ = decode_response(&buf[..cut]);
        }
        // the empty input is a typed truncation, not a panic
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
        assert_eq!(decode_response(&[]), Err(WireError::Truncated));
    }
}

/// Pure garbage bytes never panic either decoder, and a lying length field
/// cannot over-allocate: decoding is bounded by the bytes actually present.
#[test]
fn random_garbage_never_panics_the_message_decoders() {
    let mut rng = Rng(0x5EED_0002);
    for _ in 0..500 {
        let garbage: Vec<u8> = (0..rng.below(120)).map(|_| rng.next() as u8).collect();
        let _ = decode_request(&garbage);
        let _ = decode_response(&garbage);
    }
    // a length prefix claiming u32::MAX vertices backed by 4 bytes of data
    // must be a typed truncation (the checked_len guard), not a 16 GiB Vec
    let mut lying = vec![1u8]; // FetchVertices tag
    lying.extend_from_slice(&u32::MAX.to_le_bytes());
    lying.extend_from_slice(&7u32.to_le_bytes());
    assert_eq!(decode_request(&lying), Err(WireError::Truncated));
}

/// A frame cut off at every possible byte boundary: EOF before the first
/// byte is a clean `None`, EOF anywhere inside the frame is
/// [`WireError::Truncated`] — and only the full byte sequence parses.
#[test]
fn partial_frames_are_truncation_errors_never_hangs_or_panics() {
    let mut wire = Vec::new();
    write_frame(&mut wire, FrameKind::Response, 42, QueryId(9), b"some payload bytes")
        .expect("write");
    for cut in 0..wire.len() {
        let mut cursor = &wire[..cut];
        match read_frame(&mut cursor) {
            Ok(None) => assert_eq!(cut, 0, "only the empty stream is a clean close"),
            Ok(Some(_)) => panic!("a {cut}-byte prefix of a {}-byte frame parsed", wire.len()),
            Err(e) => assert_eq!(
                wire_error(&e),
                Some(&WireError::Truncated),
                "cut at {cut}: wrong error {e}"
            ),
        }
    }
    let mut cursor = wire.as_slice();
    let frame = read_frame(&mut cursor).expect("full frame").expect("one frame");
    assert_eq!(frame.correlation, 42);
    assert_eq!(frame.query, QueryId(9));
    assert_eq!(frame.payload, b"some payload bytes");
}

/// Hostile frame headers get the matching typed error: oversized and
/// undersized length prefixes, wrong version bytes, unknown kind bytes.
#[test]
fn hostile_frame_headers_are_typed_errors() {
    // length prefix above the frame cap
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&((MAX_FRAME_BYTES + 1) as u32).to_le_bytes());
    oversized.extend_from_slice(&[0u8; 16]);
    match read_frame(&mut oversized.as_slice()) {
        Err(e) => assert!(
            matches!(wire_error(&e), Some(WireError::FrameTooLarge { .. })),
            "wrong error: {e}"
        ),
        other => panic!("oversized length prefix accepted: {other:?}"),
    }
    // length prefix below the 18-byte body header
    let mut undersized = Vec::new();
    undersized.extend_from_slice(&3u32.to_le_bytes());
    undersized.extend_from_slice(&[0u8; 3]);
    match read_frame(&mut undersized.as_slice()) {
        Err(e) => assert!(
            matches!(wire_error(&e), Some(WireError::FrameTooSmall { .. })),
            "wrong error: {e}"
        ),
        other => panic!("undersized length prefix accepted: {other:?}"),
    }
    // a pre-envelope peer's version byte (or any other stale build): the
    // frame is rejected by version before its kind byte is even looked at
    let mut stale = Vec::new();
    stale.extend_from_slice(&18u32.to_le_bytes()); // body: full header, no payload
    stale.push(0xA1); // version byte of wire version 1
    stale.push(0xEE); // an unknown kind that must NOT be reached
    stale.extend_from_slice(&0u64.to_le_bytes());
    stale.extend_from_slice(&0u64.to_le_bytes());
    match read_frame(&mut stale.as_slice()) {
        Err(e) => assert_eq!(wire_error(&e), Some(&WireError::Version { got: 0xA1 })),
        other => panic!("stale version byte accepted: {other:?}"),
    }
    // unknown kind byte (behind a valid version byte)
    let mut unknown = Vec::new();
    unknown.extend_from_slice(&18u32.to_le_bytes()); // body: version + kind + corr + query
    unknown.push(version_byte());
    unknown.push(0xEE);
    unknown.extend_from_slice(&0u64.to_le_bytes());
    unknown.extend_from_slice(&0u64.to_le_bytes());
    match read_frame(&mut unknown.as_slice()) {
        Err(e) => assert_eq!(wire_error(&e), Some(&WireError::UnknownKind(0xEE))),
        other => panic!("unknown kind byte accepted: {other:?}"),
    }
}

/// Tiny frame cap so continuation runs are cheap to build.
const CAP: usize = 32;

fn continuation_run(correlation: u64, payload_len: usize) -> (Vec<u8>, Vec<u8>) {
    let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
    let mut wire = Vec::new();
    write_message_with_cap(&mut wire, FrameKind::Response, correlation, QueryId(3), &payload, CAP)
        .expect("write run");
    (wire, payload)
}

/// A clean continuation run reassembles exactly; every truncation of it is
/// a typed error. (Baseline for the corruption cases below.)
#[test]
fn continuation_runs_reassemble_and_truncate_cleanly() {
    let (wire, payload) = continuation_run(7, 200);
    let frame = read_message(&mut wire.as_slice()).expect("read run").expect("one message");
    assert_eq!(frame.kind, FrameKind::Response);
    assert_eq!(frame.payload, payload);
    for cut in 1..wire.len() {
        let mut cursor = &wire[..cut];
        match read_message(&mut cursor) {
            Ok(None) => panic!("cut at {cut} read as a clean close"),
            Ok(Some(_)) => panic!("a {cut}-byte prefix of the run parsed"),
            Err(e) => assert!(wire_error(&e).is_some(), "cut at {cut}: untyped error {e}"),
        }
    }
}

/// A frame with a different correlation id injected into a continuation run
/// is [`WireError::ContinuationMismatch`] naming both ids.
#[test]
fn garbage_continuation_interleaving_is_a_mismatch_error() {
    let (run, _) = continuation_run(7, 200);
    // splice an unrelated frame after the run's first frame
    let first_len =
        u32::from_le_bytes(run[..4].try_into().expect("4 bytes")) as usize + 4;
    let mut spliced = run[..first_len].to_vec();
    write_frame(&mut spliced, FrameKind::Response, 99, QueryId(3), b"intruder").expect("write");
    spliced.extend_from_slice(&run[first_len..]);
    match read_message(&mut spliced.as_slice()) {
        Err(e) => assert_eq!(
            wire_error(&e),
            Some(&WireError::ContinuationMismatch { expected: 7, got: 99 })
        ),
        other => panic!("interleaved run accepted: {other:?}"),
    }
}

/// A frame carrying the right correlation id but a *different query id*
/// spliced into a run is [`WireError::QueryMismatch`] — one query's
/// continuation run can never absorb another query's bytes.
#[test]
fn cross_query_continuation_interleaving_is_a_query_mismatch() {
    let (run, _) = continuation_run(7, 200);
    let first_len =
        u32::from_le_bytes(run[..4].try_into().expect("4 bytes")) as usize + 4;
    let mut spliced = run[..first_len].to_vec();
    write_frame(&mut spliced, FrameKind::Response, 7, QueryId(4), b"other query").expect("write");
    spliced.extend_from_slice(&run[first_len..]);
    match read_message(&mut spliced.as_slice()) {
        Err(e) => assert_eq!(
            wire_error(&e),
            Some(&WireError::QueryMismatch { expected: 3, got: 4 })
        ),
        other => panic!("cross-query run accepted: {other:?}"),
    }
}

/// Randomly corrupting a single byte of a continuation run yields a typed
/// error or a (different) well-formed message — never a panic, never an
/// allocation beyond the declared sizes.
#[test]
fn single_byte_corruption_of_runs_never_panics() {
    let mut rng = Rng(0x5EED_0003);
    let (wire, original) = continuation_run(3, 300);
    for _ in 0..400 {
        let mut corrupted = wire.clone();
        let at = rng.below(corrupted.len());
        let flip = (rng.next() as u8) | 1; // never a zero XOR (no-op)
        corrupted[at] ^= flip;
        match read_message(&mut corrupted.as_slice()) {
            // the flip landed in payload bytes: still a structurally valid
            // message (content integrity is the codec layer's job above)
            Ok(Some(frame)) => assert!(frame.payload.len() <= 2 * original.len()),
            Ok(None) => {}
            Err(e) => {
                assert!(
                    wire_error(&e).is_some() || e.kind() == io::ErrorKind::UnexpectedEof,
                    "corruption at {at}: untyped error {e}"
                );
            }
        }
    }
}

/// An out-of-order sequence number inside a run is typed, with both the
/// expected and the received sequence in the error.
#[test]
fn out_of_order_continuation_sequence_is_typed() {
    let (mut wire, _) = continuation_run(5, 200);
    // Frame layout: [len u32][version][kind][corr u64][query u64][seq u32]
    // — bump the first frame's sequence number from 0 to 2.
    let seq_at = 4 + 1 + 1 + 8 + 8;
    assert_eq!(&wire[seq_at..seq_at + CONTINUE_SEQ_BYTES], &0u32.to_le_bytes());
    wire[seq_at..seq_at + CONTINUE_SEQ_BYTES].copy_from_slice(&2u32.to_le_bytes());
    match read_message(&mut wire.as_slice()) {
        Err(e) => assert_eq!(
            wire_error(&e),
            Some(&WireError::ContinuationOutOfOrder { expected: 0, got: 2 })
        ),
        other => panic!("out-of-order run accepted: {other:?}"),
    }
}

/// `FRAME_HEADER_BYTES` really is the framing overhead the accounting
/// assumes — a drifting constant would silently skew every traffic number.
#[test]
fn frame_header_constant_matches_the_wire() {
    let mut wire = Vec::new();
    let written =
        write_frame(&mut wire, FrameKind::Shutdown, 0, QueryId::SOLO, &[]).expect("write");
    assert_eq!(written, FRAME_HEADER_BYTES);
    assert_eq!(wire.len(), FRAME_HEADER_BYTES);
}
