//! The wire format of the socket transport.
//!
//! Every message travelling between two machines is one **frame**:
//!
//! ```text
//! [ body length: u32 LE ][ version: u8 ][ kind: u8 ][ correlation id: u64 LE ][ query id: u64 LE ][ payload ]
//! '------ 4 bytes ------''--------------------- body (length bytes) --------------------------------------'
//! ```
//!
//! The body length covers the version byte, the kind byte, the correlation
//! id, the query id and the payload (`payload.len() + 18`), so a reader
//! always knows exactly how many bytes to consume before the next frame
//! starts. A length prefix larger than [`MAX_FRAME_BYTES`] is rejected
//! before anything is allocated — a corrupt or hostile peer cannot make the
//! daemon reserve gigabytes.
//!
//! The version byte is [`version_byte`] = `0xA0 | WIRE_VERSION`. The high
//! nibble is a deliberate mark: protocol revision 1 had no version byte and
//! put the frame *kind* (1–10) in that position, so any v1 frame — and most
//! random garbage — fails the version check with a typed
//! [`WireError::Version`] instead of being misparsed. Bumping
//! [`WIRE_VERSION`] makes every older peer's frames fail the same way.
//!
//! [`FrameKind::Request`] frames carry an encoded [`Envelope`] (see
//! [`encode_envelope`]); [`FrameKind::Response`] frames carry an encoded
//! [`Response`]. The correlation id pairs a response with the request it
//! answers on one connection — that is what lets several engine workers
//! pipeline requests over one socket — while the query id in the header
//! scopes the frame to one enumeration, so a resident cluster can interleave
//! frames of concurrent queries on the same fabric and route each to its
//! per-query daemon state without decoding payloads. The remaining kinds
//! are one-way control frames of the node runtime (connection handshake,
//! distributed barrier, result delivery and shutdown) whose payloads are
//! defined by [`crate::transport`]; cluster-scoped control frames travel
//! with query id 0, per-query ones (Result, Query, QueryResult) carry the
//! query they serve.
//!
//! The codec is hand-rolled little-endian binary — no serde, no reflection —
//! because the message set is small, closed and hot: `fetchV` responses
//! dominate the byte volume and encode as raw `u32` runs. Every decoder is
//! total: any byte sequence either decodes to a value or returns a
//! [`WireError`]; malformed input never panics. `decode_request` /
//! `decode_response` / `decode_envelope` additionally reject trailing bytes
//! so a frame is either exactly one message or an error.
//!
//! # Multi-frame messages (continuation)
//!
//! A single *message* is not capped at one frame: a payload larger than the
//! frame cap is written by [`write_message`] as a run of
//! [`FrameKind::Continue`] frames — each carrying `[sequence: u32 LE]` plus
//! a chunk of the payload, all tagged with the message's correlation id and
//! query id — terminated by a final frame of the real kind carrying the
//! last chunk. [`read_message`] reassembles the run and hands back one
//! logical [`Frame`]; a message that fits in one frame is written and read
//! exactly as before, byte for byte. The reassembler is as strict as the
//! rest of the codec: a continuation run must be contiguous on its
//! connection, so a correlation-id or query-id switch mid-run, an
//! out-of-order sequence number, a stream that ends before the final frame,
//! or an assembled message above [`MAX_MESSAGE_BYTES`] are all hard
//! [`WireError`]s.

use std::io::{self, Read, Write};

use rads_graph::VertexId;

use crate::message::{Envelope, QueryId, Request, Response};

/// Hard ceiling on the frame body length (64 MiB). Larger frames are
/// rejected at the length prefix, before allocation. Messages above this
/// size travel as a [`FrameKind::Continue`] run (see [`write_message`]).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Hard ceiling on a reassembled multi-frame message (1 GiB): the point at
/// which [`read_message`] stops believing a continuation run is legitimate
/// rather than a hostile or broken peer streaming chunks forever.
pub const MAX_MESSAGE_BYTES: usize = 1024 * 1024 * 1024;

/// Protocol revision spoken by this build. Revision 2 introduced the
/// query-scoped envelope: a version byte and a query id in every frame
/// header. Revision 1 (no version byte) is rejected with
/// [`WireError::Version`].
pub const WIRE_VERSION: u8 = 2;

/// High-nibble mark OR'd into the version byte so it can never collide with
/// a v1 frame's kind byte (1–10), which occupied the same position.
const VERSION_MARK: u8 = 0xA0;

/// The version byte every frame starts its body with.
pub const fn version_byte() -> u8 {
    VERSION_MARK | WIRE_VERSION
}

/// Bytes of the fixed body header: version + kind + correlation id +
/// query id.
const BODY_HEADER_BYTES: usize = 1 + 1 + 8 + 8;

/// Bytes of the fixed frame header: length prefix + body header.
pub const FRAME_HEADER_BYTES: usize = 4 + BODY_HEADER_BYTES;

/// Bytes of the sequence-number prefix inside a [`FrameKind::Continue`]
/// payload.
pub const CONTINUE_SEQ_BYTES: usize = 4;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Connection handshake: the payload is the connecting machine's id
    /// (`u32`). Sent once, as the first frame of every client connection.
    Hello,
    /// An encoded [`Envelope`] (see [`encode_envelope`]); the receiver must
    /// answer with a `Response` frame carrying the same correlation id and
    /// query id.
    Request,
    /// An encoded [`Response`] to the request with the same correlation id;
    /// the query id echoes the request's.
    Response,
    /// Distributed-barrier notification: payload is the `epoch: u64` alone
    /// (arrivals are counted, not attributed). Cluster-scoped (query id 0):
    /// only the one-shot baselines barrier, never concurrently with other
    /// queries. One-way; no response frame.
    Barrier,
    /// A worker process delivering its engine result to the coordinator.
    /// Payload layout is owned by the caller (opaque here); the query id
    /// names the query the result belongs to, so concurrent queries'
    /// results collect independently. One-way.
    Result,
    /// Coordinator-to-worker shutdown order. Empty payload. One-way.
    Shutdown,
    /// A worker process shipping a metrics snapshot to the coordinator for
    /// cluster-wide aggregation (periodically during a run and once after
    /// the engine finishes). Payload is the `rads-obs` binary snapshot
    /// codec; correlation id is the sending machine's id. One-way.
    Metrics,
    /// One chunk of a message too large for a single frame: payload is
    /// `[sequence: u32 LE][payload chunk]`, correlation id and query id are
    /// the message's. Never surfaced by [`read_message`] — runs are
    /// reassembled into the final frame's kind.
    Continue,
    /// Serving mode, client → serve coordinator: a query submission on a
    /// client connection. The payload layout is owned by the serve layer
    /// (`rads-bench`); the correlation id is a client-chosen request id the
    /// server echoes in the [`FrameKind::QueryResult`] reply.
    Query,
    /// Serving mode, serve coordinator → client: the reply to the `Query`
    /// frame with the same correlation id (counts + per-query stats, or a
    /// structured admission/execution error). The query id carries the
    /// server-assigned [`QueryId`] (0 if the query was never admitted).
    /// Payload owned by the serve layer.
    QueryResult,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Request => 2,
            FrameKind::Response => 3,
            FrameKind::Barrier => 4,
            FrameKind::Result => 5,
            FrameKind::Shutdown => 6,
            FrameKind::Continue => 7,
            FrameKind::Metrics => 8,
            FrameKind::Query => 9,
            FrameKind::QueryResult => 10,
        }
    }

    fn from_u8(raw: u8) -> Result<Self, WireError> {
        Ok(match raw {
            1 => FrameKind::Hello,
            2 => FrameKind::Request,
            3 => FrameKind::Response,
            4 => FrameKind::Barrier,
            5 => FrameKind::Result,
            6 => FrameKind::Shutdown,
            7 => FrameKind::Continue,
            8 => FrameKind::Metrics,
            9 => FrameKind::Query,
            10 => FrameKind::QueryResult,
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Pairs responses with requests; 0 for control frames.
    pub correlation: u64,
    /// The query this frame belongs to; [`QueryId::SOLO`] for cluster-scoped
    /// control frames and all single-tenant traffic.
    pub query: QueryId,
    /// The encoded message.
    pub payload: Vec<u8>,
}

/// Why a byte sequence is not a valid message or frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the message did.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The declared body length.
        declared: usize,
    },
    /// The length prefix is smaller than the fixed body header.
    FrameTooSmall {
        /// The declared body length.
        declared: usize,
    },
    /// The frame's version byte is not this build's [`version_byte`]: the
    /// peer speaks a different protocol revision (v1 frames put the kind
    /// byte here, so they fail this check by construction) or the stream is
    /// corrupt.
    Version {
        /// The version byte the frame carried.
        got: u8,
    },
    /// The frame kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// A message tag byte is not a known variant.
    UnknownTag(u8),
    /// A length-prefixed string field is not valid UTF-8.
    BadString,
    /// The message decoded but bytes were left over.
    TrailingBytes {
        /// How many undecoded bytes followed the message.
        extra: usize,
    },
    /// A frame inside a continuation run carried a different correlation id
    /// than the frame that started the run — runs must be contiguous on
    /// their connection.
    ContinuationMismatch {
        /// Correlation id of the frame that started the run.
        expected: u64,
        /// Correlation id of the offending frame.
        got: u64,
    },
    /// A frame carried a different query id than its context requires: a
    /// continuation run switched query mid-run, or a response answered
    /// under a different query than the request was issued for.
    QueryMismatch {
        /// The query id the receiver expected.
        expected: u64,
        /// The query id the frame carried.
        got: u64,
    },
    /// A [`FrameKind::Continue`] frame arrived with the wrong sequence
    /// number (runs are strictly in-order, starting at 0).
    ContinuationOutOfOrder {
        /// The sequence number the reassembler was waiting for.
        expected: u32,
        /// The sequence number the frame carried.
        got: u32,
    },
    /// A reassembled message grew past [`MAX_MESSAGE_BYTES`].
    MessageTooLarge {
        /// The configured ceiling that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::FrameTooLarge { declared } => {
                write!(f, "frame body of {declared} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            WireError::FrameTooSmall { declared } => write!(
                f,
                "frame body of {declared} bytes is smaller than the \
                 {BODY_HEADER_BYTES}-byte body header"
            ),
            WireError::Version { got } => write!(
                f,
                "frame version byte {got:#04x} does not match wire version {WIRE_VERSION} \
                 (version byte {:#04x}): peer speaks an incompatible protocol revision",
                version_byte()
            ),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the message")
            }
            WireError::ContinuationMismatch { expected, got } => write!(
                f,
                "continuation run for correlation {expected} interrupted by a frame \
                 with correlation {got}"
            ),
            WireError::QueryMismatch { expected, got } => {
                write!(f, "frame for query {got} where query {expected} was expected")
            }
            WireError::ContinuationOutOfOrder { expected, got } => write!(
                f,
                "continuation frame out of order: expected sequence {expected}, got {got}"
            ),
            WireError::MessageTooLarge { limit } => {
                write!(f, "reassembled message exceeds the {limit}-byte message cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

// ---------------------------------------------------------------------------
// primitive encode / decode
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked reader over an encoded message.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A length field that is about to size an allocation of `elem_bytes`
    /// per element: checked against the bytes actually remaining, so a lying
    /// length cannot over-allocate.
    fn checked_len(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn vertices(&mut self) -> Result<Vec<VertexId>, WireError> {
        let n = self.checked_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes { extra: self.remaining() });
        }
        Ok(())
    }
}

fn put_vertices(buf: &mut Vec<u8>, vs: &[VertexId]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u32(buf, v);
    }
}

// ---------------------------------------------------------------------------
// message codec
// ---------------------------------------------------------------------------

const REQ_VERIFY_EDGES: u8 = 0;
const REQ_FETCH_VERTICES: u8 = 1;
const REQ_CHECK_REGION_GROUPS: u8 = 2;
const REQ_SHARE_REGION_GROUP: u8 = 3;
const REQ_DELIVER_ROWS: u8 = 4;
const REQ_QUERY: u8 = 5;

const RESP_EDGE_VERIFICATION: u8 = 0;
const RESP_ADJACENCY: u8 = 1;
const RESP_REGION_GROUP_COUNT: u8 = 2;
const RESP_REGION_GROUP: u8 = 3;
const RESP_ACK: u8 = 4;
const RESP_UNSUPPORTED: u8 = 5;
const RESP_QUERY_DONE: u8 = 6;

/// Appends the encoding of `request` to `buf`.
pub fn encode_request(request: &Request, buf: &mut Vec<u8>) {
    match request {
        Request::VerifyEdges(pairs) => {
            buf.push(REQ_VERIFY_EDGES);
            put_u32(buf, pairs.len() as u32);
            for &(u, v) in pairs {
                put_u32(buf, u);
                put_u32(buf, v);
            }
        }
        Request::FetchVertices(vs) => {
            buf.push(REQ_FETCH_VERTICES);
            put_vertices(buf, vs);
        }
        Request::CheckRegionGroups => buf.push(REQ_CHECK_REGION_GROUPS),
        Request::ShareRegionGroup => buf.push(REQ_SHARE_REGION_GROUP),
        Request::DeliverRows { tag, rows } => {
            buf.push(REQ_DELIVER_ROWS);
            put_u32(buf, *tag);
            put_u32(buf, rows.len() as u32);
            for row in rows {
                put_vertices(buf, row);
            }
        }
        Request::Query { id, pattern, budget } => {
            buf.push(REQ_QUERY);
            put_u64(buf, *id);
            put_u32(buf, pattern.len() as u32);
            buf.extend_from_slice(pattern.as_bytes());
            match budget {
                Some(bytes) => {
                    buf.push(1);
                    put_u64(buf, *bytes);
                }
                None => buf.push(0),
            }
        }
    }
}

/// Decodes exactly one [`Request`] from `buf` (trailing bytes are an error).
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(buf);
    let request = read_request(&mut r)?;
    r.finish()?;
    Ok(request)
}

fn read_request(r: &mut Reader<'_>) -> Result<Request, WireError> {
    Ok(match r.u8()? {
        REQ_VERIFY_EDGES => {
            let n = r.checked_len(8)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.u32()?, r.u32()?));
            }
            Request::VerifyEdges(pairs)
        }
        REQ_FETCH_VERTICES => Request::FetchVertices(r.vertices()?),
        REQ_CHECK_REGION_GROUPS => Request::CheckRegionGroups,
        REQ_SHARE_REGION_GROUP => Request::ShareRegionGroup,
        REQ_DELIVER_ROWS => {
            let tag = r.u32()?;
            let n = r.checked_len(4)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.vertices()?);
            }
            Request::DeliverRows { tag, rows }
        }
        REQ_QUERY => {
            let id = r.u64()?;
            let len = r.checked_len(1)?;
            let pattern = String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| WireError::BadString)?;
            let budget = match r.u8()? {
                0 => None,
                _ => Some(r.u64()?),
            };
            Request::Query { id, pattern, budget }
        }
        other => return Err(WireError::UnknownTag(other)),
    })
}

/// Appends the encoding of `envelope` to `buf`:
/// `[query: u64 LE][seq: u64 LE][encoded request]`.
///
/// This is what a [`FrameKind::Request`] frame carries. The query id is
/// *also* stamped into the frame header (see [`write_frame`]) so routers
/// can classify a frame without decoding its payload; the receiver checks
/// the two agree ([`WireError::QueryMismatch`] if not).
pub fn encode_envelope(envelope: &Envelope, buf: &mut Vec<u8>) {
    put_u64(buf, envelope.query.0);
    put_u64(buf, envelope.seq);
    encode_request(&envelope.body, buf);
}

/// Decodes exactly one [`Envelope`] from `buf` (trailing bytes are an
/// error).
pub fn decode_envelope(buf: &[u8]) -> Result<Envelope, WireError> {
    let mut r = Reader::new(buf);
    let query = QueryId(r.u64()?);
    let seq = r.u64()?;
    let body = read_request(&mut r)?;
    r.finish()?;
    Ok(Envelope { query, seq, body })
}

/// Appends the encoding of `response` to `buf`.
pub fn encode_response(response: &Response, buf: &mut Vec<u8>) {
    match response {
        Response::EdgeVerification(bits) => {
            buf.push(RESP_EDGE_VERIFICATION);
            put_u32(buf, bits.len() as u32);
            buf.extend(bits.iter().map(|&b| b as u8));
        }
        Response::Adjacency(lists) => {
            buf.push(RESP_ADJACENCY);
            put_u32(buf, lists.len() as u32);
            for (v, adj) in lists {
                put_u32(buf, *v);
                put_vertices(buf, adj);
            }
        }
        Response::RegionGroupCount(n) => {
            buf.push(RESP_REGION_GROUP_COUNT);
            put_u64(buf, *n as u64);
        }
        Response::RegionGroup(group) => {
            buf.push(RESP_REGION_GROUP);
            match group {
                Some(vs) => {
                    buf.push(1);
                    put_vertices(buf, vs);
                }
                None => buf.push(0),
            }
        }
        Response::Ack => buf.push(RESP_ACK),
        Response::Unsupported => buf.push(RESP_UNSUPPORTED),
        Response::QueryDone(payload) => {
            buf.push(RESP_QUERY_DONE);
            put_u32(buf, payload.len() as u32);
            buf.extend_from_slice(payload);
        }
    }
}

/// Decodes exactly one [`Response`] from `buf` (trailing bytes are an error).
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(buf);
    let response = match r.u8()? {
        RESP_EDGE_VERIFICATION => {
            let n = r.checked_len(1)?;
            let bytes = r.take(n)?;
            Response::EdgeVerification(bytes.iter().map(|&b| b != 0).collect())
        }
        RESP_ADJACENCY => {
            let n = r.checked_len(8)?;
            let mut lists = Vec::with_capacity(n);
            for _ in 0..n {
                let v = r.u32()?;
                lists.push((v, r.vertices()?));
            }
            Response::Adjacency(lists)
        }
        RESP_REGION_GROUP_COUNT => Response::RegionGroupCount(r.u64()? as usize),
        RESP_REGION_GROUP => match r.u8()? {
            0 => Response::RegionGroup(None),
            _ => Response::RegionGroup(Some(r.vertices()?)),
        },
        RESP_ACK => Response::Ack,
        RESP_UNSUPPORTED => Response::Unsupported,
        RESP_QUERY_DONE => {
            let len = r.checked_len(1)?;
            Response::QueryDone(r.take(len)?.to_vec())
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(response)
}

// ---------------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------------

/// Writes one frame and returns the total bytes put on the wire (header +
/// payload) — the number the socket transport's traffic accounting records.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    correlation: u64,
    query: QueryId,
    payload: &[u8],
) -> io::Result<usize> {
    let body_len = payload.len() + BODY_HEADER_BYTES;
    if body_len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { declared: body_len }.into());
    }
    // One contiguous write: with TCP_NODELAY, a separate header write would
    // flush as its own segment, doubling the packet count of the
    // small-frame-dominated fetchV/verifyE traffic.
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.push(version_byte());
    frame.push(kind.to_u8());
    frame.extend_from_slice(&correlation.to_le_bytes());
    frame.extend_from_slice(&query.0.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// The bytes [`write_frame`] puts on the wire for a payload of `payload_len`
/// bytes.
pub fn frame_bytes(payload_len: usize) -> usize {
    FRAME_HEADER_BYTES + payload_len
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (the peer
/// closed between frames); end-of-stream in the middle of a frame, an
/// oversized or undersized length prefix, a version-byte mismatch and an
/// unknown kind byte are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no next frame" from "frame cut short": EOF on the very
    // first byte is a clean close, EOF after it is truncation.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let body_len = u32::from_le_bytes(len_buf) as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { declared: body_len }.into());
    }
    if body_len < BODY_HEADER_BYTES {
        return Err(WireError::FrameTooSmall { declared: body_len }.into());
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated.into()
        } else {
            e
        }
    })?;
    if body[0] != version_byte() {
        return Err(WireError::Version { got: body[0] }.into());
    }
    let kind = FrameKind::from_u8(body[1]).map_err(io::Error::from)?;
    let correlation = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
    let query = QueryId(u64::from_le_bytes(body[10..18].try_into().expect("8 bytes")));
    Ok(Some(Frame { kind, correlation, query, payload: body[BODY_HEADER_BYTES..].to_vec() }))
}

// ---------------------------------------------------------------------------
// multi-frame messages
// ---------------------------------------------------------------------------

/// Writes one logical message of `kind`, splitting payloads that do not fit
/// in a single frame into a [`FrameKind::Continue`] run (see the module
/// docs). Returns the total bytes put on the wire over all frames — the
/// number the socket transport's traffic accounting records. A message that
/// fits in one frame produces byte-for-byte the same wire output as
/// [`write_frame`].
pub fn write_message(
    w: &mut impl Write,
    kind: FrameKind,
    correlation: u64,
    query: QueryId,
    payload: &[u8],
) -> io::Result<usize> {
    write_message_with_cap(w, kind, correlation, query, payload, MAX_FRAME_BYTES)
}

/// [`write_message`] with an explicit frame cap, so tests can exercise
/// multi-frame splits without materializing 64 MiB payloads. `frame_cap`
/// bounds each frame's *body* length (body header + payload chunk) exactly
/// like [`MAX_FRAME_BYTES`] bounds production frames.
pub fn write_message_with_cap(
    w: &mut impl Write,
    kind: FrameKind,
    correlation: u64,
    query: QueryId,
    payload: &[u8],
    frame_cap: usize,
) -> io::Result<usize> {
    assert!(kind != FrameKind::Continue, "Continue frames are emitted here, never passed in");
    let chunk_cap = frame_cap
        .checked_sub(BODY_HEADER_BYTES + CONTINUE_SEQ_BYTES)
        .filter(|&c| c > 0)
        .expect("frame cap must leave room for a body header, a sequence number and data");
    if payload.len() + BODY_HEADER_BYTES <= frame_cap {
        return write_frame(w, kind, correlation, query, payload);
    }
    // All chunks except the last travel as Continue frames; the final chunk
    // rides in the frame of the real kind, which is what tells the reader
    // the run is over.
    let mut written = 0;
    let mut chunks = payload.chunks(chunk_cap).enumerate().peekable();
    while let Some((seq, chunk)) = chunks.next() {
        if chunks.peek().is_some() {
            let mut body = Vec::with_capacity(CONTINUE_SEQ_BYTES + chunk.len());
            body.extend_from_slice(&(seq as u32).to_le_bytes());
            body.extend_from_slice(chunk);
            written += write_frame(w, FrameKind::Continue, correlation, query, &body)?;
        } else {
            written += write_frame(w, kind, correlation, query, chunk)?;
        }
    }
    Ok(written)
}

/// Reads one logical message: a plain frame is returned as-is, a
/// [`FrameKind::Continue`] run is reassembled into a single [`Frame`] of
/// the terminating frame's kind. Returns `Ok(None)` on a clean end-of-stream
/// *between* messages; a stream that ends mid-run is [`WireError::Truncated`],
/// and a run that switches correlation id or query id, skips a sequence
/// number or grows past [`MAX_MESSAGE_BYTES`] is rejected with the matching
/// [`WireError`].
pub fn read_message(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let Some(first) = read_frame(r)? else { return Ok(None) };
    if first.kind != FrameKind::Continue {
        return Ok(Some(first));
    }
    let correlation = first.correlation;
    let query = first.query;
    let mut assembled = continuation_chunk(&first, correlation, 0)?.to_vec();
    let mut next_seq: u32 = 1;
    loop {
        if assembled.len() > MAX_MESSAGE_BYTES {
            return Err(WireError::MessageTooLarge { limit: MAX_MESSAGE_BYTES }.into());
        }
        let Some(frame) = read_frame(r)? else {
            // the peer closed with the run unterminated
            return Err(WireError::Truncated.into());
        };
        if frame.correlation != correlation {
            return Err(WireError::ContinuationMismatch {
                expected: correlation,
                got: frame.correlation,
            }
            .into());
        }
        if frame.query != query {
            return Err(
                WireError::QueryMismatch { expected: query.0, got: frame.query.0 }.into()
            );
        }
        if frame.kind == FrameKind::Continue {
            assembled.extend_from_slice(continuation_chunk(&frame, correlation, next_seq)?);
            next_seq = next_seq
                .checked_add(1)
                .ok_or(WireError::MessageTooLarge { limit: MAX_MESSAGE_BYTES })?;
        } else {
            assembled.extend_from_slice(&frame.payload);
            return Ok(Some(Frame { kind: frame.kind, correlation, query, payload: assembled }));
        }
    }
}

/// Validates one [`FrameKind::Continue`] frame of a run and returns its data
/// chunk (the payload behind the sequence prefix).
fn continuation_chunk(
    frame: &Frame,
    correlation: u64,
    expected_seq: u32,
) -> Result<&[u8], WireError> {
    debug_assert_eq!(frame.correlation, correlation);
    if frame.payload.len() < CONTINUE_SEQ_BYTES {
        return Err(WireError::Truncated);
    }
    let seq = u32::from_le_bytes(frame.payload[..CONTINUE_SEQ_BYTES].try_into().expect("4 bytes"));
    if seq != expected_seq {
        return Err(WireError::ContinuationOutOfOrder { expected: expected_seq, got: seq });
    }
    Ok(&frame.payload[CONTINUE_SEQ_BYTES..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) {
        let mut buf = Vec::new();
        encode_request(&request, &mut buf);
        assert_eq!(decode_request(&buf), Ok(request));
    }

    fn roundtrip_response(response: Response) {
        let mut buf = Vec::new();
        encode_response(&response, &mut buf);
        assert_eq!(decode_response(&buf), Ok(response));
    }

    fn roundtrip_envelope(envelope: Envelope) {
        let mut buf = Vec::new();
        encode_envelope(&envelope, &mut buf);
        assert_eq!(decode_envelope(&buf), Ok(envelope));
    }

    #[test]
    fn every_request_variant_round_trips() {
        roundtrip_request(Request::VerifyEdges(vec![]));
        roundtrip_request(Request::VerifyEdges(vec![(0, 1), (u32::MAX, 7)]));
        roundtrip_request(Request::FetchVertices(vec![]));
        roundtrip_request(Request::FetchVertices(vec![3, 1, 4, 1, 5]));
        roundtrip_request(Request::CheckRegionGroups);
        roundtrip_request(Request::ShareRegionGroup);
        roundtrip_request(Request::DeliverRows { tag: 0, rows: vec![] });
        roundtrip_request(Request::DeliverRows {
            tag: u32::MAX,
            rows: vec![vec![], vec![1], vec![2, 3, 4]],
        });
        roundtrip_request(Request::Query { id: 0, pattern: String::new(), budget: None });
        roundtrip_request(Request::Query {
            id: u64::MAX,
            pattern: "q5".to_string(),
            budget: Some(64 * 1024),
        });
    }

    #[test]
    fn envelopes_round_trip_with_their_scope() {
        roundtrip_envelope(Envelope::solo(Request::CheckRegionGroups));
        roundtrip_envelope(Envelope::new(
            QueryId(17),
            3,
            Request::FetchVertices(vec![1, 2, 3]),
        ));
        roundtrip_envelope(Envelope::new(
            QueryId(u64::MAX),
            u64::MAX,
            Request::Query { id: u64::MAX, pattern: "q8".into(), budget: Some(1) },
        ));
    }

    #[test]
    fn envelope_decoding_rejects_trailing_bytes() {
        let mut buf = Vec::new();
        encode_envelope(&Envelope::solo(Request::ShareRegionGroup), &mut buf);
        buf.push(0);
        assert_eq!(decode_envelope(&buf), Err(WireError::TrailingBytes { extra: 1 }));
        assert_eq!(decode_envelope(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn query_with_invalid_utf8_pattern_is_rejected() {
        let mut buf = vec![5u8]; // REQ_QUERY
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]); // not UTF-8
        buf.push(0); // no budget
        assert_eq!(decode_request(&buf), Err(WireError::BadString));
    }

    #[test]
    fn every_response_variant_round_trips() {
        roundtrip_response(Response::EdgeVerification(vec![]));
        roundtrip_response(Response::EdgeVerification(vec![true, false, true]));
        roundtrip_response(Response::Adjacency(vec![]));
        // empty adjacency lists are a legal and common payload (a vertex the
        // partition does not own)
        roundtrip_response(Response::Adjacency(vec![(9, vec![]), (2, vec![0, 5])]));
        roundtrip_response(Response::RegionGroupCount(0));
        roundtrip_response(Response::RegionGroupCount(usize::MAX));
        roundtrip_response(Response::RegionGroup(None));
        roundtrip_response(Response::RegionGroup(Some(vec![])));
        roundtrip_response(Response::RegionGroup(Some(vec![8, 8, 8])));
        roundtrip_response(Response::Ack);
        roundtrip_response(Response::Unsupported);
        roundtrip_response(Response::QueryDone(vec![]));
        roundtrip_response(Response::QueryDone(vec![0, 1, 2, 255]));
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        encode_request(&Request::FetchVertices(vec![1, 2, 3]), &mut payload);
        let n1 = write_frame(&mut wire, FrameKind::Request, 42, QueryId(7), &payload).unwrap();
        let n2 = write_frame(&mut wire, FrameKind::Shutdown, 0, QueryId::SOLO, &[]).unwrap();
        assert_eq!(n1, frame_bytes(payload.len()));
        assert_eq!(n2, frame_bytes(0));
        assert_eq!(wire.len(), n1 + n2);

        let mut cursor = wire.as_slice();
        let f1 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(f1.kind, FrameKind::Request);
        assert_eq!(f1.correlation, 42);
        assert_eq!(f1.query, QueryId(7));
        assert_eq!(decode_request(&f1.payload), Ok(Request::FetchVertices(vec![1, 2, 3])));
        let f2 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            (f2.kind, f2.correlation, f2.query, f2.payload.len()),
            (FrameKind::Shutdown, 0, QueryId::SOLO, 0)
        );
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn v1_frames_are_rejected_with_a_typed_version_error() {
        // A protocol-revision-1 frame: body = [kind u8][correlation u64]
        // [payload], no version byte. Its first body byte is the kind
        // (1..=10), which can never equal version_byte() — so the reader
        // reports a Version error, not a misparse.
        let payload = vec![0u8; 16];
        let mut wire = Vec::new();
        wire.extend_from_slice(&((payload.len() + 9) as u32).to_le_bytes());
        wire.push(2); // v1 FrameKind::Request
        wire.extend_from_slice(&42u64.to_le_bytes());
        wire.extend_from_slice(&payload);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("incompatible protocol revision"), "{err}");
    }

    #[test]
    fn version_byte_cannot_collide_with_v1_kind_bytes() {
        // every v1 kind byte (1..=10) occupied the position the version
        // byte now holds; the high-nibble mark keeps them disjoint
        for kind in 1..=10u8 {
            assert_ne!(version_byte(), kind);
        }
        assert_eq!(version_byte(), 0xA0 | WIRE_VERSION);
    }

    #[test]
    fn future_wire_versions_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Hello, 0, QueryId::SOLO, &[1, 2, 3, 4]).unwrap();
        wire[4] = VERSION_MARK | (WIRE_VERSION + 1);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("incompatible protocol revision"), "{err}");
    }

    #[test]
    fn truncated_header_is_rejected() {
        // 2 of the 4 length-prefix bytes
        let mut cursor: &[u8] = &[7, 0];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn truncated_body_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Response, 1, QueryId::SOLO, &[9, 9, 9, 9]).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = wire.as_slice();
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 32]);
        let mut cursor = wire.as_slice();
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn undersized_length_prefix_is_rejected() {
        // body length 3 cannot even hold the body header
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(&[2, 0, 0]);
        let mut cursor = wire.as_slice();
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("smaller"), "{err}");
    }

    #[test]
    fn unknown_frame_kind_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Hello, 0, QueryId::SOLO, &[1, 2, 3]).unwrap();
        wire[5] = 250; // corrupt the kind byte (offset 4 is the version byte)
        let mut cursor = wire.as_slice();
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("unknown frame kind"), "{err}");
    }

    #[test]
    fn unknown_message_tags_are_rejected() {
        assert_eq!(decode_request(&[200]), Err(WireError::UnknownTag(200)));
        assert_eq!(decode_response(&[200]), Err(WireError::UnknownTag(200)));
    }

    #[test]
    fn empty_and_truncated_messages_are_rejected() {
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
        assert_eq!(decode_response(&[]), Err(WireError::Truncated));
        // FetchVertices claiming 5 vertices but carrying 1
        let mut buf = Vec::new();
        encode_request(&Request::FetchVertices(vec![1]), &mut buf);
        buf[1..5].copy_from_slice(&5u32.to_le_bytes());
        assert_eq!(decode_request(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn lying_length_fields_cannot_over_allocate() {
        // a 9-byte message claiming 2^32-1 adjacency entries must fail fast
        let mut buf = vec![RESP_ADJACENCY];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        assert_eq!(decode_response(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::CheckRegionGroups, &mut buf);
        buf.push(0);
        assert_eq!(decode_request(&buf), Err(WireError::TrailingBytes { extra: 1 }));
        let mut buf = Vec::new();
        encode_response(&Response::Ack, &mut buf);
        buf.extend_from_slice(&[1, 2]);
        assert_eq!(decode_response(&buf), Err(WireError::TrailingBytes { extra: 2 }));
    }

    #[test]
    fn oversized_write_is_rejected() {
        let payload = vec![0u8; MAX_FRAME_BYTES - 8];
        let err =
            write_frame(&mut Vec::new(), FrameKind::Result, 0, QueryId::SOLO, &payload)
                .unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn bool_encoding_is_one_byte_per_edge() {
        let mut buf = Vec::new();
        encode_response(&Response::EdgeVerification(vec![true; 10]), &mut buf);
        assert_eq!(buf.len(), 1 + 4 + 10);
    }

    #[test]
    fn single_frame_messages_are_byte_identical_to_write_frame() {
        let mut payload = Vec::new();
        encode_request(&Request::FetchVertices(vec![1, 2, 3]), &mut payload);
        let mut as_frame = Vec::new();
        let mut as_message = Vec::new();
        let n1 = write_frame(&mut as_frame, FrameKind::Request, 9, QueryId(3), &payload).unwrap();
        let n2 =
            write_message(&mut as_message, FrameKind::Request, 9, QueryId(3), &payload).unwrap();
        assert_eq!(as_frame, as_message);
        assert_eq!(n1, n2);
    }

    #[test]
    fn oversized_messages_round_trip_through_a_continuation_run() {
        // a payload needing 3+ frames under a tiny cap (chunk budget 64-18-4=42)
        let payload: Vec<u8> = (0..=255u8).cycle().take(150).collect();
        let mut wire = Vec::new();
        let written =
            write_message_with_cap(&mut wire, FrameKind::Response, 77, QueryId(5), &payload, 64)
                .unwrap();
        assert_eq!(written, wire.len());
        // the run is visible as raw frames: Continue*, then Response
        let mut cursor = wire.as_slice();
        let kinds: Vec<FrameKind> =
            std::iter::from_fn(|| read_frame(&mut cursor).unwrap().map(|f| f.kind)).collect();
        assert_eq!(kinds.last(), Some(&FrameKind::Response));
        assert!(kinds[..kinds.len() - 1].iter().all(|&k| k == FrameKind::Continue));
        assert!(kinds.len() >= 3, "expected a multi-frame run, got {kinds:?}");
        // and reassembles into one logical frame carrying the query scope
        let mut cursor = wire.as_slice();
        let frame = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(
            (frame.kind, frame.correlation, frame.query),
            (FrameKind::Response, 77, QueryId(5))
        );
        assert_eq!(frame.payload, payload);
        assert!(read_message(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_continuation_runs_are_rejected() {
        let payload = vec![7u8; 200];
        let mut wire = Vec::new();
        write_message_with_cap(&mut wire, FrameKind::Response, 5, QueryId::SOLO, &payload, 64)
            .unwrap();
        // drop the terminating frame: clean EOF mid-run must not look like a
        // clean close
        let mut cursor = wire.as_slice();
        let first = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(first.kind, FrameKind::Continue);
        let mut one_frame = Vec::new();
        write_frame(&mut one_frame, first.kind, first.correlation, first.query, &first.payload)
            .unwrap();
        let err = read_message(&mut one_frame.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn continuation_correlation_switches_are_rejected() {
        let payload = vec![1u8; 200];
        let mut wire = Vec::new();
        write_message_with_cap(&mut wire, FrameKind::Response, 10, QueryId::SOLO, &payload, 64)
            .unwrap();
        // retag the terminating frame with a different correlation id
        let mut frames = Vec::new();
        let mut cursor = wire.as_slice();
        while let Some(f) = read_frame(&mut cursor).unwrap() {
            frames.push(f);
        }
        let mut rewired = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            let corr = if i == frames.len() - 1 { 999 } else { f.correlation };
            write_frame(&mut rewired, f.kind, corr, f.query, &f.payload).unwrap();
        }
        let err = read_message(&mut rewired.as_slice()).unwrap_err();
        assert!(err.to_string().contains("correlation 999"), "{err}");
    }

    #[test]
    fn continuation_query_switches_are_rejected() {
        let payload = vec![3u8; 200];
        let mut wire = Vec::new();
        write_message_with_cap(&mut wire, FrameKind::Response, 10, QueryId(1), &payload, 64)
            .unwrap();
        // retag the terminating frame with a different query id: an
        // interleaving bug upstream must not splice two queries' payloads
        let mut frames = Vec::new();
        let mut cursor = wire.as_slice();
        while let Some(f) = read_frame(&mut cursor).unwrap() {
            frames.push(f);
        }
        let mut rewired = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            let q = if i == frames.len() - 1 { QueryId(2) } else { f.query };
            write_frame(&mut rewired, f.kind, f.correlation, q, &f.payload).unwrap();
        }
        let err = read_message(&mut rewired.as_slice()).unwrap_err();
        assert!(err.to_string().contains("query 2"), "{err}");
    }

    #[test]
    fn out_of_order_continuation_sequences_are_rejected() {
        let payload = vec![2u8; 300];
        let mut wire = Vec::new();
        write_message_with_cap(&mut wire, FrameKind::Response, 4, QueryId::SOLO, &payload, 64)
            .unwrap();
        let mut frames = Vec::new();
        let mut cursor = wire.as_slice();
        while let Some(f) = read_frame(&mut cursor).unwrap() {
            frames.push(f);
        }
        assert!(frames.len() >= 3);
        frames.swap(0, 1); // two Continue frames out of order
        let mut rewired = Vec::new();
        for f in &frames {
            write_frame(&mut rewired, f.kind, f.correlation, f.query, &f.payload).unwrap();
        }
        let err = read_message(&mut rewired.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of order"), "{err}");
    }

    #[test]
    fn adjacency_response_above_the_frame_cap_round_trips() {
        // One adjacency list whose encoding alone exceeds MAX_FRAME_BYTES
        // (> 16 Mi neighbours at 4 bytes each): the hard limit PR 5 left in
        // place, now carried by a real continuation run.
        let neighbours: Vec<VertexId> = (0..17_000_000u32).collect();
        let response = Response::Adjacency(vec![(42, neighbours.clone())]);
        let mut payload = Vec::new();
        encode_response(&response, &mut payload);
        assert!(
            payload.len() + BODY_HEADER_BYTES > MAX_FRAME_BYTES,
            "payload must exceed one frame"
        );

        let mut wire = Vec::new();
        let written =
            write_message(&mut wire, FrameKind::Response, 31, QueryId(2), &payload).unwrap();
        assert_eq!(written, wire.len());
        assert!(written > payload.len(), "continuation headers add real wire bytes");

        let mut cursor = wire.as_slice();
        let frame = read_message(&mut cursor).unwrap().unwrap();
        assert!(read_message(&mut cursor).unwrap().is_none());
        assert_eq!(
            (frame.kind, frame.correlation, frame.query),
            (FrameKind::Response, 31, QueryId(2))
        );
        match decode_response(&frame.payload).unwrap() {
            Response::Adjacency(lists) => {
                assert_eq!(lists.len(), 1);
                assert_eq!(lists[0].0, 42);
                assert_eq!(lists[0].1, neighbours);
            }
            other => panic!("expected an adjacency response, got {other:?}"),
        }
    }
}
