//! Fault injection for the transport layer.
//!
//! [`FaultTransport`] wraps any [`Transport`] and perturbs the *response
//! path* of split-phase RPC the way a congested or badly-behaved network
//! would, without touching the requests themselves:
//!
//! * **delay** — every response is held for a configured duration before
//!   its caller sees it;
//! * **reorder** — responses complete in the *reverse* of issue order per
//!   peer: redeeming the oldest outstanding handle first forces every
//!   younger request to finish before it, the exact inversion of the
//!   deterministic scatter/harvest order the async round engine uses;
//! * **duplicate** — every response is delivered twice; the copy targets an
//!   already-occupied slot and must be discarded, mirroring how the socket
//!   transport's correlation map drops a duplicate correlation id;
//! * **drop / reset / stall / corrupt** — the chaos faults: every Nth
//!   response (deterministically, by ticket number) is withheld entirely
//!   ([`TransportError::Timeout`]), replaced by a connection reset
//!   ([`TransportError::Reset`]), held an extra stall duration, or replaced
//!   by an undecodable-frame error ([`TransportError::Decode`]). A retried
//!   request draws a *fresh* ticket, so the retry layer above (which
//!   re-issues idempotent reads with backoff) heals every one of these —
//!   the chaos tests pin that counts stay bit-identical while the fault
//!   counters prove the faults really fired.
//!
//! Faults are configured per peer machine ([`FaultPlan`]), so a test can
//! make exactly one machine's link adversarial; alternatively
//! [`FaultTransport::with_shared_pen`] funnels every peer through one pen so
//! the inversion crosses peer boundaries — the shape that actually stresses
//! a scatter issuing one chunk per owner. [`FaultStats`] counts what
//! actually happened, which lets tests assert the fault really fired rather
//! than silently passing on a path that never reordered anything.
//!
//! The harness deliberately perturbs *completion order and timing only* —
//! each handle still resolves to its own request's response, as the
//! [`Transport`] contract requires. That is the invariant the engine's
//! harvest code depends on, and the fault tests prove embedding counts are
//! bit-identical under any completion order the plan can produce.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rads_graph::VertexId;
use rads_partition::MachineId;

use crate::error::TransportError;
use crate::message::{Envelope, Response};
use crate::network::TrafficSnapshot;
use crate::transport::{PendingResponse, Transport};

/// What to do to responses arriving from one peer.
///
/// The `*_every` fields select tickets deterministically: a fault with
/// period `n` fires on every ticket where `(ticket + 1) % n == 0` (so
/// `drop_every: 1` drops everything, `drop_every: 3` drops tickets 2, 5,
/// 8, …). `0` disables the fault. Because a retried request draws a fresh
/// ticket, periods ≥ 2 are always survivable by one retry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Hold every response this long before releasing it to its caller.
    pub delay: Duration,
    /// Complete outstanding requests newest-first instead of oldest-first.
    pub reorder: bool,
    /// Deliver every response twice; the duplicate must be discarded.
    pub duplicate: bool,
    /// Drop every nth response: the caller sees [`TransportError::Timeout`]
    /// after its per-RPC deadline, as if the reply vanished on the wire.
    pub drop_every: u64,
    /// Reset the connection instead of delivering every nth response: the
    /// caller sees [`TransportError::Reset`].
    pub reset_every: u64,
    /// Replace every nth response with an undecodable frame: the caller
    /// sees [`TransportError::Decode`].
    pub corrupt_every: u64,
    /// Hold every nth response an extra [`FaultPlan::stall`] before
    /// releasing it (on top of `delay`, which applies to all).
    pub stall_every: u64,
    /// How long a stalled response is held; only meaningful with
    /// `stall_every > 0`.
    pub stall: Duration,
}

impl FaultPlan {
    /// A plan that perturbs nothing (the default).
    pub fn benign() -> FaultPlan {
        FaultPlan::default()
    }

    /// The adversarial everything-at-once plan (completion-order faults
    /// only; the chaos faults below stay off so no retry layer is needed).
    pub fn hostile(delay: Duration) -> FaultPlan {
        FaultPlan { delay, reorder: true, duplicate: true, ..FaultPlan::default() }
    }

    /// A chaos plan erroring every nth response: drops, resets and
    /// corruptions at periods `every`, `every + 1`, `every + 2`. When
    /// periods collide on one ticket, exactly one fault fires (drop beats
    /// reset beats corrupt — `take`'s check order), so a period that
    /// divides another is shadowed on the shared tickets (with `every = 2`
    /// the corrupt period 4 never fires at all; use an odd `every` to see
    /// all three). Survivable by the retry layer for any `every >= 2`.
    pub fn chaos(every: u64) -> FaultPlan {
        assert!(every >= 2, "chaos period 1 would fault every retry too");
        FaultPlan {
            drop_every: every,
            reset_every: every + 1,
            corrupt_every: every + 2,
            ..FaultPlan::default()
        }
    }

    fn fires(every: u64, ticket: u64) -> bool {
        every > 0 && (ticket + 1).is_multiple_of(every)
    }
}

/// Counters of faults that actually fired.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Responses released only after an injected delay.
    pub delayed: AtomicU64,
    /// Responses completed for a different ticket than the caller was
    /// harvesting (i.e. the inversion really changed the completion order).
    pub reordered: AtomicU64,
    /// Duplicate response copies that were discarded.
    pub duplicates_discarded: AtomicU64,
    /// Responses withheld entirely (surfaced as [`TransportError::Timeout`]).
    pub dropped: AtomicU64,
    /// Responses replaced by a connection reset ([`TransportError::Reset`]).
    pub resets: AtomicU64,
    /// Responses replaced by garbage ([`TransportError::Decode`]).
    pub corrupted: AtomicU64,
    /// Responses held an extra stall duration before delivery.
    pub stalled: AtomicU64,
}

impl FaultStats {
    /// Snapshot as plain numbers `(delayed, reordered, duplicates_discarded)`.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.delayed.load(Ordering::Relaxed),
            self.reordered.load(Ordering::Relaxed),
            self.duplicates_discarded.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the chaos counters `(dropped, resets, corrupted, stalled)`.
    pub fn chaos_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.dropped.load(Ordering::Relaxed),
            self.resets.load(Ordering::Relaxed),
            self.corrupted.load(Ordering::Relaxed),
            self.stalled.load(Ordering::Relaxed),
        )
    }
}

/// Per-peer holding pen: outstanding inner handles (issue order) and
/// responses already forced to completion, waiting for their caller.
#[derive(Default)]
struct Pen {
    inflight: VecDeque<(u64, PendingResponse)>,
    arrived: HashMap<u64, Result<Response, TransportError>>,
    next_ticket: u64,
}

struct FaultShared {
    machine: MachineId,
    plans: Vec<FaultPlan>,
    /// One pen per peer, or a single pen for all peers in shared-pen mode
    /// (see [`FaultTransport::with_shared_pen`]).
    pens: Vec<(Mutex<Pen>, Condvar)>,
    stats: Arc<FaultStats>,
}

impl FaultShared {
    fn pen_index(&self, to: MachineId) -> usize {
        if self.pens.len() == 1 {
            0
        } else {
            to
        }
    }
}

/// A [`Transport`] wrapper injecting the faults of a [`FaultPlan`] into the
/// response path; see the [module docs](self).
pub struct FaultTransport {
    inner: Arc<dyn Transport>,
    shared: Arc<FaultShared>,
}

impl FaultTransport {
    /// Wraps `inner`, applying `plan` to responses from every peer.
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> FaultTransport {
        let machines = inner.machines();
        Self::with_plans(inner, vec![plan; machines])
    }

    /// Wraps `inner` with one plan per peer machine (`plans.len()` must be
    /// the cluster size; the self entry is never consulted).
    pub fn with_plans(inner: Arc<dyn Transport>, plans: Vec<FaultPlan>) -> FaultTransport {
        assert_eq!(plans.len(), inner.machines(), "one fault plan per machine");
        let pens = plans.iter().map(|_| (Mutex::new(Pen::default()), Condvar::new())).collect();
        let machine = inner.machine();
        FaultTransport {
            inner,
            shared: Arc::new(FaultShared {
                machine,
                plans,
                pens,
                stats: Arc::new(FaultStats::default()),
            }),
        }
    }

    /// Wraps `inner`, applying `plan` through a single holding pen shared by
    /// *all* peers, so completion-order inversion crosses peer boundaries: a
    /// scatter of one chunk per owner — the async engine's common shape,
    /// where each per-peer pen would only ever hold one request — still
    /// completes youngest-first globally. This is the strongest reordering
    /// the harvest can face: responses from different machines finishing in
    /// the exact reverse of issue order.
    pub fn with_shared_pen(inner: Arc<dyn Transport>, plan: FaultPlan) -> FaultTransport {
        let machines = inner.machines();
        let machine = inner.machine();
        FaultTransport {
            inner,
            shared: Arc::new(FaultShared {
                machine,
                plans: vec![plan; machines],
                pens: vec![(Mutex::new(Pen::default()), Condvar::new())],
                stats: Arc::new(FaultStats::default()),
            }),
        }
    }

    /// The fault counters (shared with every handle this transport issued).
    pub fn stats(&self) -> Arc<FaultStats> {
        self.shared.stats.clone()
    }
}

/// Blocks until the response for `ticket` is available, forcing outstanding
/// requests to completion in the plan's order along the way, then applies
/// the plan's chaos faults to the delivery (drop beats reset beats corrupt
/// when periods collide on one ticket).
fn take(shared: &FaultShared, to: MachineId, ticket: u64) -> Result<Response, TransportError> {
    let plan = shared.plans[to];
    let (pen_lock, condvar) = &shared.pens[shared.pen_index(to)];
    let mut pen = pen_lock.lock().expect("fault pen lock");
    loop {
        if let Some(response) = pen.arrived.remove(&ticket) {
            drop(pen);
            if plan.delay > Duration::ZERO {
                shared.stats.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(plan.delay);
            }
            if FaultPlan::fires(plan.stall_every, ticket) && plan.stall > Duration::ZERO {
                shared.stats.stalled.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(plan.stall);
            }
            if FaultPlan::fires(plan.drop_every, ticket) {
                shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
                return Err(TransportError::Timeout {
                    machine: shared.machine,
                    what: format!("response for injected-drop ticket {ticket} from machine {to}"),
                    waited_ms: plan.delay.as_millis() as u64,
                });
            }
            if FaultPlan::fires(plan.reset_every, ticket) {
                shared.stats.resets.fetch_add(1, Ordering::Relaxed);
                return Err(TransportError::Reset {
                    machine: shared.machine,
                    to,
                    detail: format!("injected reset on ticket {ticket}"),
                });
            }
            if FaultPlan::fires(plan.corrupt_every, ticket) {
                shared.stats.corrupted.fetch_add(1, Ordering::Relaxed);
                return Err(TransportError::Decode {
                    machine: shared.machine,
                    to,
                    detail: format!("injected frame corruption on ticket {ticket}"),
                });
            }
            return response;
        }
        // Not arrived yet: force one outstanding request to completion —
        // the youngest under reorder, the oldest otherwise.
        let next = if plan.reorder { pen.inflight.pop_back() } else { pen.inflight.pop_front() };
        match next {
            Some((completed, pending)) => {
                drop(pen); // wait off-lock so siblings can make progress
                let response = pending.wait();
                if completed != ticket {
                    shared.stats.reordered.fetch_add(1, Ordering::Relaxed);
                }
                pen = pen_lock.lock().expect("fault pen lock");
                if plan.duplicate {
                    // the second copy always finds the slot occupied — the
                    // discard is what the dedup layer must get right
                    let first = pen.arrived.insert(completed, response.clone());
                    debug_assert!(first.is_none(), "ticket {completed} completed twice");
                    if pen.arrived.insert(completed, response).is_some() {
                        shared.stats.duplicates_discarded.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    pen.arrived.insert(completed, response);
                }
                condvar.notify_all();
            }
            None => {
                // another thread popped our handle and is waiting on it
                pen = condvar.wait(pen).expect("fault pen wait");
            }
        }
    }
}

impl Transport for FaultTransport {
    fn machine(&self) -> MachineId {
        self.inner.machine()
    }

    fn machines(&self) -> usize {
        self.inner.machines()
    }

    fn request(&self, to: MachineId, envelope: Envelope) -> Result<Response, TransportError> {
        self.request_async(to, envelope).wait()
    }

    fn request_async(&self, to: MachineId, envelope: Envelope) -> PendingResponse {
        let query = envelope.query;
        let inner_pending = self.inner.request_async(to, envelope);
        let correlation = inner_pending.correlation();
        let ticket = {
            let index = self.shared.pen_index(to);
            let mut pen = self.shared.pens[index].0.lock().expect("fault pen lock");
            let ticket = pen.next_ticket;
            pen.next_ticket += 1;
            pen.inflight.push_back((ticket, inner_pending));
            ticket
        };
        let shared = self.shared.clone();
        PendingResponse::deferred(to, query, correlation, move || take(&shared, to, ticket))
    }

    fn barrier(&self) -> Result<(), TransportError> {
        self.inner.barrier()
    }

    fn send_rows(
        &self,
        to: MachineId,
        tag: u32,
        rows: Vec<Vec<VertexId>>,
    ) -> Result<(), TransportError> {
        self.inner.send_rows(to, tag, rows)
    }

    fn take_rows(&self, tag: u32) -> Vec<Vec<VertexId>> {
        self.inner.take_rows(tag)
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.inner.traffic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;

    /// A transport whose daemon answers FetchVertices with the vertex ids
    /// echoed back, recording the order in which requests *complete*.
    struct EchoTransport {
        completions: Arc<Mutex<Vec<u64>>>,
    }

    impl Transport for EchoTransport {
        fn machine(&self) -> MachineId {
            0
        }
        fn machines(&self) -> usize {
            3
        }
        fn request(&self, to: MachineId, envelope: Envelope) -> Result<Response, TransportError> {
            self.request_async(to, envelope).wait()
        }
        fn request_async(&self, _to: MachineId, envelope: Envelope) -> PendingResponse {
            let query = envelope.query;
            let Request::FetchVertices(vs) = envelope.body else { panic!("echo only fetches") };
            let completions = self.completions.clone();
            PendingResponse::deferred(1, query, Some(vs[0] as u64), move || {
                completions.lock().unwrap().push(vs[0] as u64);
                Ok(Response::Adjacency(vec![(vs[0], vec![])]))
            })
        }
        fn barrier(&self) -> Result<(), TransportError> {
            Ok(())
        }
        fn send_rows(
            &self,
            _to: MachineId,
            _tag: u32,
            _rows: Vec<Vec<VertexId>>,
        ) -> Result<(), TransportError> {
            Ok(())
        }
        fn take_rows(&self, _tag: u32) -> Vec<Vec<VertexId>> {
            Vec::new()
        }
        fn traffic(&self) -> TrafficSnapshot {
            TrafficSnapshot::default()
        }
    }

    fn scatter_harvest(plan: FaultPlan) -> (Vec<u64>, Vec<u64>, Arc<FaultStats>) {
        let completions = Arc::new(Mutex::new(Vec::new()));
        let echo = Arc::new(EchoTransport { completions: completions.clone() });
        let faulty = FaultTransport::new(echo, plan);
        let stats = faulty.stats();
        let pendings: Vec<PendingResponse> = (0..5u32)
            .map(|i| faulty.request_async(1, Envelope::solo(Request::FetchVertices(vec![i]))))
            .collect();
        // harvest in issue order, as the engine does
        let harvested: Vec<u64> = pendings
            .into_iter()
            .map(|p| match p.wait().expect("benign completion-order faults never error") {
                Response::Adjacency(lists) => lists[0].0 as u64,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let completions = completions.lock().unwrap().clone();
        (harvested, completions, stats)
    }

    #[test]
    fn benign_plan_completes_in_issue_order() {
        let (harvested, completions, stats) = scatter_harvest(FaultPlan::benign());
        assert_eq!(harvested, vec![0, 1, 2, 3, 4], "every caller got its own response");
        assert_eq!(completions, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.counts(), (0, 0, 0));
    }

    #[test]
    fn reorder_inverts_completion_but_not_matching() {
        let plan = FaultPlan { reorder: true, ..FaultPlan::default() };
        let (harvested, completions, stats) = scatter_harvest(plan);
        // matching is untouched: handle i still resolves to response i
        assert_eq!(harvested, vec![0, 1, 2, 3, 4]);
        // but the wire completed them youngest-first
        assert_eq!(completions, vec![4, 3, 2, 1, 0]);
        let (_, reordered, _) = stats.counts();
        assert_eq!(reordered, 4, "all but the caller's own completion were inversions");
    }

    #[test]
    fn shared_pen_inverts_across_peer_boundaries() {
        // One request per peer — each per-peer pen would hold a single
        // entry and never invert; the shared pen still reverses globally.
        let completions = Arc::new(Mutex::new(Vec::new()));
        let echo = Arc::new(EchoTransport { completions: completions.clone() });
        let plan = FaultPlan { reorder: true, ..FaultPlan::default() };
        let faulty = FaultTransport::with_shared_pen(echo, plan);
        let stats = faulty.stats();
        let pendings: Vec<PendingResponse> = (0..2u32)
            .map(|i| {
                faulty.request_async(1 + i as usize % 2, Envelope::solo(Request::FetchVertices(vec![i])))
            })
            .collect();
        let harvested: Vec<u64> = pendings
            .into_iter()
            .map(|p| match p.wait().expect("reorder never errors") {
                Response::Adjacency(lists) => lists[0].0 as u64,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(harvested, vec![0, 1], "matching survives cross-peer inversion");
        assert_eq!(*completions.lock().unwrap(), vec![1, 0], "completed youngest-first");
        assert_eq!(stats.counts().1, 1);
    }

    #[test]
    fn duplicates_are_discarded_and_counted() {
        let plan = FaultPlan { duplicate: true, ..FaultPlan::default() };
        let (harvested, _, stats) = scatter_harvest(plan);
        assert_eq!(harvested, vec![0, 1, 2, 3, 4]);
        let (_, _, discarded) = stats.counts();
        assert_eq!(discarded, 5, "every response delivered one discarded copy");
    }

    #[test]
    fn delays_are_applied_and_counted() {
        let plan = FaultPlan { delay: Duration::from_millis(2), ..FaultPlan::default() };
        let started = std::time::Instant::now();
        let (harvested, _, stats) = scatter_harvest(plan);
        assert_eq!(harvested, vec![0, 1, 2, 3, 4]);
        assert!(started.elapsed() >= Duration::from_millis(10), "5 responses x 2ms");
        let (delayed, _, _) = stats.counts();
        assert_eq!(delayed, 5);
    }

    /// Harvests 6 tickets under `plan`, returning each outcome (`Ok` vertex
    /// or the error) plus the stats.
    fn chaos_harvest(plan: FaultPlan) -> (Vec<Result<u64, TransportError>>, Arc<FaultStats>) {
        let completions = Arc::new(Mutex::new(Vec::new()));
        let echo = Arc::new(EchoTransport { completions });
        let faulty = FaultTransport::new(echo, plan);
        let stats = faulty.stats();
        let outcomes: Vec<Result<u64, TransportError>> = (0..6u32)
            .map(|i| faulty.request_async(1, Envelope::solo(Request::FetchVertices(vec![i]))))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|p| {
                p.wait().map(|r| match r {
                    Response::Adjacency(lists) => lists[0].0 as u64,
                    other => panic!("unexpected {other:?}"),
                })
            })
            .collect();
        (outcomes, stats)
    }

    #[test]
    fn drops_surface_as_timeouts_on_the_right_tickets() {
        let plan = FaultPlan { drop_every: 3, ..FaultPlan::default() };
        let (outcomes, stats) = chaos_harvest(plan);
        for (ticket, outcome) in outcomes.iter().enumerate() {
            if (ticket + 1) % 3 == 0 {
                assert!(
                    matches!(outcome, Err(TransportError::Timeout { .. })),
                    "ticket {ticket}: {outcome:?}"
                );
            } else {
                assert_eq!(*outcome, Ok(ticket as u64));
            }
        }
        assert_eq!(stats.chaos_counts(), (2, 0, 0, 0), "tickets 2 and 5 dropped");
    }

    #[test]
    fn resets_and_corruptions_are_typed_and_transient() {
        let plan = FaultPlan { reset_every: 2, corrupt_every: 5, ..FaultPlan::default() };
        let (outcomes, stats) = chaos_harvest(plan);
        // reset fires on tickets 1, 3, 5; corrupt would fire on 4 and 9.
        assert!(matches!(&outcomes[1], Err(TransportError::Reset { to: 1, .. })));
        assert!(matches!(&outcomes[3], Err(TransportError::Reset { .. })));
        assert!(matches!(&outcomes[5], Err(TransportError::Reset { .. })));
        assert!(matches!(&outcomes[4], Err(TransportError::Decode { to: 1, .. })));
        for err in outcomes.iter().filter_map(|o| o.as_ref().err()) {
            assert!(err.is_transient(), "{err} must be retryable");
        }
        assert_eq!(outcomes[0], Ok(0));
        assert_eq!(outcomes[2], Ok(2));
        assert_eq!(stats.chaos_counts(), (0, 3, 1, 0));
    }

    #[test]
    fn stalls_hold_selected_responses_and_count() {
        let plan = FaultPlan {
            stall_every: 2,
            stall: Duration::from_millis(5),
            ..FaultPlan::default()
        };
        let started = std::time::Instant::now();
        let (outcomes, stats) = chaos_harvest(plan);
        assert!(outcomes.iter().all(|o| o.is_ok()), "stalls delay, never error");
        assert!(started.elapsed() >= Duration::from_millis(15), "3 stalls x 5ms");
        assert_eq!(stats.chaos_counts(), (0, 0, 0, 3));
    }

    #[test]
    fn chaos_plan_fires_at_most_one_fault_per_ticket() {
        // Periods 3/4/5: tickets 11 ((11+1) divisible by 3 and 4) collide;
        // the check order must pick exactly one fault, not cascade.
        let plan = FaultPlan::chaos(3);
        let completions = Arc::new(Mutex::new(Vec::new()));
        let echo = Arc::new(EchoTransport { completions });
        let faulty = FaultTransport::new(echo, plan);
        let stats = faulty.stats();
        let outcomes: Vec<_> = (0..12u32)
            .map(|i| faulty.request_async(1, Envelope::solo(Request::FetchVertices(vec![i]))))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|p| p.wait())
            .collect();
        let faulted = outcomes.iter().filter(|o| o.is_err()).count();
        let (dropped, resets, corrupted, _) = stats.chaos_counts();
        assert_eq!(dropped + resets + corrupted, faulted as u64, "one counter tick per error");
        assert!(dropped >= 1 && resets >= 1 && corrupted >= 1, "{:?}", stats.chaos_counts());
    }
}
