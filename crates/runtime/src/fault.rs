//! Fault injection for the transport layer.
//!
//! [`FaultTransport`] wraps any [`Transport`] and perturbs the *response
//! path* of split-phase RPC the way a congested or badly-behaved network
//! would, without touching the requests themselves:
//!
//! * **delay** — every response is held for a configured duration before
//!   its caller sees it;
//! * **reorder** — responses complete in the *reverse* of issue order per
//!   peer: redeeming the oldest outstanding handle first forces every
//!   younger request to finish before it, the exact inversion of the
//!   deterministic scatter/harvest order the async round engine uses;
//! * **duplicate** — every response is delivered twice; the copy targets an
//!   already-occupied slot and must be discarded, mirroring how the socket
//!   transport's correlation map drops a duplicate correlation id.
//!
//! Faults are configured per peer machine ([`FaultPlan`]), so a test can
//! make exactly one machine's link adversarial; alternatively
//! [`FaultTransport::with_shared_pen`] funnels every peer through one pen so
//! the inversion crosses peer boundaries — the shape that actually stresses
//! a scatter issuing one chunk per owner. [`FaultStats`] counts what
//! actually happened, which lets tests assert the fault really fired rather
//! than silently passing on a path that never reordered anything.
//!
//! The harness deliberately perturbs *completion order and timing only* —
//! each handle still resolves to its own request's response, as the
//! [`Transport`] contract requires. That is the invariant the engine's
//! harvest code depends on, and the fault tests prove embedding counts are
//! bit-identical under any completion order the plan can produce.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rads_graph::VertexId;
use rads_partition::MachineId;

use crate::message::{Request, Response};
use crate::network::TrafficSnapshot;
use crate::transport::{PendingResponse, Transport};

/// What to do to responses arriving from one peer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Hold every response this long before releasing it to its caller.
    pub delay: Duration,
    /// Complete outstanding requests newest-first instead of oldest-first.
    pub reorder: bool,
    /// Deliver every response twice; the duplicate must be discarded.
    pub duplicate: bool,
}

impl FaultPlan {
    /// A plan that perturbs nothing (the default).
    pub fn benign() -> FaultPlan {
        FaultPlan::default()
    }

    /// The adversarial everything-at-once plan.
    pub fn hostile(delay: Duration) -> FaultPlan {
        FaultPlan { delay, reorder: true, duplicate: true }
    }
}

/// Counters of faults that actually fired.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Responses released only after an injected delay.
    pub delayed: AtomicU64,
    /// Responses completed for a different ticket than the caller was
    /// harvesting (i.e. the inversion really changed the completion order).
    pub reordered: AtomicU64,
    /// Duplicate response copies that were discarded.
    pub duplicates_discarded: AtomicU64,
}

impl FaultStats {
    /// Snapshot as plain numbers `(delayed, reordered, duplicates_discarded)`.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.delayed.load(Ordering::Relaxed),
            self.reordered.load(Ordering::Relaxed),
            self.duplicates_discarded.load(Ordering::Relaxed),
        )
    }
}

/// Per-peer holding pen: outstanding inner handles (issue order) and
/// responses already forced to completion, waiting for their caller.
#[derive(Default)]
struct Pen {
    inflight: VecDeque<(u64, PendingResponse)>,
    arrived: HashMap<u64, Response>,
    next_ticket: u64,
}

struct FaultShared {
    plans: Vec<FaultPlan>,
    /// One pen per peer, or a single pen for all peers in shared-pen mode
    /// (see [`FaultTransport::with_shared_pen`]).
    pens: Vec<(Mutex<Pen>, Condvar)>,
    stats: Arc<FaultStats>,
}

impl FaultShared {
    fn pen_index(&self, to: MachineId) -> usize {
        if self.pens.len() == 1 {
            0
        } else {
            to
        }
    }
}

/// A [`Transport`] wrapper injecting the faults of a [`FaultPlan`] into the
/// response path; see the [module docs](self).
pub struct FaultTransport {
    inner: Arc<dyn Transport>,
    shared: Arc<FaultShared>,
}

impl FaultTransport {
    /// Wraps `inner`, applying `plan` to responses from every peer.
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> FaultTransport {
        let machines = inner.machines();
        Self::with_plans(inner, vec![plan; machines])
    }

    /// Wraps `inner` with one plan per peer machine (`plans.len()` must be
    /// the cluster size; the self entry is never consulted).
    pub fn with_plans(inner: Arc<dyn Transport>, plans: Vec<FaultPlan>) -> FaultTransport {
        assert_eq!(plans.len(), inner.machines(), "one fault plan per machine");
        let pens = plans.iter().map(|_| (Mutex::new(Pen::default()), Condvar::new())).collect();
        FaultTransport {
            inner,
            shared: Arc::new(FaultShared { plans, pens, stats: Arc::new(FaultStats::default()) }),
        }
    }

    /// Wraps `inner`, applying `plan` through a single holding pen shared by
    /// *all* peers, so completion-order inversion crosses peer boundaries: a
    /// scatter of one chunk per owner — the async engine's common shape,
    /// where each per-peer pen would only ever hold one request — still
    /// completes youngest-first globally. This is the strongest reordering
    /// the harvest can face: responses from different machines finishing in
    /// the exact reverse of issue order.
    pub fn with_shared_pen(inner: Arc<dyn Transport>, plan: FaultPlan) -> FaultTransport {
        let machines = inner.machines();
        FaultTransport {
            inner,
            shared: Arc::new(FaultShared {
                plans: vec![plan; machines],
                pens: vec![(Mutex::new(Pen::default()), Condvar::new())],
                stats: Arc::new(FaultStats::default()),
            }),
        }
    }

    /// The fault counters (shared with every handle this transport issued).
    pub fn stats(&self) -> Arc<FaultStats> {
        self.shared.stats.clone()
    }
}

/// Blocks until the response for `ticket` is available, forcing outstanding
/// requests to completion in the plan's order along the way.
fn take(shared: &FaultShared, to: MachineId, ticket: u64) -> Response {
    let plan = shared.plans[to];
    let (pen_lock, condvar) = &shared.pens[shared.pen_index(to)];
    let mut pen = pen_lock.lock().expect("fault pen lock");
    loop {
        if let Some(response) = pen.arrived.remove(&ticket) {
            drop(pen);
            if plan.delay > Duration::ZERO {
                shared.stats.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(plan.delay);
            }
            return response;
        }
        // Not arrived yet: force one outstanding request to completion —
        // the youngest under reorder, the oldest otherwise.
        let next = if plan.reorder { pen.inflight.pop_back() } else { pen.inflight.pop_front() };
        match next {
            Some((completed, pending)) => {
                drop(pen); // wait off-lock so siblings can make progress
                let response = pending.wait();
                if completed != ticket {
                    shared.stats.reordered.fetch_add(1, Ordering::Relaxed);
                }
                pen = pen_lock.lock().expect("fault pen lock");
                if plan.duplicate {
                    // the second copy always finds the slot occupied — the
                    // discard is what the dedup layer must get right
                    let first = pen.arrived.insert(completed, response.clone());
                    debug_assert!(first.is_none(), "ticket {completed} completed twice");
                    if pen.arrived.insert(completed, response).is_some() {
                        shared.stats.duplicates_discarded.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    pen.arrived.insert(completed, response);
                }
                condvar.notify_all();
            }
            None => {
                // another thread popped our handle and is waiting on it
                pen = condvar.wait(pen).expect("fault pen wait");
            }
        }
    }
}

impl Transport for FaultTransport {
    fn machine(&self) -> MachineId {
        self.inner.machine()
    }

    fn machines(&self) -> usize {
        self.inner.machines()
    }

    fn request(&self, to: MachineId, request: Request) -> Response {
        self.request_async(to, request).wait()
    }

    fn request_async(&self, to: MachineId, request: Request) -> PendingResponse {
        let inner_pending = self.inner.request_async(to, request);
        let correlation = inner_pending.correlation();
        let ticket = {
            let index = self.shared.pen_index(to);
            let mut pen = self.shared.pens[index].0.lock().expect("fault pen lock");
            let ticket = pen.next_ticket;
            pen.next_ticket += 1;
            pen.inflight.push_back((ticket, inner_pending));
            ticket
        };
        let shared = self.shared.clone();
        PendingResponse::deferred(to, correlation, move || take(&shared, to, ticket))
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn send_rows(&self, to: MachineId, tag: u32, rows: Vec<Vec<VertexId>>) {
        self.inner.send_rows(to, tag, rows);
    }

    fn take_rows(&self, tag: u32) -> Vec<Vec<VertexId>> {
        self.inner.take_rows(tag)
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.inner.traffic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport whose daemon answers FetchVertices with the vertex ids
    /// echoed back, recording the order in which requests *complete*.
    struct EchoTransport {
        completions: Arc<Mutex<Vec<u64>>>,
    }

    impl Transport for EchoTransport {
        fn machine(&self) -> MachineId {
            0
        }
        fn machines(&self) -> usize {
            3
        }
        fn request(&self, to: MachineId, request: Request) -> Response {
            self.request_async(to, request).wait()
        }
        fn request_async(&self, _to: MachineId, request: Request) -> PendingResponse {
            let Request::FetchVertices(vs) = request else { panic!("echo only fetches") };
            let completions = self.completions.clone();
            PendingResponse::deferred(1, Some(vs[0] as u64), move || {
                completions.lock().unwrap().push(vs[0] as u64);
                Response::Adjacency(vec![(vs[0], vec![])])
            })
        }
        fn barrier(&self) {}
        fn send_rows(&self, _to: MachineId, _tag: u32, _rows: Vec<Vec<VertexId>>) {}
        fn take_rows(&self, _tag: u32) -> Vec<Vec<VertexId>> {
            Vec::new()
        }
        fn traffic(&self) -> TrafficSnapshot {
            TrafficSnapshot::default()
        }
    }

    fn scatter_harvest(plan: FaultPlan) -> (Vec<u64>, Vec<u64>, Arc<FaultStats>) {
        let completions = Arc::new(Mutex::new(Vec::new()));
        let echo = Arc::new(EchoTransport { completions: completions.clone() });
        let faulty = FaultTransport::new(echo, plan);
        let stats = faulty.stats();
        let pendings: Vec<PendingResponse> = (0..5u32)
            .map(|i| faulty.request_async(1, Request::FetchVertices(vec![i])))
            .collect();
        // harvest in issue order, as the engine does
        let harvested: Vec<u64> = pendings
            .into_iter()
            .map(|p| match p.wait() {
                Response::Adjacency(lists) => lists[0].0 as u64,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let completions = completions.lock().unwrap().clone();
        (harvested, completions, stats)
    }

    #[test]
    fn benign_plan_completes_in_issue_order() {
        let (harvested, completions, stats) = scatter_harvest(FaultPlan::benign());
        assert_eq!(harvested, vec![0, 1, 2, 3, 4], "every caller got its own response");
        assert_eq!(completions, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.counts(), (0, 0, 0));
    }

    #[test]
    fn reorder_inverts_completion_but_not_matching() {
        let plan = FaultPlan { reorder: true, ..FaultPlan::default() };
        let (harvested, completions, stats) = scatter_harvest(plan);
        // matching is untouched: handle i still resolves to response i
        assert_eq!(harvested, vec![0, 1, 2, 3, 4]);
        // but the wire completed them youngest-first
        assert_eq!(completions, vec![4, 3, 2, 1, 0]);
        let (_, reordered, _) = stats.counts();
        assert_eq!(reordered, 4, "all but the caller's own completion were inversions");
    }

    #[test]
    fn shared_pen_inverts_across_peer_boundaries() {
        // One request per peer — each per-peer pen would hold a single
        // entry and never invert; the shared pen still reverses globally.
        let completions = Arc::new(Mutex::new(Vec::new()));
        let echo = Arc::new(EchoTransport { completions: completions.clone() });
        let plan = FaultPlan { reorder: true, ..FaultPlan::default() };
        let faulty = FaultTransport::with_shared_pen(echo, plan);
        let stats = faulty.stats();
        let pendings: Vec<PendingResponse> = (0..2u32)
            .map(|i| faulty.request_async(1 + i as usize % 2, Request::FetchVertices(vec![i])))
            .collect();
        let harvested: Vec<u64> = pendings
            .into_iter()
            .map(|p| match p.wait() {
                Response::Adjacency(lists) => lists[0].0 as u64,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(harvested, vec![0, 1], "matching survives cross-peer inversion");
        assert_eq!(*completions.lock().unwrap(), vec![1, 0], "completed youngest-first");
        assert_eq!(stats.counts().1, 1);
    }

    #[test]
    fn duplicates_are_discarded_and_counted() {
        let plan = FaultPlan { duplicate: true, ..FaultPlan::default() };
        let (harvested, _, stats) = scatter_harvest(plan);
        assert_eq!(harvested, vec![0, 1, 2, 3, 4]);
        let (_, _, discarded) = stats.counts();
        assert_eq!(discarded, 5, "every response delivered one discarded copy");
    }

    #[test]
    fn delays_are_applied_and_counted() {
        let plan = FaultPlan { delay: Duration::from_millis(2), ..FaultPlan::default() };
        let started = std::time::Instant::now();
        let (harvested, _, stats) = scatter_harvest(plan);
        assert_eq!(harvested, vec![0, 1, 2, 3, 4]);
        assert!(started.elapsed() >= Duration::from_millis(10), "5 responses x 2ms");
        let (delayed, _, _) = stats.counts();
        assert_eq!(delayed, 5);
    }
}
