//! All-to-all row exchange for synchronous (shuffle-based) systems.
//!
//! TwinTwig, SEED and PSgL redistribute their intermediate results between
//! rounds: every machine groups its partial embeddings by a join/target key,
//! sends each group to the responsible machine, and a synchronization barrier
//! separates the send phase from the consume phase. [`RowExchange`] provides
//! exactly that: `send` appends rows to the target machine's inbox (charging
//! the network accounting), `take` drains the rows addressed to a machine
//! after the barrier.

use parking_lot::Mutex;

use rads_graph::VertexId;
use rads_partition::MachineId;

use crate::message::{Envelope, Request};
use crate::network::NetworkStats;

/// A tagged batch of rows in transit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Batch {
    tag: u32,
    rows: Vec<Vec<VertexId>>,
}

/// Mailboxes for the all-to-all exchange of intermediate-result rows.
#[derive(Debug)]
pub struct RowExchange {
    inboxes: Vec<Mutex<Vec<Batch>>>,
}

impl RowExchange {
    /// Creates an exchange for `machines` machines.
    pub fn new(machines: usize) -> Self {
        RowExchange { inboxes: (0..machines).map(|_| Mutex::new(Vec::new())).collect() }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.inboxes.len()
    }

    /// Sends `rows` from machine `from` to machine `to` under stream `tag`.
    ///
    /// Local sends (`from == to`) are delivered but, as in the paper's
    /// accounting, do not count as network traffic.
    pub fn send(
        &self,
        stats: &NetworkStats,
        from: MachineId,
        to: MachineId,
        tag: u32,
        rows: Vec<Vec<VertexId>>,
    ) {
        if rows.is_empty() {
            return;
        }
        if from != to {
            let bytes =
                Envelope::solo(Request::DeliverRows { tag, rows: rows.clone() }).request_bytes();
            stats.record_request(from, bytes);
            // the Ack response is negligible but charged for symmetry
            stats.record_response(to, from, crate::message::MESSAGE_OVERHEAD_BYTES + 1);
        }
        self.deliver(to, tag, rows);
    }

    /// Appends `rows` to `to`'s inbox without touching the accounting — the
    /// delivery primitive shared by both transports (the channel transport
    /// charges modelled bytes in [`send`](RowExchange::send); the socket
    /// transport's daemon side calls this when a real `DeliverRows` frame
    /// arrives, the real bytes having been charged at the sender).
    pub(crate) fn deliver(&self, to: MachineId, tag: u32, rows: Vec<Vec<VertexId>>) {
        if rows.is_empty() {
            return;
        }
        self.inboxes[to].lock().push(Batch { tag, rows });
    }

    /// Removes and returns every row addressed to `machine` under `tag`.
    /// Intended to be called after a barrier, once all senders are done.
    pub fn take(&self, machine: MachineId, tag: u32) -> Vec<Vec<VertexId>> {
        let mut inbox = self.inboxes[machine].lock();
        let mut taken = Vec::new();
        let mut kept = Vec::new();
        for batch in inbox.drain(..) {
            if batch.tag == tag {
                taken.extend(batch.rows);
            } else {
                kept.push(batch);
            }
        }
        *inbox = kept;
        taken
    }

    /// Number of rows currently queued for `machine` (any tag). Useful for
    /// tests and memory accounting of the shuffle-based baselines.
    pub fn queued_rows(&self, machine: MachineId) -> usize {
        self.inboxes[machine].lock().iter().map(|b| b.rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_take_respect_tags_and_targets() {
        let ex = RowExchange::new(3);
        let stats = NetworkStats::new(3);
        ex.send(&stats, 0, 1, 7, vec![vec![1, 2], vec![3, 4]]);
        ex.send(&stats, 2, 1, 7, vec![vec![5, 6]]);
        ex.send(&stats, 0, 1, 8, vec![vec![9, 9]]);
        ex.send(&stats, 0, 2, 7, vec![vec![7, 7]]);
        assert_eq!(ex.queued_rows(1), 4);
        let got = ex.take(1, 7);
        assert_eq!(got.len(), 3);
        assert!(got.contains(&vec![1, 2]));
        assert!(got.contains(&vec![5, 6]));
        // tag 8 still queued
        assert_eq!(ex.queued_rows(1), 1);
        assert_eq!(ex.take(1, 8), vec![vec![9, 9]]);
        assert_eq!(ex.take(1, 7), Vec::<Vec<VertexId>>::new());
        assert_eq!(ex.take(2, 7), vec![vec![7, 7]]);
    }

    #[test]
    fn local_sends_are_free_remote_sends_are_charged() {
        let ex = RowExchange::new(2);
        let stats = NetworkStats::new(2);
        ex.send(&stats, 0, 0, 1, vec![vec![1, 2, 3]]);
        assert_eq!(stats.snapshot().total_bytes, 0);
        ex.send(&stats, 0, 1, 1, vec![vec![1, 2, 3]]);
        assert!(stats.snapshot().total_bytes > 0);
        assert_eq!(ex.take(0, 1).len(), 1);
        assert_eq!(ex.take(1, 1).len(), 1);
    }

    #[test]
    fn empty_sends_are_ignored() {
        let ex = RowExchange::new(2);
        let stats = NetworkStats::new(2);
        ex.send(&stats, 0, 1, 1, vec![]);
        assert_eq!(stats.snapshot().messages, 0);
        assert_eq!(ex.queued_rows(1), 0);
    }
}
