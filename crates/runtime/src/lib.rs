//! In-process distributed runtime simulator.
//!
//! The paper runs RADS and the baselines on an MPI cluster where every machine
//! hosts (a) daemon threads answering `verifyE` / `fetchV` / `checkR` /
//! `shareR` requests and (b) the enumeration thread. This crate reproduces
//! that architecture with threads inside one process:
//!
//! * [`Cluster`] owns the partitioned data graph and spawns, per machine, a
//!   **daemon thread** (running a user-provided [`Daemon`] implementation)
//!   and an **engine thread** (running the distributed algorithm).
//! * Engines talk to remote daemons through [`MachineContext::request`] —
//!   a blocking request/response RPC over crossbeam channels. Requests to the
//!   local machine are served directly and do **not** count as network
//!   traffic, exactly like the paper's local verification short-cut.
//! * [`NetworkStats`] counts messages and bytes per machine, which is what
//!   the paper reports as "communication cost". An optional
//!   [`NetworkConfig`] latency/bandwidth model converts bytes into simulated
//!   wall-clock delay so that elapsed-time measurements feel the network.
//! * Synchronous systems (TwinTwig, SEED, PSgL) additionally need barrier
//!   supersteps and all-to-all shuffles of intermediate results;
//!   [`MachineContext::barrier`] and the row [`exchange`] give them exactly
//!   that while charging the same network accounting.
//!
//! The engines never touch another machine's partition directly — all
//! cross-machine data flows through the messages defined in [`message`] —
//! which is what keeps the simulation faithful to the distributed setting.

pub mod cluster;
pub mod exchange;
pub mod message;
pub mod network;

pub use cluster::{Cluster, Daemon, MachineContext, PartitionDaemon};
pub use exchange::RowExchange;
pub use message::{Request, Response};
pub use network::{NetworkConfig, NetworkStats, TrafficSnapshot};
