//! The distributed runtime: one API, two fabrics.
//!
//! The paper runs RADS and the baselines on an MPI cluster where every
//! machine hosts (a) daemon threads answering `verifyE` / `fetchV` /
//! `checkR` / `shareR` requests and (b) the enumeration thread. This crate
//! reproduces that architecture behind a single surface —
//! [`MachineContext`] — over two interchangeable transports:
//!
//! * **In-process** ([`transport::ChannelTransport`]): every machine is a
//!   pair of threads, requests travel over crossbeam channels, bytes are
//!   *modelled* by the paper's cost function
//!   ([`message::Envelope::request_bytes`]), and an optional
//!   [`NetworkConfig`] latency/bandwidth model converts bytes into
//!   simulated wall-clock delay.
//! * **Real sockets** ([`transport::SocketTransport`]): every machine is a
//!   [`transport::SocketNode`] — a daemon acceptor loop on a TCP or
//!   Unix-domain listener, one pipelined connection per peer (responses
//!   matched by correlation id), the length-prefixed binary framing of
//!   [`wire`], and traffic counters reporting the *actual framed bytes* on
//!   the wire. The machines can be threads of one process
//!   ([`Cluster::with_transport`], or `RADS_TRANSPORT=uds|tcp` for the
//!   env-selected default) or separate OS processes (the `rads-node`
//!   binary), running the identical engine code either way.
//!
//! # The `Transport` contract
//!
//! Engines program against [`MachineContext`]; implementations of
//! [`transport::Transport`] must provide (see its module docs for the full
//! statement):
//!
//! * **Blocking, pipelinable RPC** — [`MachineContext::request`] returns
//!   *this* request's response no matter how many requests other threads of
//!   the machine have in flight; no cross-thread ordering is promised or
//!   assumed.
//! * **Machine-level barriers** — [`MachineContext::barrier`] returns only
//!   after every machine entered the same epoch; one thread per machine.
//! * **Synchronous row delivery** — after [`MachineContext::send_rows`]
//!   returns, the rows are in the receiver's inbox; a barrier later,
//!   [`MachineContext::take_rows`] observes them.
//! * **Byte accounting** — [`MachineContext::traffic`] reports per-machine
//!   originated bytes: modelled bytes on the channel transport, real framed
//!   bytes on the socket transport. Control frames are charged in *bytes*
//!   on both transports (real frames on sockets, the modelled barrier
//!   notifications in-process — see [`TrafficSnapshot::control_bytes`])
//!   and never in the message count. Local requests are always free.
//!
//! [`NetworkStats`] counts messages and bytes per machine, which is what
//! the paper reports as "communication cost". Synchronous systems
//! (TwinTwig, SEED, PSgL) additionally need barrier supersteps and
//! all-to-all shuffles of intermediate results; [`MachineContext::barrier`]
//! and the row [`exchange`] give them exactly that while charging the same
//! accounting. The engines never touch another machine's partition directly
//! — all cross-machine data flows through the messages defined in
//! [`message`] — which is what keeps single-process runs faithful to the
//! distributed setting, and what made the socket transport a drop-in.

pub mod cluster;
pub mod error;
pub mod exchange;
pub mod fault;
pub mod message;
pub mod network;
pub mod transport;
pub mod wire;

pub use cluster::{Cluster, Daemon, MachineContext, PartitionDaemon, RunOutcome};
pub use error::{ConfigError, TransportError};
pub use exchange::RowExchange;
pub use fault::{FaultPlan, FaultStats, FaultTransport};
pub use message::{Envelope, QueryId, Request, Response};
pub use network::{NetworkConfig, NetworkStats, TrafficSnapshot};
pub use transport::{
    MetricsPublisher, NodeMonitor, PeerAddr, PendingResponse, SocketListener, SocketNode, Transport,
    TransportKind, BARRIER_TIMEOUT_ENV, TRANSPORT_ENV,
};
