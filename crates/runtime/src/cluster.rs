//! The cluster runtime: machines, daemons, engines — over either transport.
//!
//! [`Cluster`] owns the partitioned data graph and runs one engine per
//! machine. How the machines talk is decided by [`TransportKind`]:
//!
//! * [`TransportKind::InProcess`] — daemon *threads* served over crossbeam
//!   channels, the original simulator (and the only mode with a simulated
//!   latency/bandwidth model).
//! * [`TransportKind::Uds`] / [`TransportKind::Tcp`] — every machine is a
//!   [`crate::transport::SocketNode`]: a real listener, real connections,
//!   the length-prefixed [`crate::wire`] framing, and traffic counters that
//!   report actual framed bytes. Engines still run as threads of this
//!   process (one process, N sockets); the `rads-node` binary runs the same
//!   node runtime with one *process* per machine.
//!
//! The default is read from `RADS_TRANSPORT` (see
//! [`TransportKind::from_env`]), so an unmodified test suite can be pointed
//! at the socket stack wholesale — the engines cannot tell the difference,
//! which is the point: [`MachineContext`]'s API is transport-independent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;

use rads_graph::VertexId;
use rads_partition::{LocalPartition, MachineId, PartitionedGraph, Partitioning};

use crate::error::TransportError;
use crate::message::{Envelope, QueryId, Request, Response};
use crate::network::{NetworkConfig, NetworkStats, TrafficSnapshot};
use crate::transport::{
    scratch_socket_dir, ChannelRpc, ChannelTransport, PeerAddr, PendingResponse, SocketListener,
    SocketNode, Transport, TransportKind,
};

/// Retries after the first attempt of an idempotent RPC (5 attempts total).
const RPC_RETRY_LIMIT: u32 = 4;
/// First backoff step; doubles per retry up to [`RPC_BACKOFF_CAP`].
const RPC_BACKOFF_BASE: Duration = Duration::from_millis(2);
/// Ceiling of one backoff sleep.
const RPC_BACKOFF_CAP: Duration = Duration::from_millis(200);
/// Cumulative per-RPC deadline: once this much wall clock has elapsed since
/// the first attempt, the next transient failure is returned, not retried.
const RPC_DEADLINE: Duration = Duration::from_secs(30);

/// Exponential backoff with deterministic jitter: sleep `attempt` (1-based)
/// lands in `[step/2, step]` where `step = min(base << (attempt-1), cap)`.
/// The jitter de-synchronizes machines hammering one recovering peer
/// without pulling in a randomness dependency — an xorshift mix of the
/// (machine, peer, query, attempt) tuple, so runs stay reproducible and
/// concurrent queries retrying against the same peer spread out instead
/// of stampeding in lockstep.
fn backoff_delay(machine: MachineId, to: MachineId, query: QueryId, attempt: u32) -> Duration {
    let shift = (attempt.saturating_sub(1)).min(16);
    let step = RPC_BACKOFF_BASE.saturating_mul(1 << shift).min(RPC_BACKOFF_CAP);
    let mut x = (machine as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((to as u64) << 32)
        .wrapping_add(query.0.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(attempt as u64)
        | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let half = step.as_millis() as u64 / 2;
    Duration::from_millis(half + x % (half + 1))
}

/// A machine's daemon: answers requests arriving from other machines.
///
/// The runtime runs one daemon per machine, concurrently with the machine's
/// engine — the paper's "daemon threads listen to requests from other
/// machines" (Section 3.1). Implementations are expected to answer from the
/// machine's local partition and any engine-shared state (e.g. the
/// region-group queue for `checkR` / `shareR`). A daemon must be prepared
/// to serve several requests concurrently (the socket transport handles
/// each inbound connection on its own thread), and — since requests arrive
/// as query-scoped [`Envelope`]s — to route each request to the state of
/// the query named by `envelope.query` when it serves more than one query
/// at a time.
pub trait Daemon: Send + Sync {
    /// Handles one enveloped request from machine `from`.
    fn handle(&self, from: MachineId, envelope: Envelope) -> Response;
}

/// The default daemon: answers `verifyE` and `fetchV` from the machine's
/// local partition and reports every other request as unsupported.
pub struct PartitionDaemon {
    partitioned: Arc<PartitionedGraph>,
    machine: MachineId,
}

impl PartitionDaemon {
    /// Creates the daemon for `machine`.
    pub fn new(partitioned: Arc<PartitionedGraph>, machine: MachineId) -> Self {
        PartitionDaemon { partitioned, machine }
    }

    /// Answers a `verifyE` request against a local partition.
    pub fn verify_edges(local: &LocalPartition, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        pairs
            .iter()
            .map(|&(u, v)| local.verify_edge(u, v).unwrap_or(false))
            .collect()
    }

    /// Answers a `fetchV` request against a local partition. Vertices not
    /// owned by the partition are returned with an empty adjacency list.
    pub fn fetch_vertices(local: &LocalPartition, vertices: &[VertexId]) -> Vec<(VertexId, Vec<VertexId>)> {
        vertices
            .iter()
            .map(|&v| (v, local.neighbors(v).map(|n| n.to_vec()).unwrap_or_default()))
            .collect()
    }
}

impl Daemon for PartitionDaemon {
    fn handle(&self, _from: MachineId, envelope: Envelope) -> Response {
        let local = self.partitioned.local(self.machine);
        match envelope.body {
            Request::VerifyEdges(pairs) => {
                Response::EdgeVerification(Self::verify_edges(local, &pairs))
            }
            Request::FetchVertices(vs) => Response::Adjacency(Self::fetch_vertices(local, &vs)),
            Request::CheckRegionGroups
            | Request::ShareRegionGroup
            | Request::DeliverRows { .. }
            | Request::Query { .. } => Response::Unsupported,
        }
    }
}

/// Everything an engine thread needs to act as one machine of the cluster.
///
/// The context is `Send + Sync` **and** cheaply `Clone` (every field is an
/// id, a handle or an `Arc`), so a machine's engine may fan its work out to
/// an intra-machine worker pool: workers either share one context by
/// reference or carry their own clone. Every concurrency-relevant operation
/// is safe under that sharing — [`request`](MachineContext::request) is
/// matched to its response per call on either transport, and the network
/// accounting behind [`traffic`](MachineContext::traffic) is atomic. Only
/// [`barrier`](MachineContext::barrier) must stay on the engine thread: it
/// synchronizes *machines*, and a second thread of the same machine waiting
/// on it would deadlock the superstep (RADS never calls it; the
/// shuffle-based baselines are single-threaded per machine).
pub struct MachineContext {
    machine: MachineId,
    partitioned: Arc<PartitionedGraph>,
    transport: Arc<dyn Transport>,
    local_daemon: Arc<dyn Daemon>,
    /// The query this context's requests are issued on behalf of. Batch
    /// runs keep [`QueryId::SOLO`]; a serving worker derives one context
    /// per admitted query via [`for_query`](Self::for_query).
    query: QueryId,
    /// Per-query send sequence: every transmission (including each retry
    /// re-issue) gets a fresh number, shared by clones of this context.
    seq: Arc<AtomicU64>,
    /// Transient RPC failures healed by re-issuing the request (shared by
    /// every clone of this machine's context).
    retries: Arc<AtomicU64>,
}

impl Clone for MachineContext {
    fn clone(&self) -> Self {
        MachineContext {
            machine: self.machine,
            partitioned: self.partitioned.clone(),
            transport: self.transport.clone(),
            local_daemon: self.local_daemon.clone(),
            query: self.query,
            seq: self.seq.clone(),
            retries: self.retries.clone(),
        }
    }
}

// The promise the engine-side worker pool builds on; a compile error here
// means a field of `MachineContext` lost thread safety.
const _: () = {
    const fn assert_shareable<T: Send + Sync + Clone>() {}
    assert_shareable::<MachineContext>()
};

impl MachineContext {
    /// Assembles a context from its parts. [`Cluster`] does this for every
    /// machine of a single-process run; a multi-process worker (the
    /// `rads-node` binary) does it once, with the transport of its
    /// [`SocketNode`] and its own daemon.
    pub fn assemble(
        partitioned: Arc<PartitionedGraph>,
        transport: Arc<dyn Transport>,
        local_daemon: Arc<dyn Daemon>,
    ) -> MachineContext {
        MachineContext {
            machine: transport.machine(),
            partitioned,
            transport,
            local_daemon,
            query: QueryId::SOLO,
            seq: Arc::new(AtomicU64::new(0)),
            retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// This machine's id.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The query this context issues requests on behalf of
    /// ([`QueryId::SOLO`] outside serving mode).
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// Derives a context scoped to `query`: same machine, transport and
    /// daemon, but every request it sends is enveloped with `query` and a
    /// fresh sequence counter. This is how a serving worker runs several
    /// queries concurrently over one shared fabric — each engine gets its
    /// own scoped context, and peers route by the envelope's query id.
    pub fn for_query(&self, query: QueryId) -> MachineContext {
        MachineContext {
            machine: self.machine,
            partitioned: self.partitioned.clone(),
            transport: self.transport.clone(),
            local_daemon: self.local_daemon.clone(),
            query,
            seq: Arc::new(AtomicU64::new(0)),
            retries: self.retries.clone(),
        }
    }

    /// Wraps `body` in this context's envelope, drawing the next sequence
    /// number. Called once per transmission — a retry re-issue is a new
    /// envelope, not a replay of the old one.
    fn envelope(&self, body: Request) -> Envelope {
        Envelope::new(self.query, self.seq.fetch_add(1, Ordering::Relaxed), body)
    }

    /// Number of machines in the cluster.
    pub fn machines(&self) -> usize {
        self.transport.machines()
    }

    /// The local partition of this machine.
    pub fn partition(&self) -> &LocalPartition {
        self.partitioned.local(self.machine)
    }

    /// The replicated ownership map.
    pub fn ownership(&self) -> &Partitioning {
        self.partitioned.partitioning()
    }

    /// The whole partitioned graph (engines must only read their own
    /// partition plus the ownership map; remote data goes through requests).
    pub fn partitioned(&self) -> &Arc<PartitionedGraph> {
        &self.partitioned
    }

    /// Sends `request` to machine `to` and blocks until the response arrives.
    ///
    /// A request addressed to the local machine is served inline by the local
    /// daemon and does not count as network traffic.
    ///
    /// # Retry semantics
    ///
    /// An [idempotent](Envelope::is_idempotent) request that fails with a
    /// [transient](TransportError::is_transient) error is re-issued under
    /// bounded exponential backoff with deterministic jitter — up to
    /// `RPC_RETRY_LIMIT` retries within an `RPC_DEADLINE` wall-clock
    /// budget. Re-issuing goes through the transport afresh (a new
    /// envelope sequence and correlation id, reconnecting first if the
    /// connection died), which is exactly what makes retrying sound for
    /// the pure reads `fetchV` / `verifyE` / `checkR`. Non-idempotent
    /// requests (`shareR`, `DeliverRows`) and terminal errors are returned
    /// on first failure; the caller escalates to its fault policy. The
    /// backoff jitter mixes in this context's [`QueryId`], so concurrent
    /// queries healing from the same peer fault spread their re-issues
    /// instead of retrying in lockstep.
    pub fn request(&self, to: MachineId, request: Request) -> Result<Response, TransportError> {
        if to == self.machine {
            return Ok(self.local_daemon.handle(self.machine, self.envelope(request)));
        }
        if !Envelope::is_idempotent(&request) {
            return self.transport.request(to, self.envelope(request));
        }
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.transport.request(to, self.envelope(request.clone())) {
                Ok(response) => return Ok(response),
                Err(error) => {
                    let budget_left = attempt < RPC_RETRY_LIMIT
                        && started.elapsed() < RPC_DEADLINE;
                    if !error.is_transient() || !budget_left {
                        return Err(error);
                    }
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if rads_obs::metrics_enabled() {
                        rads_obs::Registry::global().counter("rads_rpc_retries_total").add(1);
                    }
                    std::thread::sleep(backoff_delay(self.machine, to, self.query, attempt));
                }
            }
        }
    }

    /// Number of transparent RPC retries this machine's context performed
    /// (across all clones sharing it).
    pub fn rpc_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Split-phase variant of [`request`](Self::request): sends `request` to
    /// machine `to` immediately and returns a [`PendingResponse`] to redeem
    /// later, letting the caller scatter many requests before harvesting any
    /// response. A request addressed to the local machine is served inline
    /// (already complete when the handle is returned) and stays free.
    pub fn request_async(&self, to: MachineId, request: Request) -> PendingResponse {
        if to == self.machine {
            let response = self.local_daemon.handle(self.machine, self.envelope(request));
            return PendingResponse::ready(to, self.query, response);
        }
        self.transport.request_async(to, self.envelope(request))
    }

    /// Redeems `pending`; if it failed transiently and `request` is
    /// idempotent, falls back to a synchronous re-issue through
    /// [`request`](Self::request) (which applies the retry/backoff policy).
    /// This is how scatter/harvest call sites heal individual failed
    /// handles without rebuilding the whole scatter.
    pub fn harvest(
        &self,
        pending: PendingResponse,
        to: MachineId,
        request: &Request,
    ) -> Result<Response, TransportError> {
        match pending.wait() {
            Ok(response) => Ok(response),
            Err(error) if error.is_transient() && Envelope::is_idempotent(request) => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                if rads_obs::metrics_enabled() {
                    rads_obs::Registry::global().counter("rads_rpc_retries_total").add(1);
                }
                self.request(to, request.clone())
            }
            Err(error) => Err(error),
        }
    }

    /// Replaces the transport with `wrap(transport)` — the hook the
    /// fault-injection tests use to interpose a
    /// [`FaultTransport`](crate::fault::FaultTransport) between the engine
    /// and the real fabric. Local requests still bypass the wrapper (they
    /// never were transport traffic).
    pub fn wrap_transport<F>(&mut self, wrap: F)
    where
        F: FnOnce(Arc<dyn Transport>) -> Arc<dyn Transport>,
    {
        self.transport = wrap(self.transport.clone());
    }

    /// Sends `request` to every *other* machine and collects the responses.
    /// Stops at the first machine whose request fails past the retry policy.
    pub fn broadcast(&self, request: Request) -> Result<Vec<(MachineId, Response)>, TransportError> {
        (0..self.machines())
            .filter(|&m| m != self.machine)
            .map(|m| self.request(m, request.clone()).map(|r| (m, r)))
            .collect()
    }

    /// Scatter-phase [`broadcast`](Self::broadcast): sends `request` to
    /// every other machine *before* harvesting any response, so the peers
    /// serve concurrently and one round trip's latency covers all of them
    /// instead of accumulating per peer. Responses are harvested in machine
    /// order — the result is element-for-element identical to
    /// [`broadcast`](Self::broadcast), only the pacing differs; a handle
    /// that failed transiently is healed by the same synchronous re-issue
    /// (the request is idempotent whenever this is used for polling). The
    /// async round driver polls `checkR` through this.
    pub fn broadcast_scatter(
        &self,
        request: Request,
    ) -> Result<Vec<(MachineId, Response)>, TransportError> {
        let pending: Vec<(MachineId, PendingResponse)> = (0..self.machines())
            .filter(|&m| m != self.machine)
            .map(|m| (m, self.request_async(m, request.clone())))
            .collect();
        pending
            .into_iter()
            .map(|(m, p)| self.harvest(p, m, &request).map(|r| (m, r)))
            .collect()
    }

    /// Waits until every machine has reached the barrier (synchronous
    /// supersteps for the baselines; RADS never calls this in its main
    /// path). On the socket transport the wait is bounded by
    /// `RADS_BARRIER_TIMEOUT_SECS`; the error names the epoch and exactly
    /// which machines never arrived.
    pub fn barrier(&self) -> Result<(), TransportError> {
        self.transport.barrier()
    }

    /// Sends intermediate-result rows to `to` under `tag` (shuffle primitive).
    pub fn send_rows(
        &self,
        to: MachineId,
        tag: u32,
        rows: Vec<Vec<VertexId>>,
    ) -> Result<(), TransportError> {
        self.transport.send_rows(to, tag, rows)
    }

    /// Drains the rows addressed to this machine under `tag`.
    pub fn take_rows(&self, tag: u32) -> Vec<Vec<VertexId>> {
        self.transport.take_rows(tag)
    }

    /// Current traffic snapshot of the cluster (this process's machines).
    pub fn traffic(&self) -> TrafficSnapshot {
        self.transport.traffic()
    }
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// The value returned by each machine's engine, indexed by machine id.
    pub results: Vec<R>,
    /// Network traffic generated by the run.
    pub traffic: TrafficSnapshot,
    /// Wall-clock time of the whole run (spawn to last engine completion).
    pub elapsed: Duration,
}

/// The cluster runtime.
pub struct Cluster {
    partitioned: Arc<PartitionedGraph>,
    config: NetworkConfig,
    transport: TransportKind,
}

impl Cluster {
    /// A cluster over an already-partitioned graph. The transport comes from
    /// `RADS_TRANSPORT` (default: the in-process simulator with zero-cost
    /// network accounting).
    pub fn new(partitioned: Arc<PartitionedGraph>) -> Self {
        // Library-level backstop: binaries (rads-node, the bench runners)
        // validate RADS_TRANSPORT up front and exit with the ConfigError
        // message; reaching this panic means an embedder skipped that.
        let transport = TransportKind::from_env().unwrap_or_else(|e| panic!("{e}"));
        Cluster { partitioned, config: NetworkConfig::default(), transport }
    }

    /// A cluster with an explicit *simulated* network model. Latency and
    /// bandwidth are features of the simulator, so this forces the
    /// in-process transport regardless of `RADS_TRANSPORT` — a socket
    /// transport's delays are real, not configured.
    pub fn with_network(partitioned: Arc<PartitionedGraph>, config: NetworkConfig) -> Self {
        Cluster { partitioned, config, transport: TransportKind::InProcess }
    }

    /// A cluster pinned to `transport`, ignoring `RADS_TRANSPORT`.
    pub fn with_transport(partitioned: Arc<PartitionedGraph>, transport: TransportKind) -> Self {
        Cluster { partitioned, config: NetworkConfig::default(), transport }
    }

    /// Which transport this cluster runs on.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.partitioned.num_machines()
    }

    /// The partitioned graph.
    pub fn partitioned(&self) -> &Arc<PartitionedGraph> {
        &self.partitioned
    }

    /// Runs a distributed computation with the default [`PartitionDaemon`] on
    /// every machine.
    ///
    /// # Reuse contract
    ///
    /// `run` takes `&self`: a cluster may be reused for any number of runs
    /// (a resident serve cluster runs one per query), and each run starts
    /// from a clean slate. Network statistics, retry counters, barriers and
    /// the row exchange are constructed *inside* this call, and the
    /// returned [`RunOutcome::traffic`] covers exactly this run — nothing
    /// leaks from one invocation into the next. Only the dataset, the
    /// transport choice (both snapshotted at [`Cluster::new`]) and
    /// process-global observability state (the [`rads_obs`] registry, which
    /// is cumulative by design) outlive a run.
    pub fn run<R, F>(&self, engine: F) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(&MachineContext) -> R + Send + Sync,
    {
        let daemons: Vec<Arc<dyn Daemon>> = (0..self.machines())
            .map(|m| Arc::new(PartitionDaemon::new(self.partitioned.clone(), m)) as Arc<dyn Daemon>)
            .collect();
        self.run_with_daemons(daemons, engine)
    }

    /// Runs a distributed computation with user-provided daemons (one per
    /// machine). The engine closure is invoked once per machine, on its own
    /// thread, with that machine's [`MachineContext`]. The reuse contract
    /// of [`Cluster::run`] applies: per-run state is fresh every call.
    pub fn run_with_daemons<R, F>(&self, daemons: Vec<Arc<dyn Daemon>>, engine: F) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(&MachineContext) -> R + Send + Sync,
    {
        assert_eq!(daemons.len(), self.machines(), "one daemon per machine is required");
        match self.transport.effective() {
            TransportKind::InProcess => self.run_channel(daemons, engine),
            kind => self.run_socket(kind, daemons, engine),
        }
    }

    /// The in-process path: daemon threads behind channels.
    fn run_channel<R, F>(&self, daemons: Vec<Arc<dyn Daemon>>, engine: F) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(&MachineContext) -> R + Send + Sync,
    {
        let machines = self.machines();
        let stats = Arc::new(NetworkStats::new(machines));
        let exchange = Arc::new(crate::exchange::RowExchange::new(machines));
        let barrier = Arc::new(Barrier::new(machines));

        let mut daemon_channels = Vec::with_capacity(machines);
        let mut senders = Vec::with_capacity(machines);
        for _ in 0..machines {
            let (tx, rx) = unbounded::<ChannelRpc>();
            senders.push(tx);
            daemon_channels.push(rx);
        }

        let start = Instant::now();
        let mut results: Vec<Option<R>> = (0..machines).map(|_| None).collect();

        std::thread::scope(|scope| {
            // Daemon threads: serve requests until every sender is dropped.
            for (m, rx) in daemon_channels.into_iter().enumerate() {
                let daemon = daemons[m].clone();
                std::thread::Builder::new()
                    .name(format!("rads-daemon-m{m}"))
                    .spawn_scoped(scope, move || {
                        while let Ok(rpc) = rx.recv() {
                            let response = daemon.handle(rpc.from, rpc.envelope);
                            // The requester may have given up (engine
                            // finished); ignore a closed reply channel.
                            let _ = rpc.reply.send(response);
                        }
                    })
                    .expect("spawn daemon thread");
            }

            // Engine threads.
            let mut handles = Vec::with_capacity(machines);
            for (m, daemon) in daemons.iter().enumerate() {
                let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new(
                    m,
                    senders.clone(),
                    stats.clone(),
                    exchange.clone(),
                    barrier.clone(),
                    self.config,
                ));
                let ctx = MachineContext {
                    machine: m,
                    partitioned: self.partitioned.clone(),
                    transport,
                    local_daemon: daemon.clone(),
                    query: QueryId::SOLO,
                    seq: Arc::new(AtomicU64::new(0)),
                    retries: Arc::new(AtomicU64::new(0)),
                };
                let engine = &engine;
                let handle = std::thread::Builder::new()
                    .name(format!("rads-engine-m{m}"))
                    .spawn_scoped(scope, move || {
                        let ctx = ctx; // move into the thread
                        engine(&ctx)
                    })
                    .expect("spawn engine thread");
                handles.push(handle);
            }
            for (m, handle) in handles.into_iter().enumerate() {
                results[m] = Some(join_engine(m, handle));
            }
            // All engines are done: drop the request senders so the daemon
            // threads observe channel closure and exit before the scope ends.
            drop(senders);
        });

        RunOutcome {
            results: results.into_iter().map(|r| r.expect("every engine ran")).collect(),
            traffic: stats.snapshot(),
            elapsed: start.elapsed(),
        }
    }

    /// The socket path: every machine is a [`SocketNode`] of this process.
    /// All listeners are bound before any engine starts (no connect races),
    /// and the drain is two-phase across all nodes (see
    /// [`SocketNode::begin_shutdown`]).
    fn run_socket<R, F>(
        &self,
        kind: TransportKind,
        daemons: Vec<Arc<dyn Daemon>>,
        engine: F,
    ) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(&MachineContext) -> R + Send + Sync,
    {
        let machines = self.machines();
        let stats = Arc::new(NetworkStats::new(machines));

        // Bind every listener first and collect the real addresses.
        let scratch = (kind == TransportKind::Uds).then(scratch_socket_dir);
        let mut listeners = Vec::with_capacity(machines);
        let mut addrs = Vec::with_capacity(machines);
        for m in 0..machines {
            let requested = match (&scratch, kind) {
                (Some(dir), _) => PeerAddr::Uds(dir.join(format!("m{m}.sock"))),
                (None, _) => PeerAddr::Tcp("127.0.0.1:0".to_string()),
            };
            let listener = SocketListener::bind(&requested)
                .unwrap_or_else(|e| panic!("machine {m}: cannot bind {requested}: {e}"));
            addrs.push(listener.local_addr().expect("listener has an address"));
            listeners.push(listener);
        }

        let nodes: Vec<SocketNode> = listeners
            .into_iter()
            .enumerate()
            .map(|(m, listener)| {
                SocketNode::start_with_listener(
                    m,
                    addrs.clone(),
                    listener,
                    daemons[m].clone(),
                    stats.clone(),
                )
            })
            .collect();

        let start = Instant::now();
        let mut results: Vec<Option<R>> = (0..machines).map(|_| None).collect();
        // The engine scope is unwind-guarded: a panicking engine must not
        // leak the nodes' acceptor/handler/reader threads (they outlive the
        // scope) or the scratch socket directory — drain first, re-panic
        // after.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(machines);
                for (m, node) in nodes.iter().enumerate() {
                    let ctx = MachineContext {
                        machine: m,
                        partitioned: self.partitioned.clone(),
                        transport: node.transport(),
                        local_daemon: daemons[m].clone(),
                        query: QueryId::SOLO,
                        seq: Arc::new(AtomicU64::new(0)),
                        retries: Arc::new(AtomicU64::new(0)),
                    };
                    let engine = &engine;
                    let handle = std::thread::Builder::new()
                        .name(format!("rads-engine-m{m}"))
                        .spawn_scoped(scope, move || {
                            let ctx = ctx;
                            engine(&ctx)
                        })
                        .expect("spawn engine thread");
                    handles.push(handle);
                }
                for (m, handle) in handles.into_iter().enumerate() {
                    results[m] = Some(join_engine(m, handle));
                }
            });
        }));
        let elapsed = start.elapsed();

        // Two-phase drain: close every node's client connections before any
        // node waits for its handler threads.
        for node in &nodes {
            node.begin_shutdown();
        }
        for node in nodes {
            node.finish_shutdown();
        }
        if let Some(dir) = scratch {
            let _ = std::fs::remove_dir_all(dir);
        }
        if let Err(payload) = run {
            std::panic::resume_unwind(payload);
        }

        RunOutcome {
            results: results.into_iter().map(|r| r.expect("every engine ran")).collect(),
            traffic: stats.snapshot(),
            elapsed,
        }
    }
}

/// Joins an engine thread, tagging any panic with the machine id so a
/// multi-machine failure names its machine instead of surfacing as a
/// generic join error.
fn join_engine<'scope, R>(
    machine: usize,
    handle: std::thread::ScopedJoinHandle<'scope, R>,
) -> R {
    handle.join().unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        panic!("machine {machine} engine panicked: {message}");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::ring_lattice;
    use rads_partition::{BfsPartitioner, Partitioner};

    fn small_cluster(machines: usize) -> Cluster {
        let g = ring_lattice(24, 1);
        let partitioning = BfsPartitioner.partition(&g, machines);
        Cluster::new(Arc::new(PartitionedGraph::build(&g, partitioning)))
    }

    #[test]
    fn engines_run_on_every_machine() {
        let cluster = small_cluster(4);
        let outcome = cluster.run(|ctx| ctx.machine());
        assert_eq!(outcome.results, vec![0, 1, 2, 3]);
        assert_eq!(outcome.traffic.messages, 0);
    }

    #[test]
    fn remote_fetch_returns_adjacency_and_counts_traffic() {
        let cluster = small_cluster(2);
        let outcome = cluster.run(|ctx| {
            if ctx.machine() == 0 {
                // fetch a vertex owned by machine 1
                let foreign = ctx
                    .ownership()
                    .owned_vertices(1)
                    .first()
                    .copied()
                    .expect("machine 1 owns vertices");
                let response = ctx.request(1, Request::FetchVertices(vec![foreign])).expect("rpc");
                match response {
                    Response::Adjacency(lists) => lists[0].1.len(),
                    other => panic!("unexpected response {other:?}"),
                }
            } else {
                0
            }
        });
        assert_eq!(outcome.results[0], 4); // ring_lattice(24, 1) is 4-regular
        assert!(outcome.traffic.messages >= 1);
        assert!(outcome.traffic.total_bytes > 0);
    }

    #[test]
    fn local_requests_are_free() {
        let cluster = small_cluster(2);
        let outcome = cluster.run(|ctx| {
            let own = ctx.partition().owned_vertices()[0];
            let response = ctx.request(ctx.machine(), Request::FetchVertices(vec![own])).expect("local");
            matches!(response, Response::Adjacency(_))
        });
        assert!(outcome.results.iter().all(|&ok| ok));
        assert_eq!(outcome.traffic.messages, 0);
        assert_eq!(outcome.traffic.total_bytes, 0);
    }

    #[test]
    fn verify_edges_across_machines() {
        let g = ring_lattice(12, 0); // simple cycle 0-1-...-11-0
        let partitioning = BfsPartitioner.partition(&g, 3);
        let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&g, partitioning)));
        let outcome = cluster.run(|ctx| {
            if ctx.machine() != 0 {
                return (true, true);
            }
            // edge (0,1) exists; (0,2) does not; ask a machine that owns 0 or 1
            let owner = ctx.ownership().owner(1);
            let resp = ctx.request(owner, Request::VerifyEdges(vec![(0, 1), (0, 2)])).expect("rpc");
            match resp {
                Response::EdgeVerification(v) => (v[0], !v[1]),
                other => panic!("unexpected {other:?}"),
            }
        });
        assert!(outcome.results.iter().all(|&(a, b)| a && b));
    }

    #[test]
    fn broadcast_reaches_all_other_machines() {
        let cluster = small_cluster(4);
        let outcome = cluster.run(|ctx| ctx.broadcast(Request::CheckRegionGroups).expect("broadcast").len());
        assert!(outcome.results.iter().all(|&n| n == 3));
        // every machine sent 3 requests
        assert_eq!(outcome.traffic.messages, 12);
    }

    #[test]
    fn unsupported_requests_get_unsupported_response() {
        let cluster = small_cluster(2);
        let outcome = cluster.run(|ctx| {
            if ctx.machine() == 0 {
                matches!(ctx.request(1, Request::ShareRegionGroup).expect("rpc"), Response::Unsupported)
            } else {
                true
            }
        });
        assert!(outcome.results.iter().all(|&ok| ok));
    }

    #[test]
    fn barrier_and_row_exchange_synchronize_supersteps() {
        let cluster = small_cluster(3);
        let outcome = cluster.run(|ctx| {
            // superstep 1: everyone sends one row to machine (m+1) % 3
            let target = (ctx.machine() + 1) % ctx.machines();
            ctx.send_rows(target, 1, vec![vec![ctx.machine() as u32]]).expect("send");
            ctx.barrier().expect("barrier");
            // superstep 2: read what arrived
            let rows = ctx.take_rows(1);
            rows.len()
        });
        assert_eq!(outcome.results, vec![1, 1, 1]);
        assert!(outcome.traffic.total_bytes > 0);
    }

    #[test]
    fn custom_daemons_can_serve_shared_state() {
        struct CountingDaemon {
            base: PartitionDaemon,
            counter: std::sync::atomic::AtomicUsize,
        }
        impl Daemon for CountingDaemon {
            fn handle(&self, from: MachineId, envelope: Envelope) -> Response {
                if matches!(envelope.body, Request::CheckRegionGroups) {
                    let n = self.counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    return Response::RegionGroupCount(n);
                }
                self.base.handle(from, envelope)
            }
        }
        let cluster = small_cluster(2);
        let daemons: Vec<Arc<dyn Daemon>> = (0..2)
            .map(|m| {
                Arc::new(CountingDaemon {
                    base: PartitionDaemon::new(cluster.partitioned().clone(), m),
                    counter: std::sync::atomic::AtomicUsize::new(10 * m),
                }) as Arc<dyn Daemon>
            })
            .collect();
        let outcome = cluster.run_with_daemons(daemons, |ctx| {
            let peer = 1 - ctx.machine();
            match ctx.request(peer, Request::CheckRegionGroups).expect("rpc") {
                Response::RegionGroupCount(n) => n,
                other => panic!("unexpected {other:?}"),
            }
        });
        // machine 0 asked machine 1 (counter starts at 10), and vice versa
        assert_eq!(outcome.results.iter().copied().collect::<std::collections::HashSet<_>>(),
                   [0usize, 10].into_iter().collect());
    }

    #[test]
    fn intra_machine_worker_threads_can_share_the_context() {
        // Four worker threads per machine fire remote requests concurrently
        // through the same (shared or cloned) context; every reply must reach
        // the thread that asked, and the atomic traffic accounting must see
        // every message exactly once.
        let cluster = small_cluster(2);
        let outcome = cluster.run(|ctx| {
            let peer = 1 - ctx.machine();
            let foreign = ctx.ownership().owned_vertices(peer).to_vec();
            let fetch_all = |ctx: &MachineContext| {
                let mut degree_sum = 0;
                for &v in &foreign {
                    match ctx.request(peer, Request::FetchVertices(vec![v])).expect("rpc") {
                        Response::Adjacency(lists) => degree_sum += lists[0].1.len(),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                degree_sum
            };
            let per_worker: Vec<usize> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|w| {
                        let fetch_all = &fetch_all;
                        // even workers share the engine's context by
                        // reference, odd workers carry their own clone
                        let owned = (w % 2 == 1).then(|| ctx.clone());
                        scope.spawn(move || fetch_all(owned.as_ref().unwrap_or(ctx)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            // all workers fetched the same vertices, so they agree
            assert!(per_worker.windows(2).all(|w| w[0] == w[1]));
            (per_worker[0], foreign.len())
        });
        let (sum0, n0) = outcome.results[0];
        assert!(sum0 > 0 && n0 > 0);
        // 2 machines x 4 workers x |foreign| single-vertex requests
        let expected_messages: u64 = outcome
            .results
            .iter()
            .map(|&(_, n)| 4 * n as u64)
            .sum();
        assert_eq!(outcome.traffic.messages, expected_messages);
    }

    #[test]
    fn elapsed_time_is_reported() {
        let cluster = small_cluster(2);
        let outcome = cluster.run(|_| std::thread::sleep(Duration::from_millis(5)));
        assert!(outcome.elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn latency_model_slows_remote_requests() {
        let g = ring_lattice(12, 0);
        let partitioning = BfsPartitioner.partition(&g, 2);
        let pg = Arc::new(PartitionedGraph::build(&g, partitioning));
        let config = NetworkConfig {
            latency_per_message: Duration::from_millis(2),
            bytes_per_second: None,
        };
        // the latency model is a simulator feature: with_network pins the
        // in-process transport no matter what RADS_TRANSPORT says
        let cluster = Cluster::with_network(pg, config);
        assert_eq!(cluster.transport_kind(), TransportKind::InProcess);
        let outcome = cluster.run(|ctx| {
            if ctx.machine() == 0 {
                for _ in 0..5 {
                    ctx.request(1, Request::CheckRegionGroups).expect("rpc");
                }
            }
        });
        // 5 round trips x 2 messages x 2ms latency each = at least 20ms
        assert!(outcome.elapsed >= Duration::from_millis(20));
    }

    #[test]
    fn engine_panics_are_tagged_with_the_machine_id() {
        let cluster = small_cluster(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cluster.run(|ctx| {
                if ctx.machine() == 2 {
                    panic!("engine exploded on purpose");
                }
            })
        }));
        let payload = result.expect_err("the run must propagate the panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("tagged panics carry a String payload");
        assert!(message.contains("machine 2"), "panic message lost the machine id: {message}");
        assert!(
            message.contains("engine exploded on purpose"),
            "panic message lost the original cause: {message}"
        );
    }

    /// Runs the same engine on every transport and asserts the per-machine
    /// results agree — the core transport-equivalence property the whole
    /// test suite relies on when `RADS_TRANSPORT` points it at sockets.
    fn assert_transports_agree<R, F>(machines: usize, engine: F)
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(&MachineContext) -> R + Send + Sync + Copy,
    {
        let g = ring_lattice(24, 1);
        let partitioning = BfsPartitioner.partition(&g, machines);
        let pg = Arc::new(PartitionedGraph::build(&g, partitioning));
        let kinds: &[TransportKind] = if cfg!(unix) {
            &[TransportKind::InProcess, TransportKind::Uds, TransportKind::Tcp]
        } else {
            &[TransportKind::InProcess, TransportKind::Tcp]
        };
        let mut baseline: Option<Vec<R>> = None;
        for &kind in kinds {
            let cluster = Cluster::with_transport(pg.clone(), kind);
            let outcome = cluster.run(engine);
            match &baseline {
                None => baseline = Some(outcome.results),
                Some(expected) => {
                    assert_eq!(&outcome.results, expected, "transport {} deviates", kind.name())
                }
            }
        }
    }

    #[test]
    fn socket_transports_return_identical_results() {
        assert_transports_agree(3, |ctx| {
            // every machine fetches every foreign vertex and sums degrees
            let mut sum = 0usize;
            for peer in 0..ctx.machines() {
                if peer == ctx.machine() {
                    continue;
                }
                let foreign = ctx.ownership().owned_vertices(peer).to_vec();
                match ctx.request(peer, Request::FetchVertices(foreign)).expect("rpc") {
                    Response::Adjacency(lists) => {
                        sum += lists.iter().map(|(_, adj)| adj.len()).sum::<usize>()
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            sum
        });
    }

    #[test]
    fn socket_barrier_and_rows_match_channel_semantics() {
        assert_transports_agree(3, |ctx| {
            let target = (ctx.machine() + 1) % ctx.machines();
            ctx.send_rows(target, 7, vec![vec![ctx.machine() as u32, 9]]).expect("send");
            ctx.barrier().expect("barrier");
            let rows = ctx.take_rows(7);
            ctx.barrier().expect("barrier");
            rows
        });
    }

    #[test]
    fn socket_traffic_counts_real_framed_bytes() {
        use crate::wire;
        let g = ring_lattice(12, 0);
        let partitioning = BfsPartitioner.partition(&g, 2);
        let pg = Arc::new(PartitionedGraph::build(&g, partitioning));
        let kind = if cfg!(unix) { TransportKind::Uds } else { TransportKind::Tcp };
        let cluster = Cluster::with_transport(pg, kind);
        let expected_response = Response::EdgeVerification(vec![true, false]);
        let outcome = cluster.run(|ctx| {
            if ctx.machine() == 0 {
                // an edge query machine 1 can answer: ring edges are
                // (v, v+1 mod 12); (v, v+3 mod 12) never exists
                let v = ctx.ownership().owned_vertices(1)[0];
                ctx.request(1, Request::VerifyEdges(vec![(v, (v + 1) % 12), (v, (v + 3) % 12)]))
                    .expect("rpc")
            } else {
                Response::Ack
            }
        });
        assert_eq!(outcome.results[0], expected_response);
        // exactly one remote request: its frame + the response frame + the
        // one-off handshake frame are the only bytes on the wire (frame
        // sizes depend only on the pair count, not the vertex values or the
        // envelope's query/seq — both are fixed-width fields)
        let mut req_payload = Vec::new();
        wire::encode_envelope(
            &Envelope::solo(Request::VerifyEdges(vec![(0, 1), (0, 2)])),
            &mut req_payload,
        );
        let mut resp_payload = Vec::new();
        wire::encode_response(&expected_response, &mut resp_payload);
        let expected_bytes = wire::frame_bytes(req_payload.len())
            + wire::frame_bytes(resp_payload.len())
            + wire::frame_bytes(4); // Hello
        assert_eq!(outcome.traffic.messages, 1);
        assert_eq!(outcome.traffic.total_bytes, expected_bytes as u64);
    }

    // -----------------------------------------------------------------------
    // The retry policy: bounded, idempotent-only, jittered backoff.
    // -----------------------------------------------------------------------

    /// A transport whose peer answers with a connection reset for the first
    /// `fail_first` requests, then serves normally; counts every attempt it
    /// sees, so tests can pin exactly how often the retry layer re-issued.
    struct FlakyTransport {
        fail_first: u64,
        attempts: AtomicU64,
    }

    impl Transport for FlakyTransport {
        fn machine(&self) -> MachineId {
            0
        }
        fn machines(&self) -> usize {
            2
        }
        fn request(&self, to: MachineId, envelope: Envelope) -> Result<Response, TransportError> {
            let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
            if attempt < self.fail_first {
                return Err(TransportError::Reset {
                    machine: 0,
                    to,
                    detail: format!("flaky link, attempt {attempt}"),
                });
            }
            match envelope.body {
                Request::CheckRegionGroups => Ok(Response::RegionGroupCount(7)),
                Request::ShareRegionGroup => Ok(Response::RegionGroup(None)),
                other => panic!("flaky stub only serves checkR/shareR, got {other:?}"),
            }
        }
        fn barrier(&self) -> Result<(), TransportError> {
            Ok(())
        }
        fn send_rows(
            &self,
            _to: MachineId,
            _tag: u32,
            _rows: Vec<Vec<VertexId>>,
        ) -> Result<(), TransportError> {
            Ok(())
        }
        fn take_rows(&self, _tag: u32) -> Vec<Vec<VertexId>> {
            Vec::new()
        }
        fn traffic(&self) -> TrafficSnapshot {
            TrafficSnapshot::default()
        }
    }

    fn flaky_context(fail_first: u64) -> (MachineContext, Arc<FlakyTransport>) {
        let g = ring_lattice(8, 1);
        let partitioning = BfsPartitioner.partition(&g, 2);
        let pg = Arc::new(PartitionedGraph::build(&g, partitioning));
        let transport =
            Arc::new(FlakyTransport { fail_first, attempts: AtomicU64::new(0) });
        let daemon = Arc::new(PartitionDaemon::new(pg.clone(), 0));
        (MachineContext::assemble(pg, transport.clone(), daemon), transport)
    }

    #[test]
    fn transient_failures_of_idempotent_requests_retry_until_success() {
        // 3 resets fit inside the 4-retry budget: the caller never sees them.
        let (ctx, transport) = flaky_context(3);
        let response = ctx.request(1, Request::CheckRegionGroups).expect("healed by retries");
        assert_eq!(response, Response::RegionGroupCount(7));
        assert_eq!(transport.attempts.load(Ordering::Relaxed), 4, "3 failures + 1 success");
        assert_eq!(ctx.rpc_retries(), 3);
    }

    #[test]
    fn retry_budget_is_bounded_and_the_typed_error_survives() {
        // A permanently dead link: exactly RPC_RETRY_LIMIT re-issues, then
        // the typed transient error is returned — never an infinite loop.
        let (ctx, transport) = flaky_context(u64::MAX);
        let error = ctx.request(1, Request::CheckRegionGroups).expect_err("link never heals");
        assert!(matches!(error, TransportError::Reset { to: 1, .. }), "{error}");
        assert_eq!(
            transport.attempts.load(Ordering::Relaxed),
            1 + RPC_RETRY_LIMIT as u64,
            "first attempt plus the full retry budget"
        );
        assert_eq!(ctx.rpc_retries(), RPC_RETRY_LIMIT as u64);
    }

    #[test]
    fn non_idempotent_requests_are_never_retried() {
        // shareR hands over a region group — re-issuing it could duplicate
        // work, so one transient failure must surface immediately.
        let (ctx, transport) = flaky_context(1);
        let error = ctx.request(1, Request::ShareRegionGroup).expect_err("no retry allowed");
        assert!(error.is_transient(), "still typed as transient for the caller: {error}");
        assert_eq!(transport.attempts.load(Ordering::Relaxed), 1, "exactly one attempt");
        assert_eq!(ctx.rpc_retries(), 0);
    }

    #[test]
    fn harvest_heals_a_failed_async_handle_by_reissuing() {
        let (ctx, transport) = flaky_context(1);
        let request = Request::CheckRegionGroups;
        // the default async path fails immediately with the reset...
        let pending = ctx.request_async(1, request.clone());
        // ...and harvest's synchronous re-issue gets through.
        let response = ctx.harvest(pending, 1, &request).expect("healed");
        assert_eq!(response, Response::RegionGroupCount(7));
        assert_eq!(transport.attempts.load(Ordering::Relaxed), 2);
        assert!(ctx.rpc_retries() >= 1, "the heal is counted as a retry");
    }

    #[test]
    fn backoff_delays_are_jittered_within_the_exponential_envelope() {
        for attempt in 1..=10u32 {
            let shift = (attempt - 1).min(16);
            let step = RPC_BACKOFF_BASE.saturating_mul(1 << shift).min(RPC_BACKOFF_CAP);
            let delay = backoff_delay(3, 1, QueryId::SOLO, attempt);
            assert!(
                delay >= step / 2 && delay <= step,
                "attempt {attempt}: {delay:?} outside [{:?}, {step:?}]",
                step / 2
            );
            // deterministic: the same (machine, peer, query, attempt) tuple
            // always draws the same jitter, so failures reproduce exactly
            assert_eq!(delay, backoff_delay(3, 1, QueryId::SOLO, attempt));
        }
        // different machines de-synchronize: not every delay can coincide
        let all_equal = (0..8)
            .map(|m| backoff_delay(m, 1, QueryId::SOLO, 4))
            .all(|d| d == backoff_delay(0, 1, QueryId::SOLO, 4));
        assert!(!all_equal, "jitter must separate machines hammering one peer");
        // and so do different queries retrying through the same machine pair
        let all_equal = (0..8)
            .map(|q| backoff_delay(3, 1, QueryId(q), 4))
            .all(|d| d == backoff_delay(3, 1, QueryId(0), 4));
        assert!(!all_equal, "jitter must separate concurrent queries too");
    }
}
