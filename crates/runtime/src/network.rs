//! Network accounting and the optional latency/bandwidth model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rads_partition::MachineId;

/// Simulated network parameters.
///
/// With the default (zero latency, unlimited bandwidth) the simulator only
/// *counts* traffic. Experiments that want elapsed time to feel the network —
/// the way the paper's cluster does — set a per-message latency and a
/// bandwidth, and the runtime sleeps accordingly on every remote exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Fixed cost per remote request/response round trip.
    pub latency_per_message: Duration,
    /// Simulated bandwidth in bytes per second (`None` = unlimited).
    pub bytes_per_second: Option<u64>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig { latency_per_message: Duration::ZERO, bytes_per_second: None }
    }
}

impl NetworkConfig {
    /// A configuration that resembles a commodity 1 Gb/s cluster with ~100 µs
    /// round-trip latency, scaled down so simulations stay fast.
    pub fn commodity_cluster() -> Self {
        NetworkConfig {
            latency_per_message: Duration::from_micros(50),
            bytes_per_second: Some(200 * 1024 * 1024),
        }
    }

    /// The simulated transfer delay of a message of `bytes` bytes.
    pub fn transfer_delay(&self, bytes: usize) -> Duration {
        let bw = match self.bytes_per_second {
            Some(bw) if bw > 0 => {
                Duration::from_secs_f64(bytes as f64 / bw as f64)
            }
            _ => Duration::ZERO,
        };
        self.latency_per_message + bw
    }
}

/// Per-machine traffic counters (lock-free, updated by engine and daemon
/// threads).
#[derive(Debug, Default)]
pub struct MachineTraffic {
    /// Number of remote requests sent by this machine.
    pub requests_sent: AtomicU64,
    /// Bytes of requests sent by this machine.
    pub request_bytes_sent: AtomicU64,
    /// Bytes of responses received by this machine.
    pub response_bytes_received: AtomicU64,
    /// Number of requests served by this machine's daemon.
    pub requests_served: AtomicU64,
    /// Bytes of responses sent by this machine's daemon.
    pub response_bytes_sent: AtomicU64,
    /// Bytes of one-way control frames sent by this machine: handshakes,
    /// barrier notifications, result delivery, shutdown orders, metrics
    /// frames. The socket transport records the real framed bytes; the
    /// in-process transport records the modelled frame size of the control
    /// frames it *would* send (barrier notifications), so traffic is
    /// comparable across transports. Counted in byte totals and surfaced in
    /// [`TrafficSnapshot::control_bytes`], but never in `messages`.
    pub control_bytes_sent: AtomicU64,
}

/// Traffic counters for the whole cluster.
#[derive(Debug)]
pub struct NetworkStats {
    per_machine: Vec<MachineTraffic>,
}

impl NetworkStats {
    /// Creates counters for `machines` machines.
    pub fn new(machines: usize) -> Self {
        NetworkStats { per_machine: (0..machines).map(|_| MachineTraffic::default()).collect() }
    }

    /// Number of machines covered.
    pub fn machines(&self) -> usize {
        self.per_machine.len()
    }

    /// Records a request sent from `from` of `bytes` bytes.
    pub fn record_request(&self, from: MachineId, bytes: usize) {
        let t = &self.per_machine[from];
        t.requests_sent.fetch_add(1, Ordering::Relaxed);
        t.request_bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a response of `bytes` bytes served by `by` and received by
    /// `receiver`.
    pub fn record_response(&self, by: MachineId, receiver: MachineId, bytes: usize) {
        self.per_machine[by].requests_served.fetch_add(1, Ordering::Relaxed);
        self.per_machine[by].response_bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.per_machine[receiver]
            .response_bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records `bytes` of a one-way control frame sent by `from` (no
    /// response and no message-count increment).
    pub fn record_control(&self, from: MachineId, bytes: usize) {
        self.per_machine[from].control_bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// A consistent snapshot of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let mut snap = TrafficSnapshot {
            per_machine_bytes: vec![0; self.per_machine.len()],
            ..Default::default()
        };
        for (m, t) in self.per_machine.iter().enumerate() {
            let req = t.request_bytes_sent.load(Ordering::Relaxed);
            let resp_out = t.response_bytes_sent.load(Ordering::Relaxed);
            let control = t.control_bytes_sent.load(Ordering::Relaxed);
            snap.messages += t.requests_sent.load(Ordering::Relaxed);
            snap.total_bytes += req + resp_out + control;
            snap.control_bytes += control;
            snap.per_machine_bytes[m] = req + resp_out + control;
        }
        snap
    }
}

/// An immutable snapshot of cluster traffic.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Total remote request count. Control frames are never counted here —
    /// on either transport — only in the byte totals.
    pub messages: u64,
    /// Total bytes put on the wire (requests + responses + control frames).
    pub total_bytes: u64,
    /// Bytes of one-way control frames (a subset of `total_bytes`). Both
    /// transports account control traffic in bytes: the socket transport
    /// counts real framed bytes, the in-process transport the modelled
    /// frame size of its barrier notifications.
    pub control_bytes: u64,
    /// Bytes originating from each machine (its requests + its responses
    /// + its control frames).
    pub per_machine_bytes: Vec<u64>,
}

impl TrafficSnapshot {
    /// Total traffic in mebibytes — the unit of the paper's communication
    /// cost charts.
    pub fn megabytes(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = NetworkStats::new(3);
        stats.record_request(0, 100);
        stats.record_response(1, 0, 50);
        stats.record_request(2, 10);
        stats.record_response(0, 2, 5);
        stats.record_control(1, 13);
        let snap = stats.snapshot();
        assert_eq!(snap.messages, 2, "control frames never count as messages");
        assert_eq!(snap.total_bytes, 100 + 50 + 10 + 5 + 13);
        assert_eq!(snap.control_bytes, 13);
        assert_eq!(snap.per_machine_bytes, vec![105, 63, 10]);
        assert!(snap.megabytes() > 0.0);
    }

    #[test]
    fn default_network_has_no_delay() {
        let cfg = NetworkConfig::default();
        assert_eq!(cfg.transfer_delay(1_000_000), Duration::ZERO);
    }

    #[test]
    fn bandwidth_model_scales_with_bytes() {
        let cfg = NetworkConfig {
            latency_per_message: Duration::from_micros(10),
            bytes_per_second: Some(1_000_000),
        };
        let d_small = cfg.transfer_delay(1_000);
        let d_large = cfg.transfer_delay(1_000_000);
        assert!(d_large > d_small);
        assert!(d_small >= Duration::from_micros(10));
        assert!((d_large.as_secs_f64() - 1.00001).abs() < 0.01);
    }

    #[test]
    fn commodity_preset_is_reasonable() {
        let cfg = NetworkConfig::commodity_cluster();
        assert!(cfg.transfer_delay(0) >= Duration::from_micros(50));
        assert!(cfg.bytes_per_second.is_some());
    }
}
