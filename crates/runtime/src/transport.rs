//! The transport abstraction and its two implementations.
//!
//! [`Transport`] is the seam between the engines and the cluster fabric:
//! everything a [`crate::MachineContext`] does that crosses a machine
//! boundary — request/response RPC, the superstep barrier, the row shuffle
//! and traffic accounting — goes through this trait. Two implementations
//! exist:
//!
//! * [`ChannelTransport`] — the original in-process simulator: crossbeam
//!   channels between threads, *modelled* byte accounting
//!   ([`Envelope::request_bytes`]) and an optional latency/bandwidth
//!   model that sleeps per exchange.
//! * [`SocketTransport`] — real length-prefixed binary frames
//!   ([`crate::wire`]) over TCP or Unix-domain sockets, one lazily-created
//!   connection per peer with correlation-id pipelining (several engine
//!   workers share one connection and requests overlap), and *real* byte
//!   accounting: the traffic counters report exactly the framed bytes put on
//!   the wire, headers included.
//!
//! Both carry query-scoped [`Envelope`]s: every request names the
//! [`QueryId`] it serves, responses echo it (the socket reader verifies the
//! echo against the pending slot's recorded query), and per-query control
//! traffic (result frames) is collected per query — which is what lets a
//! resident serve cluster interleave several queries' RPC on one fabric.
//!
//! # Contract
//!
//! Implementations must uphold what the engines assume:
//!
//! * **`request` is blocking RPC.** It returns the daemon's response to this
//!   request, however many requests other threads of the same machine have
//!   in flight (the socket transport matches responses by correlation id;
//!   the channel transport by per-call reply channels). Requests from one
//!   machine to one peer may be answered in any order relative to other
//!   threads' requests — engines never assume cross-thread ordering.
//! * **`request_async` is split-phase RPC.** It puts the request on the
//!   wire (or in the daemon's queue) before returning and hands back a
//!   [`PendingResponse`] redeemed later with
//!   [`wait`](PendingResponse::wait); a caller may scatter any number of
//!   requests to any mix of peers before harvesting, and may harvest in any
//!   order — each handle always resolves to the response of *its own*
//!   request (never a sibling's), no matter how the peer interleaves or the
//!   network reorders the replies. `request(to, r)` is semantically
//!   `request_async(to, r).wait()`; the channel transport additionally
//!   starts the simulated transfer clock at issue time, so scattered
//!   requests overlap their modelled latency exactly like pipelined frames
//!   overlap on a real socket.
//! * **`barrier` synchronizes machines, not threads.** Exactly one thread
//!   per machine may enter it, every machine must enter it the same number
//!   of times, and it returns only after all machines entered the same
//!   epoch. The socket transport implements it as an all-to-all
//!   notification (one `Barrier` frame to every peer, then wait for the
//!   matching epoch from every peer).
//! * **`send_rows` delivers before it returns.** After `send_rows(to, ..)`
//!   returns, a `take_rows` on machine `to` that starts after a subsequent
//!   barrier observes the rows (the socket transport sends a `DeliverRows`
//!   request and waits for the acknowledgement).
//! * **Local work is free.** Requests addressed to the sending machine are
//!   short-cut by [`crate::MachineContext`] before the transport is
//!   reached; self-addressed `send_rows` *do* reach the transport, and
//!   every implementation must deliver them into its own inbox without
//!   charging traffic (the shuffle baselines self-send routinely).
//! * **Byte accounting.** `traffic` reports, per machine, the bytes that
//!   machine originated (its requests, the responses its daemon served,
//!   and its one-way control frames). Control traffic is accounted in
//!   *bytes* on both transports — the socket transport charges the real
//!   framed bytes of its handshake/barrier/result/shutdown/metrics frames,
//!   and the channel transport charges the modelled frame size of the
//!   barrier notifications it would have sent (the only control frames an
//!   in-process cluster needs) — surfaced separately as
//!   [`TrafficSnapshot::control_bytes`](crate::TrafficSnapshot). Control
//!   frames never count as messages: `messages` stays "number of remote
//!   requests" on both transports, so traffic shapes are comparable.
//!
//! A multi-process cluster runs one [`SocketNode`] per OS process (see the
//! `rads-node` binary); a single-process cluster can also run every machine
//! over sockets ([`crate::Cluster`] with [`TransportKind::Uds`] /
//! [`TransportKind::Tcp`], e.g. via `RADS_TRANSPORT=uds`), which exercises
//! the identical wire path with the engines as threads.
//!
//! # Failure surface
//!
//! Every fabric-crossing operation returns
//! `Result<_, `[`TransportError`]`>` instead of aborting: a dead daemon, a
//! reset or undecodable connection, an unreachable peer and a timed-out
//! barrier all surface as typed values the caller can act on (see
//! [`crate::error`] for the variant-by-variant recovery table). The socket
//! fabric additionally *reconnects on reset*: when a peer connection's
//! reader thread exits (EOF or decode failure), the next
//! `NodeShared::try_peer` call discards the dead client and dials a fresh
//! connection with a fresh correlation-id space, so a retried idempotent
//! request transparently heals the link. Distributed barriers attribute
//! every arrival to its sending machine (the connection handshake names the
//! sender) and give up after [`BARRIER_TIMEOUT_ENV`] seconds with a
//! [`TransportError::BarrierTimeout`] naming the epoch and exactly which
//! machines never arrived — a silent condvar hang names nobody.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier as ThreadBarrier, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use rads_graph::VertexId;
use rads_partition::MachineId;

use crate::cluster::Daemon;
use crate::error::{ConfigError, TransportError};
use crate::exchange::RowExchange;
use crate::message::{response_bytes, Envelope, QueryId, Request, Response};
use crate::network::{NetworkConfig, NetworkStats, TrafficSnapshot};
use crate::wire::{
    decode_envelope, decode_response, encode_envelope, encode_response, frame_bytes, read_message,
    write_frame, write_message, FrameKind, WireError,
};

/// Trace span name for an in-flight RPC (the `rpc.<request>` naming
/// convention of [`rads_obs::trace`]).
fn rpc_span_name(request: &Request) -> &'static str {
    match request {
        Request::VerifyEdges(_) => "rpc.verifyE",
        Request::FetchVertices(_) => "rpc.fetchV",
        Request::CheckRegionGroups => "rpc.checkR",
        Request::ShareRegionGroup => "rpc.shareR",
        Request::DeliverRows { .. } => "rpc.rows",
        Request::Query { .. } => "rpc.query",
    }
}

/// Histogram of framed message sizes put on (or served onto) the wire.
fn frame_bytes_histogram() -> &'static rads_obs::Histogram {
    static HISTOGRAM: std::sync::OnceLock<rads_obs::Histogram> = std::sync::OnceLock::new();
    HISTOGRAM.get_or_init(|| {
        rads_obs::Registry::global()
            .histogram("rads_net_frame_bytes", rads_obs::FRAME_BYTES_BUCKETS)
    })
}

/// Environment variable selecting the cluster transport (`in-process`,
/// `uds`, `tcp`); read by [`TransportKind::from_env`].
pub const TRANSPORT_ENV: &str = "RADS_TRANSPORT";

/// Environment variable bounding how long a distributed barrier waits for
/// the other machines (whole seconds) before failing with a
/// [`TransportError::BarrierTimeout`] that names the missing machines.
pub const BARRIER_TIMEOUT_ENV: &str = "RADS_BARRIER_TIMEOUT_SECS";

/// Default barrier deadline: generous enough for the slowest CI leg's
/// region-group drain between barriers, small enough that a wedged cluster
/// reports its missing machines well inside `rads-node --timeout-secs`.
const DEFAULT_BARRIER_TIMEOUT: Duration = Duration::from_secs(120);

/// How long a lazy peer connection keeps retrying before giving up — covers
/// worker processes of a multi-process cluster that start seconds apart.
const CONNECT_RETRY_TIMEOUT: Duration = Duration::from_secs(30);

/// The barrier deadline from [`BARRIER_TIMEOUT_ENV`] (default
/// `DEFAULT_BARRIER_TIMEOUT`); zero or malformed values are a
/// [`ConfigError`].
pub fn barrier_timeout_from_env() -> Result<Duration, ConfigError> {
    barrier_timeout_from_value(std::env::var(BARRIER_TIMEOUT_ENV).ok().as_deref())
}

/// [`barrier_timeout_from_env`] over an explicit value (testable without
/// mutating the process environment).
pub fn barrier_timeout_from_value(raw: Option<&str>) -> Result<Duration, ConfigError> {
    match raw {
        None => Ok(DEFAULT_BARRIER_TIMEOUT),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(secs) if secs > 0 => Ok(Duration::from_secs(secs)),
            _ => Err(ConfigError {
                var: BARRIER_TIMEOUT_ENV,
                value: raw.to_string(),
                expected: "a positive whole number of seconds",
            }),
        },
    }
}

/// Which transport a [`crate::Cluster`] runs its machines over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Crossbeam channels between threads (the simulator; supports the
    /// latency/bandwidth model).
    InProcess,
    /// Unix-domain sockets (same-host real transport; unix only).
    Uds,
    /// TCP over loopback (or, for multi-process clusters, any reachable
    /// address).
    Tcp,
}

impl TransportKind {
    /// Parses `in-process` / `channel`, `uds` / `unix`, `tcp`.
    pub fn parse(raw: &str) -> Option<TransportKind> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "in-process" | "inprocess" | "channel" | "sim" => Some(TransportKind::InProcess),
            "uds" | "unix" => Some(TransportKind::Uds),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }

    /// The transport selected by the `RADS_TRANSPORT` environment variable
    /// (default: in-process). Unknown values are a typed [`ConfigError`]
    /// rather than silently simulating a cluster the caller asked to be
    /// real — and rather than the `panic!` this used to be.
    pub fn from_env() -> Result<TransportKind, ConfigError> {
        Self::from_env_value(std::env::var(TRANSPORT_ENV).ok().as_deref())
    }

    /// [`TransportKind::from_env`] over an explicit value (testable without
    /// mutating the process environment).
    pub fn from_env_value(raw: Option<&str>) -> Result<TransportKind, ConfigError> {
        match raw {
            None => Ok(TransportKind::InProcess),
            Some(raw) => TransportKind::parse(raw).ok_or(ConfigError {
                var: TRANSPORT_ENV,
                value: raw.to_string(),
                expected: "in-process | uds | tcp",
            }),
        }
    }

    /// UDS is not available off unix; fall back to loopback TCP there.
    pub fn effective(self) -> TransportKind {
        if cfg!(unix) {
            self
        } else if self == TransportKind::Uds {
            TransportKind::Tcp
        } else {
            self
        }
    }

    /// Display name (used in logs and bench records).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::InProcess => "in-process",
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// A response that may not have arrived yet: the handle
/// [`Transport::request_async`] returns for a request already on the wire.
///
/// Redeem it with [`wait`](PendingResponse::wait). Handles are independent:
/// dropping one without waiting is allowed (the response is discarded when
/// it arrives), and waiting handles in any order — including the reverse of
/// issue order — always delivers each request its own response, because the
/// socket transport matches by correlation id and the channel transport by
/// per-call reply channels.
pub struct PendingResponse {
    to: MachineId,
    query: QueryId,
    correlation: Option<u64>,
    inner: PendingInner,
}

enum PendingInner {
    Ready(Result<Response, TransportError>),
    Wait(Box<dyn FnOnce() -> Result<Response, TransportError> + Send>),
}

impl PendingResponse {
    /// A handle over a response that is already available (local
    /// short-circuits and synchronous fallbacks).
    pub fn ready(to: MachineId, query: QueryId, response: Response) -> PendingResponse {
        PendingResponse { to, query, correlation: None, inner: PendingInner::Ready(Ok(response)) }
    }

    /// A handle over a request that already failed (the request never made
    /// it onto the wire); `wait` surfaces the error.
    pub fn failed(to: MachineId, query: QueryId, error: TransportError) -> PendingResponse {
        PendingResponse { to, query, correlation: None, inner: PendingInner::Ready(Err(error)) }
    }

    /// A handle whose response is produced by `wait` when redeemed.
    /// `correlation` is the wire correlation id when the transport has one
    /// (`None` on the channel simulator), surfaced purely for diagnostics.
    pub fn deferred(
        to: MachineId,
        query: QueryId,
        correlation: Option<u64>,
        wait: impl FnOnce() -> Result<Response, TransportError> + Send + 'static,
    ) -> PendingResponse {
        PendingResponse { to, query, correlation, inner: PendingInner::Wait(Box::new(wait)) }
    }

    /// The machine this request was addressed to.
    pub fn to(&self) -> MachineId {
        self.to
    }

    /// The query the request was issued for. The fault-recovery path reads
    /// it so a harvested retry is re-issued under the same query scope.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// The wire correlation id of the request, when the transport assigns
    /// one. Engine diagnostics quote it so a mis-tagged or lost response
    /// can be traced to a frame.
    pub fn correlation(&self) -> Option<u64> {
        self.correlation
    }

    /// Blocks until the response arrives and returns it — or the typed
    /// failure that prevented it (connection reset, peer dead, decode).
    pub fn wait(self) -> Result<Response, TransportError> {
        match self.inner {
            PendingInner::Ready(response) => response,
            PendingInner::Wait(wait) => wait(),
        }
    }
}

/// Everything machine-crossing a [`crate::MachineContext`] needs; see the
/// [module docs](self) for the contract.
pub trait Transport: Send + Sync {
    /// This machine's id.
    fn machine(&self) -> MachineId;
    /// Number of machines in the cluster.
    fn machines(&self) -> usize;
    /// Blocking request/response RPC to the daemon of machine `to`
    /// (`to != machine()`; local requests never reach the transport). The
    /// envelope names the query the request serves; the response is scoped
    /// to it. Fabric failures surface as a typed [`TransportError`].
    fn request(&self, to: MachineId, envelope: Envelope) -> Result<Response, TransportError>;
    /// Split-phase RPC: issues the request now, returns a handle redeemed
    /// later (see the [module docs](self)). The default implementation is
    /// the synchronous fallback — correct for any transport, overlapping
    /// nothing; both built-in transports override it with a genuinely
    /// pipelined version.
    fn request_async(&self, to: MachineId, envelope: Envelope) -> PendingResponse {
        let query = envelope.query;
        match self.request(to, envelope) {
            Ok(response) => PendingResponse::ready(to, query, response),
            Err(e) => PendingResponse::failed(to, query, e),
        }
    }
    /// Superstep barrier across all machines. Fails (naming epoch and the
    /// missing machines on the socket fabric) instead of hanging forever.
    fn barrier(&self) -> Result<(), TransportError>;
    /// Delivers rows to machine `to` under `tag` (free when `to` is this
    /// machine; empty row batches are dropped).
    fn send_rows(
        &self,
        to: MachineId,
        tag: u32,
        rows: Vec<Vec<VertexId>>,
    ) -> Result<(), TransportError>;
    /// Drains the rows delivered to this machine under `tag`.
    fn take_rows(&self, tag: u32) -> Vec<Vec<VertexId>>;
    /// Traffic counters. On a multi-process cluster each process sees its
    /// own machine's row; single-process clusters see every machine.
    fn traffic(&self) -> TrafficSnapshot;
}

// ---------------------------------------------------------------------------
// ChannelTransport — the in-process simulator
// ---------------------------------------------------------------------------

/// One in-flight RPC travelling to an in-process daemon thread: the
/// query-scoped [`Envelope`] plus the sender's identity and reply channel.
pub(crate) struct ChannelRpc {
    pub(crate) from: MachineId,
    pub(crate) envelope: Envelope,
    pub(crate) reply: Sender<Response>,
}

/// The original in-process transport: requests travel over crossbeam
/// channels to daemon threads, bytes are charged by the paper's cost model,
/// and the optional [`NetworkConfig`] latency/bandwidth model sleeps per
/// exchange.
pub struct ChannelTransport {
    machine: MachineId,
    senders: Vec<Sender<ChannelRpc>>,
    stats: Arc<NetworkStats>,
    exchange: Arc<RowExchange>,
    barrier: Arc<ThreadBarrier>,
    config: NetworkConfig,
}

impl ChannelTransport {
    pub(crate) fn new(
        machine: MachineId,
        senders: Vec<Sender<ChannelRpc>>,
        stats: Arc<NetworkStats>,
        exchange: Arc<RowExchange>,
        barrier: Arc<ThreadBarrier>,
        config: NetworkConfig,
    ) -> Self {
        ChannelTransport { machine, senders, stats, exchange, barrier, config }
    }
}

impl Transport for ChannelTransport {
    fn machine(&self) -> MachineId {
        self.machine
    }

    fn machines(&self) -> usize {
        self.senders.len()
    }

    fn request(&self, to: MachineId, envelope: Envelope) -> Result<Response, TransportError> {
        debug_assert_ne!(to, self.machine, "local requests are served inline");
        let mut rpc_span = rads_obs::async_span(rpc_span_name(&envelope.body), "rpc");
        let req_bytes = envelope.request_bytes();
        self.stats.record_request(self.machine, req_bytes);
        let (reply_tx, reply_rx) = bounded(1);
        let machine = self.machine;
        self.senders[to]
            .send(ChannelRpc { from: machine, envelope, reply: reply_tx })
            .map_err(|_| TransportError::PeerDead {
                machine,
                to,
                detail: "daemon thread exited before the request was queued".into(),
            })?;
        let response = reply_rx.recv().map_err(|_| TransportError::PeerDead {
            machine,
            to,
            detail: "daemon thread exited without replying".into(),
        })?;
        let resp_bytes = response_bytes(&response);
        self.stats.record_response(to, self.machine, resp_bytes);
        let delay = self.config.transfer_delay(req_bytes) + self.config.transfer_delay(resp_bytes);
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
        rpc_span.attr("to", to as u64);
        rpc_span.attr("req_bytes", req_bytes as u64);
        rpc_span.attr("resp_bytes", resp_bytes as u64);
        rpc_span.finish();
        Ok(response)
    }

    fn request_async(&self, to: MachineId, envelope: Envelope) -> PendingResponse {
        debug_assert_ne!(to, self.machine, "local requests are served inline");
        let mut rpc_span = rads_obs::async_span(rpc_span_name(&envelope.body), "rpc");
        let req_bytes = envelope.request_bytes();
        let query = envelope.query;
        rpc_span.attr("to", to as u64);
        rpc_span.attr("req_bytes", req_bytes as u64);
        self.stats.record_request(self.machine, req_bytes);
        let (reply_tx, reply_rx) = bounded(1);
        if self
            .senders[to]
            .send(ChannelRpc { from: self.machine, envelope, reply: reply_tx })
            .is_err()
        {
            return PendingResponse::failed(
                to,
                query,
                TransportError::PeerDead {
                    machine: self.machine,
                    to,
                    detail: "daemon thread exited before the request was queued".into(),
                },
            );
        }
        // The simulated transfer clock starts at issue time: a wait resolves
        // at max(daemon done, issued + modelled delay), so scattered requests
        // overlap their latency the way pipelined frames do on a real wire —
        // while the blocking `request` above keeps the serial model (full
        // delay after the exchange) the pre-async experiments were
        // calibrated against.
        let issued_at = Instant::now();
        let stats = self.stats.clone();
        let config = self.config;
        let machine = self.machine;
        PendingResponse::deferred(to, query, None, move || {
            let response = reply_rx.recv().map_err(|_| TransportError::PeerDead {
                machine,
                to,
                detail: "daemon thread exited without replying".into(),
            })?;
            let resp_bytes = response_bytes(&response);
            stats.record_response(to, machine, resp_bytes);
            let deadline = issued_at
                + config.transfer_delay(req_bytes)
                + config.transfer_delay(resp_bytes);
            let now = Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
            let mut rpc_span = rpc_span;
            rpc_span.attr("resp_bytes", resp_bytes as u64);
            rpc_span.finish();
            Ok(response)
        })
    }

    fn barrier(&self) -> Result<(), TransportError> {
        // Mirror the socket transport's all-to-all barrier notification in
        // the modelled accounting — one Barrier frame (u64 epoch payload)
        // to every remote peer, charged as control *bytes* only — so the
        // two transports report comparable traffic shapes.
        let notification = frame_bytes(8);
        for peer in 0..self.senders.len() {
            if peer != self.machine {
                self.stats.record_control(self.machine, notification);
            }
        }
        self.barrier.wait();
        Ok(())
    }

    fn send_rows(
        &self,
        to: MachineId,
        tag: u32,
        rows: Vec<Vec<VertexId>>,
    ) -> Result<(), TransportError> {
        self.exchange.send(&self.stats, self.machine, to, tag, rows);
        Ok(())
    }

    fn take_rows(&self, tag: u32) -> Vec<Vec<VertexId>> {
        self.exchange.take(self.machine, tag)
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// addresses, streams, listeners
// ---------------------------------------------------------------------------

/// A machine's listen address: `tcp:HOST:PORT` or `uds:PATH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerAddr {
    /// TCP host:port.
    Tcp(String),
    /// Unix-domain socket path (unix only).
    Uds(PathBuf),
}

impl PeerAddr {
    /// Parses `tcp:127.0.0.1:4100` or `uds:/run/rads/m0.sock`.
    pub fn parse(raw: &str) -> Result<PeerAddr, String> {
        if let Some(rest) = raw.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err(format!("empty tcp address in {raw:?}"));
            }
            Ok(PeerAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = raw.strip_prefix("uds:") {
            if rest.is_empty() {
                return Err(format!("empty socket path in {raw:?}"));
            }
            Ok(PeerAddr::Uds(PathBuf::from(rest)))
        } else {
            Err(format!("address {raw:?} must start with tcp: or uds:"))
        }
    }
}

impl std::fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerAddr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
            PeerAddr::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// A connected stream of either family.
enum SocketStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl SocketStream {
    fn connect(addr: &PeerAddr) -> io::Result<SocketStream> {
        match addr {
            PeerAddr::Tcp(hostport) => {
                let stream = TcpStream::connect(hostport.as_str())?;
                stream.set_nodelay(true).ok();
                Ok(SocketStream::Tcp(stream))
            }
            #[cfg(unix)]
            PeerAddr::Uds(path) => Ok(SocketStream::Uds(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            PeerAddr::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    fn try_clone(&self) -> io::Result<SocketStream> {
        Ok(match self {
            SocketStream::Tcp(s) => SocketStream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            SocketStream::Uds(s) => SocketStream::Uds(s.try_clone()?),
        })
    }

    fn shutdown_both(&self) {
        match self {
            SocketStream::Tcp(s) => drop(s.shutdown(std::net::Shutdown::Both)),
            #[cfg(unix)]
            SocketStream::Uds(s) => drop(s.shutdown(std::net::Shutdown::Both)),
        }
    }

    fn set_blocking(&self) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_nonblocking(false),
            #[cfg(unix)]
            SocketStream::Uds(s) => s.set_nonblocking(false),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            SocketStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            SocketStream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            SocketStream::Uds(s) => s.flush(),
        }
    }
}

/// A bound listener of either family. Unix listeners unlink their socket
/// file on drop.
pub struct SocketListener {
    inner: ListenerInner,
}

enum ListenerInner {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

impl SocketListener {
    /// Binds `addr`. A stale Unix socket file at the path is removed first
    /// (a crashed predecessor must not block a restart).
    pub fn bind(addr: &PeerAddr) -> io::Result<SocketListener> {
        match addr {
            PeerAddr::Tcp(hostport) => {
                Ok(SocketListener { inner: ListenerInner::Tcp(TcpListener::bind(hostport.as_str())?) })
            }
            #[cfg(unix)]
            PeerAddr::Uds(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir)?;
                }
                Ok(SocketListener {
                    inner: ListenerInner::Uds(UnixListener::bind(path)?, path.clone()),
                })
            }
            #[cfg(not(unix))]
            PeerAddr::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    /// The address peers should connect to (resolves a `tcp:...:0` bind to
    /// the actual port).
    pub fn local_addr(&self) -> io::Result<PeerAddr> {
        match &self.inner {
            ListenerInner::Tcp(l) => Ok(PeerAddr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            ListenerInner::Uds(_, path) => Ok(PeerAddr::Uds(path.clone())),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match &self.inner {
            ListenerInner::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            ListenerInner::Uds(l, _) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<SocketStream> {
        match &self.inner {
            ListenerInner::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true).ok();
                Ok(SocketStream::Tcp(stream))
            }
            #[cfg(unix)]
            ListenerInner::Uds(l, _) => {
                let (stream, _) = l.accept()?;
                Ok(SocketStream::Uds(stream))
            }
        }
    }
}

impl Drop for SocketListener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let ListenerInner::Uds(_, path) = &self.inner {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A fresh directory for this process's scratch Unix sockets, short enough
/// for the ~100-byte `sun_path` limit.
pub fn scratch_socket_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rads-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch socket dir");
    dir
}

// ---------------------------------------------------------------------------
// SocketNode — one machine's socket runtime
// ---------------------------------------------------------------------------

/// A pending-response slot; the connection reader thread fills it. The
/// stored [`QueryId`] is the query the request was issued for — the reader
/// verifies the response frame echoes it, so a cross-query mixup upstream
/// surfaces as a typed error instead of silently answering the wrong query.
type PendingMap = Mutex<HashMap<u64, (QueryId, Sender<Response>)>>;

/// One lazily-established client connection to a peer machine. All engine
/// threads of the machine share it: writes are serialized by the stream
/// mutex, responses are matched back to callers by correlation id, so
/// requests pipeline.
struct PeerClient {
    stream: Mutex<SocketStream>,
    pending: Arc<PendingMap>,
    next_correlation: AtomicU64,
    /// Set by the reader thread on exit, *before* it drains `pending`.
    /// A request that races past its own closed-check has necessarily
    /// inserted its reply slot before the drain, so the drain drops the
    /// slot and the requester's `recv` fails — either way the caller
    /// panics promptly instead of waiting on a reply that cannot come.
    closed: Arc<AtomicBool>,
}

/// Epoch-counted distributed barrier arrivals, *attributed*: each arrival
/// records which machine sent the notification (the connection handshake
/// names the sender), so a timed-out wait can report exactly who is
/// missing instead of only how many.
#[derive(Default)]
struct BarrierState {
    arrived: StdMutex<HashMap<u64, Vec<MachineId>>>,
    condvar: Condvar,
}

impl BarrierState {
    fn arrive(&self, epoch: u64, from: MachineId) {
        self.arrived.lock().expect("barrier lock").entry(epoch).or_default().push(from);
        self.condvar.notify_all();
    }

    /// Waits until `expected` machines arrived at `epoch`, or `timeout`
    /// elapsed. On timeout the entry is left in place (stragglers of a
    /// failed epoch must not corrupt a later one) and the machines that
    /// *did* arrive are returned so the caller can name the missing ones.
    fn wait(
        &self,
        epoch: u64,
        expected: usize,
        timeout: Duration,
    ) -> Result<(), Vec<MachineId>> {
        let deadline = Instant::now() + timeout;
        let mut arrived = self.arrived.lock().expect("barrier lock");
        loop {
            if arrived.get(&epoch).map_or(0, Vec::len) >= expected {
                arrived.remove(&epoch);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(arrived.get(&epoch).cloned().unwrap_or_default());
            }
            let (guard, _) = self
                .condvar
                .wait_timeout(arrived, deadline - now)
                .expect("barrier wait");
            arrived = guard;
        }
    }
}

/// Result payloads collected by the coordinator (indexed by query id and
/// machine id, so concurrent queries' results collect independently) and
/// the shutdown flag a worker waits on.
#[derive(Default)]
struct ControlState {
    results: StdMutex<HashMap<(u64, MachineId), Vec<u8>>>,
    /// Latest metrics snapshot received from each machine (newer frames
    /// replace older ones — each frame carries a full snapshot).
    metrics: StdMutex<HashMap<MachineId, Vec<u8>>>,
    /// When each machine was last heard from (metrics or result frame) —
    /// the liveness signal the coordinator's heartbeat monitor reads. The
    /// periodic metrics stream doubles as the heartbeat carrier: a worker
    /// that stops ticking is suspect, one whose process exited is dead.
    heartbeats: StdMutex<HashMap<MachineId, Instant>>,
    shutdown: AtomicBool,
    condvar: Condvar,
}

impl ControlState {
    fn record_heartbeat(&self, from: MachineId) {
        self.heartbeats.lock().expect("heartbeat lock").insert(from, Instant::now());
    }
}

/// Everything the node's threads share.
struct NodeShared {
    machine: MachineId,
    addrs: Vec<PeerAddr>,
    daemon: Arc<dyn Daemon>,
    stats: Arc<NetworkStats>,
    exchange: RowExchange,
    peers: Vec<Mutex<Option<Arc<PeerClient>>>>,
    barrier: BarrierState,
    barrier_epoch: AtomicU64,
    barrier_timeout: Duration,
    control: ControlState,
    /// How many dead peer connections were replaced with a fresh dial
    /// (the reconnect-on-reset path in `NodeShared::try_peer`).
    reconnects: AtomicU64,
    /// Connection handler + reader threads, joined at shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl NodeShared {
    fn machines(&self) -> usize {
        self.addrs.len()
    }

    /// The client connection to `to`, establishing it (with retry — the
    /// peer process may still be starting) on first use. Connection
    /// failures surface as [`TransportError::ConnectRefused`] for the
    /// caller's retry/backoff layer to act on.
    fn peer(self: &Arc<Self>, to: MachineId) -> Result<Arc<PeerClient>, TransportError> {
        self.try_peer(to, CONNECT_RETRY_TIMEOUT).map_err(|e| TransportError::ConnectRefused {
            machine: self.machine,
            to,
            detail: format!("{} unreachable: {e}", self.addrs[to]),
        })
    }

    /// [`peer`](NodeShared::peer) with an explicit connect timeout and the
    /// raw I/O error (the shutdown broadcast and metrics ticker use short
    /// timeouts so one dead worker cannot stall the drain).
    ///
    /// This is also the **reconnect-on-reset** point: a cached client whose
    /// reader thread has exited (`closed` set — EOF, reset or decode
    /// failure) is discarded and a fresh connection dialed in its place,
    /// with a fresh correlation-id space. Requests that were in flight on
    /// the dead connection have already errored out; retried idempotent
    /// requests transparently heal over the new link.
    fn try_peer(
        self: &Arc<Self>,
        to: MachineId,
        connect_timeout: Duration,
    ) -> io::Result<Arc<PeerClient>> {
        let mut slot = self.peers[to].lock();
        if let Some(client) = slot.as_ref() {
            if !client.closed.load(Ordering::SeqCst) {
                return Ok(client.clone());
            }
            // the reader saw the connection die: drop the corpse and redial
            client.stream.lock().shutdown_both();
            *slot = None;
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            if rads_obs::metrics_enabled() {
                rads_obs::Registry::global().counter("rads_reconnects_total").add(1);
            }
        }
        let stream = connect_with_retry(&self.addrs[to], connect_timeout)?;
        // handshake: tell the peer's daemon who is calling
        let hello = (self.machine as u32).to_le_bytes();
        let mut write_half = stream.try_clone()?;
        let written = write_frame(&mut write_half, FrameKind::Hello, 0, QueryId::SOLO, &hello)?;
        self.stats.record_control(self.machine, written);
        let client = Arc::new(PeerClient {
            stream: Mutex::new(write_half),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_correlation: AtomicU64::new(1),
            closed: Arc::new(AtomicBool::new(false)),
        });
        let pending = client.pending.clone();
        let closed = client.closed.clone();
        let machine = self.machine;
        let mut read_half = stream;
        let reader = std::thread::Builder::new()
            .name(format!("rads-m{}-reader-to-m{to}", self.machine))
            .spawn(move || {
                // The reader never panics: every way the stream can go bad
                // resolves to a typed reason, the connection is marked dead
                // and pending requesters error out (their retry layer
                // reconnects). A duplicate correlation id (the slot was
                // already consumed) is dropped on the floor.
                let reason = loop {
                    // read_message reassembles continuation runs, so an
                    // adjacency response above the frame cap arrives here
                    // as one logical frame
                    match read_message(&mut read_half) {
                        Ok(Some(frame)) if frame.kind == FrameKind::Response => {
                            match decode_response(&frame.payload) {
                                Ok(response) => {
                                    let slot = pending.lock().remove(&frame.correlation);
                                    if let Some((query, tx)) = slot {
                                        if frame.query != query {
                                            // a response answering under the
                                            // wrong query scope is a protocol
                                            // violation: kill the connection
                                            // rather than deliver cross-query
                                            break Some(TransportError::Decode {
                                                machine,
                                                to,
                                                detail: format!(
                                                    "response (correlation {}): {}",
                                                    frame.correlation,
                                                    WireError::QueryMismatch {
                                                        expected: query.0,
                                                        got: frame.query.0,
                                                    }
                                                ),
                                            });
                                        }
                                        let _ = tx.send(response);
                                    }
                                }
                                Err(e) => {
                                    break Some(TransportError::Decode {
                                        machine,
                                        to,
                                        detail: format!(
                                            "response (correlation {}): {e}",
                                            frame.correlation
                                        ),
                                    })
                                }
                            }
                        }
                        Ok(Some(frame)) => {
                            break Some(TransportError::Decode {
                                machine,
                                to,
                                detail: format!(
                                    "unexpected {:?} frame on a client connection",
                                    frame.kind
                                ),
                            })
                        }
                        Ok(None) => break None, // clean close
                        Err(e) => {
                            break Some(TransportError::Decode {
                                machine,
                                to,
                                detail: e.to_string(),
                            })
                        }
                    }
                };
                // Mark the connection dead *before* draining, then drop the
                // reply senders: requesters blocked on this connection error
                // out, and later requests see `closed` (see PeerClient).
                closed.store(true, Ordering::SeqCst);
                pending.lock().clear();
                if let Some(error) = reason {
                    eprintln!("{error} — connection marked dead; retries will reconnect");
                }
            })
            .expect("spawn reader thread");
        self.threads.lock().push(reader);
        *slot = Some(client.clone());
        Ok(client)
    }

    /// Sends a one-way control frame to `to`, charging real bytes. A
    /// failed write surfaces as [`TransportError::Reset`].
    fn send_control(
        self: &Arc<Self>,
        to: MachineId,
        kind: FrameKind,
        correlation: u64,
        query: QueryId,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        let client = self.peer(to)?;
        let written = {
            let mut stream = client.stream.lock();
            write_frame(&mut *stream, kind, correlation, query, payload)
        }
        .map_err(|e| TransportError::Reset {
            machine: self.machine,
            to,
            detail: format!("control frame failed to send: {e}"),
        })?;
        self.stats.record_control(self.machine, written);
        Ok(())
    }
}

fn connect_with_retry(addr: &PeerAddr, timeout: Duration) -> io::Result<SocketStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match SocketStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One machine of a socket cluster: the listener + acceptor ("the daemon
/// side"), the lazily-connected peer clients ("the engine side") and the
/// control state (distributed barrier, result collection, shutdown).
///
/// Lifecycle: [`SocketNode::start`] (or
/// [`SocketNode::start_with_listener`]) → hand [`SocketNode::transport`] to
/// a [`crate::MachineContext`] and run the engine → when *every* machine's
/// engine is done, [`SocketNode::begin_shutdown`] on all nodes (closes this
/// node's client connections, so peers' handler threads drain), then
/// [`SocketNode::finish_shutdown`] on all nodes (joins every thread). The
/// two-phase split is what makes the drain deadlock-free: no node waits for
/// its handlers before every node has closed the connections those handlers
/// serve.
pub struct SocketNode {
    shared: Arc<NodeShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl SocketNode {
    /// Binds `addrs[machine]` and starts the node.
    pub fn start(
        machine: MachineId,
        addrs: Vec<PeerAddr>,
        daemon: Arc<dyn Daemon>,
        stats: Arc<NetworkStats>,
    ) -> io::Result<SocketNode> {
        let listener = SocketListener::bind(&addrs[machine])?;
        Ok(Self::start_with_listener(machine, addrs, listener, daemon, stats))
    }

    /// Starts the node on an already-bound listener (used by the
    /// single-process socket cluster, which binds every listener before any
    /// engine starts, and by TCP callers that bound port 0 to discover the
    /// port).
    pub fn start_with_listener(
        machine: MachineId,
        addrs: Vec<PeerAddr>,
        listener: SocketListener,
        daemon: Arc<dyn Daemon>,
        stats: Arc<NetworkStats>,
    ) -> SocketNode {
        let machines = addrs.len();
        let shared = Arc::new(NodeShared {
            machine,
            addrs,
            daemon,
            stats,
            exchange: RowExchange::new(machines),
            peers: (0..machines).map(|_| Mutex::new(None)).collect(),
            barrier: BarrierState::default(),
            barrier_epoch: AtomicU64::new(0),
            // Binaries validate the env up front (rads-node exits cleanly
            // on a ConfigError before any node starts), so this expect is
            // a backstop for library callers, not the user-facing path.
            barrier_timeout: barrier_timeout_from_env()
                .unwrap_or_else(|e| panic!("{e}")),
            control: ControlState::default(),
            reconnects: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
        });
        listener.set_nonblocking(true).expect("nonblocking listener");
        let acceptor_shared = shared.clone();
        let acceptor = std::thread::Builder::new()
            .name(format!("rads-m{machine}-acceptor"))
            .spawn(move || accept_loop(acceptor_shared, listener))
            .expect("spawn acceptor thread");
        SocketNode { shared, acceptor: Some(acceptor) }
    }

    /// This machine's id.
    pub fn machine(&self) -> MachineId {
        self.shared.machine
    }

    /// The transport handle engines use (cheap to clone via `Arc`).
    pub fn transport(&self) -> Arc<dyn Transport> {
        Arc::new(SocketTransport { shared: self.shared.clone() })
    }

    /// Worker → coordinator: delivers this machine's opaque result payload
    /// for `query` (the frame's correlation id carries the machine id, the
    /// header query id the query). Batch runs pass [`QueryId::SOLO`].
    pub fn send_result(
        &self,
        coordinator: MachineId,
        query: QueryId,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        self.shared.send_control(
            coordinator,
            FrameKind::Result,
            self.shared.machine as u64,
            query,
            payload,
        )
    }

    /// How many dead peer connections this node replaced with a fresh dial
    /// (the reconnect-on-reset path).
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Relaxed)
    }

    /// Coordinator: when each machine was last heard from (metrics or
    /// result frame). The periodic metrics stream is the heartbeat carrier;
    /// a machine absent from the map has never been heard from at all.
    pub fn heartbeats(&self) -> HashMap<MachineId, Instant> {
        self.shared.control.heartbeats.lock().expect("heartbeat lock").clone()
    }

    /// A lightweight liveness handle sharing this node's state, for a
    /// thread that does not own the node (the coordinator's main thread
    /// watches heartbeats while its engine thread owns the `SocketNode`).
    pub fn monitor(&self) -> NodeMonitor {
        NodeMonitor { shared: self.shared.clone() }
    }

    /// Coordinator: blocks until every machine in `from` delivered a result
    /// frame for `query`, or `timeout` elapsed. Returns the payloads in
    /// `from` order. Result frames of *other* queries are left untouched,
    /// so concurrent per-query waiters never steal each other's results.
    pub fn wait_results(
        &self,
        query: QueryId,
        from: &[MachineId],
        timeout: Duration,
    ) -> Result<Vec<Vec<u8>>, Vec<MachineId>> {
        let deadline = Instant::now() + timeout;
        let mut results = self.shared.control.results.lock().expect("results lock");
        loop {
            if from.iter().all(|m| results.contains_key(&(query.0, *m))) {
                return Ok(from
                    .iter()
                    .map(|m| results.remove(&(query.0, *m)).expect("present"))
                    .collect());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(from
                    .iter()
                    .copied()
                    .filter(|m| !results.contains_key(&(query.0, *m)))
                    .collect());
            }
            let (guard, _) = self
                .shared
                .control
                .condvar
                .wait_timeout(results, deadline - now)
                .expect("results wait");
            results = guard;
        }
    }

    /// Coordinator: orders every other machine to shut down. Unreachable
    /// peers are skipped — a worker that already died needs no shutdown
    /// order, and panicking here would abort the drain that kills the
    /// remaining workers and removes the scratch sockets.
    pub fn broadcast_shutdown(&self) {
        const SHUTDOWN_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
        for to in 0..self.shared.machines() {
            if to == self.shared.machine {
                continue;
            }
            let Ok(client) = self.shared.try_peer(to, SHUTDOWN_CONNECT_TIMEOUT) else { continue };
            let written = {
                let mut stream = client.stream.lock();
                write_frame(&mut *stream, FrameKind::Shutdown, 0, QueryId::SOLO, &[])
            };
            if let Ok(written) = written {
                self.shared.stats.record_control(self.shared.machine, written);
            }
        }
    }

    /// A handle for shipping metrics snapshots to machine `to` (the
    /// coordinator). Cheap; usable from a background ticker thread while
    /// the engine runs — metrics frames interleave with request frames on
    /// the same pipelined connection.
    pub fn metrics_publisher(&self, to: MachineId) -> MetricsPublisher {
        MetricsPublisher { shared: self.shared.clone(), to }
    }

    /// Coordinator: drains the latest metrics snapshot received from each
    /// machine, sorted by machine id. Frames that arrive later replace
    /// earlier ones, so after the result frames are in (results are sent
    /// *after* the final metrics frame on the same ordered connection) this
    /// holds each worker's final snapshot.
    pub fn take_metrics(&self) -> Vec<(MachineId, Vec<u8>)> {
        let mut drained: Vec<(MachineId, Vec<u8>)> = self
            .shared
            .control
            .metrics
            .lock()
            .expect("metrics lock")
            .drain()
            .collect();
        drained.sort_by_key(|(machine, _)| *machine);
        drained
    }

    /// Coordinator: the latest metrics snapshot received from each machine,
    /// sorted by machine id — like [`take_metrics`](SocketNode::take_metrics)
    /// but *non-destructive*. The serve scheduler reads this to take a
    /// per-query epoch baseline while other queries are still in flight:
    /// draining here would steal the snapshots a concurrent query's delta
    /// computation depends on.
    pub fn latest_metrics(&self) -> Vec<(MachineId, Vec<u8>)> {
        let mut cloned: Vec<(MachineId, Vec<u8>)> = self
            .shared
            .control
            .metrics
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(machine, payload)| (*machine, payload.clone()))
            .collect();
        cloned.sort_by_key(|(machine, _)| *machine);
        cloned
    }

    /// Worker: blocks until a shutdown frame arrives (or `timeout`).
    /// Returns whether the shutdown order was received.
    pub fn wait_shutdown(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut results = self.shared.control.results.lock().expect("results lock");
        while !self.shared.control.shutdown.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .control
                .condvar
                .wait_timeout(results, deadline - now)
                .expect("shutdown wait");
            results = guard;
        }
        true
    }

    /// Drain phase A: stop accepting, close this node's client connections
    /// (peers' handler threads see end-of-stream and exit). Must run on
    /// every node of the cluster before any node runs
    /// [`finish_shutdown`](SocketNode::finish_shutdown).
    pub fn begin_shutdown(&self) {
        self.shared.control.shutdown.store(true, Ordering::SeqCst);
        for slot in &self.shared.peers {
            if let Some(client) = slot.lock().take() {
                client.stream.lock().shutdown_both();
            }
        }
    }

    /// Drain phase B: joins the acceptor, handler and reader threads.
    pub fn finish_shutdown(mut self) {
        self.begin_shutdown(); // idempotent; covers single-node callers
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        loop {
            let Some(handle) = self.shared.threads.lock().pop() else { break };
            let _ = handle.join();
        }
    }
}

/// A worker-side handle that ships [`FrameKind::Metrics`] snapshots to the
/// coordinator (created by [`SocketNode::metrics_publisher`]). Sends are
/// tolerant: a ticker thread must not crash the worker because the
/// coordinator went away mid-run.
pub struct MetricsPublisher {
    shared: Arc<NodeShared>,
    to: MachineId,
}

/// A read-only liveness view of a running [`SocketNode`]
/// ([`SocketNode::monitor`]): heartbeat recency and reconnect counts,
/// observable from a thread that does not own the node. The coordinator's
/// worker-loss detector polls this while the engine thread runs.
#[derive(Clone)]
pub struct NodeMonitor {
    shared: Arc<NodeShared>,
}

impl NodeMonitor {
    /// See [`SocketNode::heartbeats`].
    pub fn heartbeats(&self) -> HashMap<MachineId, Instant> {
        self.shared.control.heartbeats.lock().expect("heartbeat lock").clone()
    }

    /// See [`SocketNode::reconnects`].
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Relaxed)
    }
}

impl MetricsPublisher {
    /// Sends one full metrics snapshot (the `rads-obs` binary codec);
    /// returns `false` if the peer is unreachable or the write failed, so
    /// the ticker can stop.
    pub fn send(&self, payload: &[u8]) -> bool {
        const METRICS_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
        let Ok(client) = self.shared.try_peer(self.to, METRICS_CONNECT_TIMEOUT) else {
            return false;
        };
        let written = {
            let mut stream = client.stream.lock();
            write_frame(
                &mut *stream,
                FrameKind::Metrics,
                self.shared.machine as u64,
                QueryId::SOLO,
                payload,
            )
        };
        match written {
            Ok(written) => {
                self.shared.stats.record_control(self.shared.machine, written);
                true
            }
            Err(_) => false,
        }
    }
}

/// Polling accept loop: nonblocking accepts with a short sleep, so shutdown
/// needs no self-connection nudge and cannot race the listener teardown.
fn accept_loop(shared: Arc<NodeShared>, listener: SocketListener) {
    loop {
        if shared.control.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                stream.set_blocking().expect("accepted stream blocking");
                let handler_shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("rads-m{}-daemon-conn", shared.machine))
                    .spawn(move || serve_connection(handler_shared, stream))
                    .expect("spawn connection handler");
                shared.threads.lock().push(handle);
            }
            // WouldBlock is the idle poll; anything else (ECONNABORTED from
            // a peer dying mid-handshake, EINTR, transient resource
            // pressure) must not kill the acceptor — a node that stops
            // accepting strands every later peer in its connect retry.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Serves one inbound connection: requests are answered through the
/// [`Daemon`] (with `DeliverRows` intercepted into the local row exchange),
/// control frames update the node state. Returns when the peer closes or a
/// protocol violation occurs.
fn serve_connection(shared: Arc<NodeShared>, mut stream: SocketStream) {
    let mut peer: Option<MachineId> = None;
    loop {
        let frame = match read_message(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        match frame.kind {
            FrameKind::Hello => {
                if frame.payload.len() != 4 {
                    return;
                }
                let id = u32::from_le_bytes(frame.payload[..4].try_into().expect("4 bytes"));
                if (id as usize) < shared.machines() {
                    peer = Some(id as usize);
                } else {
                    return;
                }
            }
            FrameKind::Request => {
                // the handshake names the requester; a request before it is
                // a protocol violation
                let Some(from) = peer else { return };
                let Ok(envelope) = decode_envelope(&frame.payload) else { return };
                // the header query id exists so routers can classify frames
                // without decoding payloads — it must agree with the payload
                if envelope.query != frame.query {
                    return;
                }
                let query = envelope.query;
                let response = match envelope.body {
                    Request::DeliverRows { tag, rows } => {
                        shared.exchange.deliver(shared.machine, tag, rows);
                        Response::Ack
                    }
                    _ => shared.daemon.handle(from, envelope),
                };
                let mut payload = Vec::new();
                encode_response(&response, &mut payload);
                // write_message splits responses above the frame cap into a
                // continuation run; `written` covers every frame of the run.
                // The response echoes the request's query id, which the
                // requester's reader verifies against its pending slot.
                match write_message(
                    &mut stream,
                    FrameKind::Response,
                    frame.correlation,
                    query,
                    &payload,
                ) {
                    Ok(written) => {
                        shared.stats.record_response(shared.machine, from, written);
                        frame_bytes_histogram().observe(written as u64);
                    }
                    Err(e) => {
                        // The requester will only see "connection closed";
                        // name the real cause on this side before dropping
                        // the link.
                        eprintln!(
                            "machine {}: dropping connection from machine {from}: \
                             response of {} payload bytes failed to send: {e}",
                            shared.machine,
                            payload.len(),
                        );
                        return;
                    }
                }
            }
            FrameKind::Barrier => {
                // arrivals are attributed to the machine the handshake
                // named, so a timed-out wait can report who is missing
                let Some(from) = peer else { return };
                if frame.payload.len() != 8 {
                    return;
                }
                let epoch = u64::from_le_bytes(frame.payload[..8].try_into().expect("8 bytes"));
                shared.barrier.arrive(epoch, from);
            }
            FrameKind::Result => {
                let from = frame.correlation as MachineId;
                shared.control.record_heartbeat(from);
                shared
                    .control
                    .results
                    .lock()
                    .expect("results lock")
                    .insert((frame.query.0, from), frame.payload);
                shared.control.condvar.notify_all();
            }
            FrameKind::Metrics => {
                let from = frame.correlation as MachineId;
                if from >= shared.machines() {
                    return;
                }
                shared.control.record_heartbeat(from);
                shared
                    .control
                    .metrics
                    .lock()
                    .expect("metrics lock")
                    .insert(from, frame.payload);
            }
            FrameKind::Shutdown => {
                // flip the flag under the condvar's mutex: a waiter between
                // its flag check and its wait must not miss the notification
                let _waiters = shared.control.results.lock().expect("results lock");
                shared.control.shutdown.store(true, Ordering::SeqCst);
                shared.control.condvar.notify_all();
            }
            FrameKind::Response => return, // responses never arrive on inbound connections
            FrameKind::Continue => return, // read_message reassembles runs; a stray one is a bug
            // client-protocol frames: only the serve front-door listener
            // speaks them; on an inter-machine connection they are a
            // protocol violation
            FrameKind::Query | FrameKind::QueryResult => return,
        }
    }
}

/// The real-socket [`Transport`]: frames over TCP or Unix-domain sockets,
/// pipelined per peer connection, counting exactly the bytes on the wire.
pub struct SocketTransport {
    shared: Arc<NodeShared>,
}

impl Transport for SocketTransport {
    fn machine(&self) -> MachineId {
        self.shared.machine
    }

    fn machines(&self) -> usize {
        self.shared.machines()
    }

    fn request(&self, to: MachineId, envelope: Envelope) -> Result<Response, TransportError> {
        self.request_async(to, envelope).wait()
    }

    fn request_async(&self, to: MachineId, envelope: Envelope) -> PendingResponse {
        debug_assert_ne!(to, self.shared.machine, "local requests are served inline");
        let mut rpc_span = rads_obs::async_span(rpc_span_name(&envelope.body), "rpc");
        let query = envelope.query;
        let client = match self.shared.peer(to) {
            Ok(client) => client,
            Err(e) => return PendingResponse::failed(to, query, e),
        };
        let correlation = client.next_correlation.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        client.pending.lock().insert(correlation, (query, reply_tx));
        if client.closed.load(Ordering::SeqCst) {
            // reader already exited: a write could still land in the socket
            // buffer without error and nobody would ever deliver the reply
            client.pending.lock().remove(&correlation);
            return PendingResponse::failed(
                to,
                query,
                TransportError::Reset {
                    machine: self.shared.machine,
                    to,
                    detail: "connection is closed (peer died or sent a malformed response)"
                        .into(),
                },
            );
        }
        let mut payload = Vec::new();
        encode_envelope(&envelope, &mut payload);
        let written = {
            let mut stream = client.stream.lock();
            write_message(&mut *stream, FrameKind::Request, correlation, query, &payload)
        };
        let written = match written {
            Ok(written) => written,
            Err(e) => {
                client.pending.lock().remove(&correlation);
                return PendingResponse::failed(
                    to,
                    query,
                    TransportError::Reset {
                        machine: self.shared.machine,
                        to,
                        detail: format!("request (correlation {correlation}) failed to send: {e}"),
                    },
                );
            }
        };
        self.shared.stats.record_request(self.shared.machine, written);
        frame_bytes_histogram().observe(written as u64);
        rpc_span.attr("to", to as u64);
        rpc_span.attr("correlation", correlation);
        rpc_span.attr("query", query.0);
        rpc_span.attr("req_bytes", written as u64);
        let machine = self.shared.machine;
        PendingResponse::deferred(to, query, Some(correlation), move || {
            let response = reply_rx.recv().map_err(|_| TransportError::Reset {
                machine,
                to,
                detail: format!(
                    "connection closed before the response to correlation {correlation} arrived"
                ),
            })?;
            rpc_span.finish();
            Ok(response)
        })
    }

    fn barrier(&self) -> Result<(), TransportError> {
        let machines = self.shared.machines();
        if machines <= 1 {
            return Ok(());
        }
        let epoch = self.shared.barrier_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        // payload is the epoch alone; the receiver attributes the arrival
        // to the machine this connection's handshake named
        let payload = epoch.to_le_bytes();
        for to in 0..machines {
            if to != self.shared.machine {
                self.shared.send_control(to, FrameKind::Barrier, 0, QueryId::SOLO, &payload)?;
            }
        }
        let timeout = self.shared.barrier_timeout;
        self.shared.barrier.wait(epoch, machines - 1, timeout).map_err(|arrived| {
            let missing: Vec<MachineId> = (0..machines)
                .filter(|&m| m != self.shared.machine && !arrived.contains(&m))
                .collect();
            TransportError::BarrierTimeout {
                machine: self.shared.machine,
                epoch,
                missing,
                waited_ms: timeout.as_millis() as u64,
            }
        })
    }

    fn send_rows(
        &self,
        to: MachineId,
        tag: u32,
        rows: Vec<Vec<VertexId>>,
    ) -> Result<(), TransportError> {
        if rows.is_empty() {
            return Ok(());
        }
        if to == self.shared.machine {
            self.shared.exchange.deliver(to, tag, rows);
            return Ok(());
        }
        match self.request(to, Envelope::solo(Request::DeliverRows { tag, rows }))? {
            Response::Ack => Ok(()),
            // a non-Ack answer to DeliverRows is a protocol bug, not a
            // fabric fault; it must fail loudly rather than be retried
            other => panic!(
                "machine {}: DeliverRows to machine {to} answered {other:?}",
                self.shared.machine
            ),
        }
    }

    fn take_rows(&self, tag: u32) -> Vec<Vec<VertexId>> {
        self.shared.exchange.take(self.shared.machine, tag)
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.shared.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_kind_parses_and_falls_back() {
        assert_eq!(TransportKind::parse("uds"), Some(TransportKind::Uds));
        assert_eq!(TransportKind::parse("UNIX"), Some(TransportKind::Uds));
        assert_eq!(TransportKind::parse("tcp"), Some(TransportKind::Tcp));
        assert_eq!(TransportKind::parse("in-process"), Some(TransportKind::InProcess));
        assert_eq!(TransportKind::parse("channel"), Some(TransportKind::InProcess));
        assert_eq!(TransportKind::parse("smoke-signals"), None);
        if cfg!(unix) {
            assert_eq!(TransportKind::Uds.effective(), TransportKind::Uds);
        } else {
            assert_eq!(TransportKind::Uds.effective(), TransportKind::Tcp);
        }
    }

    #[test]
    fn unknown_transport_env_is_a_typed_config_error() {
        assert_eq!(TransportKind::from_env_value(None), Ok(TransportKind::InProcess));
        assert_eq!(TransportKind::from_env_value(Some("tcp")), Ok(TransportKind::Tcp));
        let err = TransportKind::from_env_value(Some("carrier-pigeon")).unwrap_err();
        assert_eq!(err.var, TRANSPORT_ENV);
        assert_eq!(err.value, "carrier-pigeon");
        assert!(err.to_string().contains("in-process | uds | tcp"), "{err}");
    }

    #[test]
    fn barrier_timeout_env_parses_or_errors() {
        assert_eq!(barrier_timeout_from_value(None), Ok(DEFAULT_BARRIER_TIMEOUT));
        assert_eq!(barrier_timeout_from_value(Some("7")), Ok(Duration::from_secs(7)));
        for bad in ["0", "-3", "soon", ""] {
            let err = barrier_timeout_from_value(Some(bad)).unwrap_err();
            assert_eq!(err.var, BARRIER_TIMEOUT_ENV, "{bad:?}");
            assert_eq!(err.value, bad);
        }
    }

    #[test]
    fn peer_addr_parses_both_schemes() {
        assert_eq!(
            PeerAddr::parse("tcp:127.0.0.1:4100"),
            Ok(PeerAddr::Tcp("127.0.0.1:4100".into()))
        );
        assert_eq!(PeerAddr::parse("uds:/tmp/m0.sock"), Ok(PeerAddr::Uds("/tmp/m0.sock".into())));
        assert!(PeerAddr::parse("carrier-pigeon:coop").is_err());
        assert!(PeerAddr::parse("tcp:").is_err());
        assert!(PeerAddr::parse("uds:").is_err());
        assert_eq!(PeerAddr::parse("uds:/tmp/x.sock").unwrap().to_string(), "uds:/tmp/x.sock");
    }

    #[test]
    fn barrier_state_attributes_arrivals_per_epoch() {
        let b = BarrierState::default();
        b.arrive(1, 1);
        b.arrive(1, 2);
        b.arrive(2, 2);
        // returns immediately: both arrivals are in
        b.wait(1, 2, Duration::from_secs(5)).expect("epoch 1 is complete");
        // epoch 1 was consumed, epoch 2 still has its single arrival
        assert_eq!(b.arrived.lock().unwrap().get(&2), Some(&vec![2]));
        assert!(b.arrived.lock().unwrap().get(&1).is_none());
    }

    #[test]
    fn barrier_wait_times_out_naming_who_arrived() {
        let b = BarrierState::default();
        b.arrive(5, 3);
        let arrived = b
            .wait(5, 2, Duration::from_millis(20))
            .expect_err("epoch 5 can never complete");
        assert_eq!(arrived, vec![3]);
        // the partial epoch is left in place for diagnosis, not consumed
        assert_eq!(b.arrived.lock().unwrap().get(&5), Some(&vec![3]));
    }

    #[test]
    fn scratch_socket_dirs_are_unique() {
        let a = scratch_socket_dir();
        let b = scratch_socket_dir();
        assert_ne!(a, b);
        assert!(a.exists() && b.exists());
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }
}
