//! Messages exchanged between machines, and the query-scoped [`Envelope`]
//! every transport carries.

use rads_graph::VertexId;

/// Identifies one query's traffic across the whole cluster.
///
/// Every engine-facing request travels inside an [`Envelope`] tagged with
/// the query it belongs to, which is what lets a resident serve cluster run
/// several enumerations concurrently over one fabric: daemons route
/// `checkR` / `shareR` to the right per-query state, result frames are
/// collected per query, and a late or duplicated frame can never be matched
/// to the wrong query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QueryId(pub u64);

impl QueryId {
    /// The id of a one-shot (batch) run. Processes that never multiplex —
    /// `rads-node run` clusters, the experiments, every test that calls
    /// [`crate::Cluster::run`] directly — send all their traffic under this
    /// id; only the serve scheduler allocates others (starting at 1).
    pub const SOLO: QueryId = QueryId(0);
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A request sent to another machine's daemon.
///
/// The first four variants are the daemon functionalities of Section 3.1;
/// `DeliverRows` is the shuffle primitive the synchronous baselines use to
/// redistribute intermediate results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `verifyE`: does each of these data edges exist? The receiver must own
    /// at least one endpoint of every pair.
    VerifyEdges(Vec<(VertexId, VertexId)>),
    /// `fetchV`: return the adjacency lists of these vertices (which must be
    /// owned by the receiver).
    FetchVertices(Vec<VertexId>),
    /// `checkR`: how many unprocessed region groups does the receiver have?
    CheckRegionGroups,
    /// `shareR`: hand one unprocessed region group to the requester (and mark
    /// it processed locally).
    ShareRegionGroup,
    /// Deliver a batch of partial results (rows of data vertices) tagged with
    /// an algorithm-specific channel id. Used by PSgL / TwinTwig / SEED /
    /// Crystal for shuffling; RADS never sends this.
    DeliverRows {
        /// Algorithm-specific stream tag (e.g. join round number).
        tag: u32,
        /// The rows; all rows in one message have the same arity.
        rows: Vec<Vec<VertexId>>,
    },
    /// Serving mode: the coordinator tells a worker to run one query on the
    /// resident cluster. The worker acknowledges immediately (`Ack`), runs
    /// the engine on its own thread, and delivers its per-query report as a
    /// result frame — a long-running enumeration must not hold a daemon
    /// connection handler hostage.
    Query {
        /// The serve scheduler's query id; matches the [`Envelope::query`]
        /// the dispatch travels under, and the worker echoes it in its
        /// report so a late report can never be matched to the wrong query.
        id: u64,
        /// Pattern name (`rads_graph::queries::query_by_name`).
        pattern: String,
        /// Per-query memory budget `Φ` override in bytes (`None` = the
        /// budget the serve cluster was started with).
        budget: Option<u64>,
    },
}

/// A query-scoped request envelope: what every [`crate::Transport`] carries.
///
/// PR 9's serving daemon exposed the limits of ad-hoc `(Request,
/// correlation id)` pairing: the correlation id matches a response to its
/// request *on one connection*, but nothing said which **query** a request
/// belonged to, so a machine could install only one set of per-query daemon
/// state at a time and serve execution was serialized. The envelope
/// promotes the pairing into a first-class type:
///
/// * [`query`](Envelope::query) — which enumeration this request serves.
///   Daemons use it to route `checkR` / `shareR` to the right per-query
///   region-group state; the wire codec stamps it into the frame header so
///   routers can classify frames without decoding payloads.
/// * [`seq`](Envelope::seq) — the sender's per-query issue counter. A
///   retried request is re-issued under a *fresh* seq (and a fresh wire
///   correlation id), so `(sender, query, seq)` names one transmission
///   attempt — useful in traces and fault forensics; nothing correlates on
///   it.
/// * [`body`](Envelope::body) — the request itself.
///
/// # Compatibility contract
///
/// The envelope is versioned on the wire: every frame carries
/// [`crate::wire::WIRE_VERSION`] in its body header, and a frame from a
/// peer speaking an older (pre-envelope) revision of the protocol is
/// rejected with a typed [`crate::wire::WireError::Version`] — never
/// misparsed, never a panic. Within one version: query id 0
/// ([`QueryId::SOLO`]) is reserved for single-tenant (batch) traffic, the
/// serve scheduler allocates ids from 1, and every `Response` frame echoes
/// the query id of the request it answers, so receivers can validate the
/// correlation-id match against the query scope. Barriers and row
/// exchange remain *cluster*-scoped: they are only used by the one-shot
/// baselines (RADS proper never calls them on its serving path), which by
/// construction never overlap with other queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The query this request belongs to ([`QueryId::SOLO`] outside serve).
    pub query: QueryId,
    /// Sender-side issue counter within the query (fresh per transmission).
    pub seq: u64,
    /// The request itself.
    pub body: Request,
}

impl Envelope {
    /// An envelope on the one-shot ([`QueryId::SOLO`]) stream — what every
    /// caller outside the serve scheduler sends.
    pub fn solo(body: Request) -> Envelope {
        Envelope { query: QueryId::SOLO, seq: 0, body }
    }

    /// An envelope of query `query` with issue counter `seq`.
    pub fn new(query: QueryId, seq: u64, body: Request) -> Envelope {
        Envelope { query, seq, body }
    }

    /// Whether re-issuing `body` (after a transport failure, under a fresh
    /// seq and correlation id) cannot change any machine's state or results.
    ///
    /// `verifyE`, `fetchV` and `checkR` are pure reads over the receiver's
    /// partition (or its region-group queue length) — answering them twice
    /// is harmless, so the retry/backoff layer may re-send them freely.
    /// `shareR` *pops* the receiver's queue (a duplicate would lose a
    /// region group) and `DeliverRows` appends to the receiver's inbox (a
    /// duplicate would double rows); neither may be blindly re-sent.
    /// `Query` starts an engine run on the receiver (a duplicate would run
    /// — and count — the query twice), so it is never retried either.
    pub fn is_idempotent(body: &Request) -> bool {
        match body {
            Request::VerifyEdges(_) | Request::FetchVertices(_) | Request::CheckRegionGroups => {
                true
            }
            Request::ShareRegionGroup
            | Request::DeliverRows { .. }
            | Request::Query { .. } => false,
        }
    }

    /// [`Envelope::is_idempotent`] of this envelope's body.
    pub fn idempotent(&self) -> bool {
        Self::is_idempotent(&self.body)
    }

    /// Number of bytes this envelope's request occupies on the simulated
    /// wire (the paper's cost model; the socket transport records real
    /// framed bytes instead). Query-independent by design: tagging a
    /// request with a serve query id must not change the traffic model.
    pub fn request_bytes(&self) -> usize {
        MESSAGE_OVERHEAD_BYTES + request_body_cost(&self.body)
    }
}

/// A response returned by a daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::VerifyEdges`], in request order.
    EdgeVerification(Vec<bool>),
    /// Answer to [`Request::FetchVertices`]: `(vertex, adjacency list)` pairs.
    Adjacency(Vec<(VertexId, Vec<VertexId>)>),
    /// Answer to [`Request::CheckRegionGroups`].
    RegionGroupCount(usize),
    /// Answer to [`Request::ShareRegionGroup`]: a region group (candidate
    /// vertices of the start query vertex), or `None` if none remain.
    RegionGroup(Option<Vec<VertexId>>),
    /// Generic acknowledgement (used for [`Request::DeliverRows`] and
    /// [`Request::Query`] — the query *report* arrives later, as a result
    /// frame).
    Ack,
    /// The receiving daemon does not implement the request.
    Unsupported,
    /// Serving mode: a worker's per-query report, opaque to the runtime (the
    /// serve layer defines the payload: query id, counts, per-query stats).
    /// Emitted by serve daemons answering a follow-up poll; the primary
    /// delivery path is the result frame.
    QueryDone(Vec<u8>),
}

const VERTEX_BYTES: usize = std::mem::size_of::<VertexId>();
/// Fixed per-message envelope overhead (headers, tags) charged by the
/// accounting model.
pub const MESSAGE_OVERHEAD_BYTES: usize = 16;

/// Modelled payload cost of a request body, without the fixed envelope
/// overhead ([`Envelope::request_bytes`] adds it).
pub(crate) fn request_body_cost(request: &Request) -> usize {
    match request {
        Request::VerifyEdges(pairs) => pairs.len() * 2 * VERTEX_BYTES,
        Request::FetchVertices(vs) => vs.len() * VERTEX_BYTES,
        Request::CheckRegionGroups | Request::ShareRegionGroup => 0,
        Request::DeliverRows { rows, .. } => {
            4 + rows.iter().map(|r| r.len() * VERTEX_BYTES).sum::<usize>()
        }
        Request::Query { pattern, .. } => 8 + pattern.len() + 9,
    }
}

/// Number of bytes a response occupies on the simulated wire.
pub fn response_bytes(response: &Response) -> usize {
    MESSAGE_OVERHEAD_BYTES
        + match response {
            Response::EdgeVerification(bits) => bits.len(),
            Response::Adjacency(lists) => lists
                .iter()
                .map(|(_, adj)| VERTEX_BYTES + adj.len() * VERTEX_BYTES)
                .sum(),
            Response::RegionGroupCount(_) => 8,
            Response::RegionGroup(Some(vs)) => vs.len() * VERTEX_BYTES,
            Response::RegionGroup(None) => 1,
            Response::Ack | Response::Unsupported => 1,
            Response::QueryDone(payload) => payload.len(),
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solo_bytes(request: Request) -> usize {
        Envelope::solo(request).request_bytes()
    }

    #[test]
    fn request_sizes_scale_with_payload() {
        let small = solo_bytes(Request::VerifyEdges(vec![(0, 1)]));
        let large = solo_bytes(Request::VerifyEdges((0..100).map(|i| (i, i + 1)).collect()));
        assert!(large > small);
        assert_eq!(small, MESSAGE_OVERHEAD_BYTES + 8);
        assert_eq!(solo_bytes(Request::CheckRegionGroups), MESSAGE_OVERHEAD_BYTES);
    }

    #[test]
    fn envelope_cost_is_query_independent() {
        // Concurrency equivalence pins serial == overlapped counts *and*
        // accounting, so the byte charge must depend only on the body.
        let body = Request::FetchVertices(vec![1, 2, 3]);
        let solo = Envelope::solo(body.clone());
        let scoped = Envelope::new(QueryId(42), 7, body);
        assert_eq!(solo.request_bytes(), scoped.request_bytes());
    }

    #[test]
    fn response_sizes_scale_with_payload() {
        let adj = Response::Adjacency(vec![(5, vec![1, 2, 3])]);
        assert_eq!(response_bytes(&adj), MESSAGE_OVERHEAD_BYTES + 4 + 12);
        let verdicts = Response::EdgeVerification(vec![true; 10]);
        assert_eq!(response_bytes(&verdicts), MESSAGE_OVERHEAD_BYTES + 10);
        assert_eq!(response_bytes(&Response::Ack), MESSAGE_OVERHEAD_BYTES + 1);
    }

    #[test]
    fn deliver_rows_accounts_every_vertex() {
        let rows = Request::DeliverRows { tag: 3, rows: vec![vec![1, 2, 3], vec![4, 5, 6]] };
        assert_eq!(solo_bytes(rows), MESSAGE_OVERHEAD_BYTES + 4 + 24);
    }

    #[test]
    fn only_pure_reads_are_idempotent() {
        assert!(Envelope::solo(Request::VerifyEdges(vec![(0, 1)])).idempotent());
        assert!(Envelope::solo(Request::FetchVertices(vec![1])).idempotent());
        assert!(Envelope::is_idempotent(&Request::CheckRegionGroups));
        assert!(!Envelope::is_idempotent(&Request::ShareRegionGroup), "shareR pops the queue");
        assert!(!Envelope::is_idempotent(&Request::DeliverRows { tag: 0, rows: vec![] }));
        assert!(
            !Envelope::solo(Request::Query { id: 1, pattern: "q1".into(), budget: None })
                .idempotent(),
            "a re-sent Query would run the engine twice"
        );
    }

    #[test]
    fn query_messages_account_their_payload() {
        let q = Request::Query { id: 7, pattern: "q1".into(), budget: Some(4096) };
        assert_eq!(solo_bytes(q), MESSAGE_OVERHEAD_BYTES + 8 + 2 + 9);
        let done = Response::QueryDone(vec![0u8; 84]);
        assert_eq!(response_bytes(&done), MESSAGE_OVERHEAD_BYTES + 84);
    }

    #[test]
    fn query_ids_display_compactly() {
        assert_eq!(QueryId::SOLO.to_string(), "q0");
        assert_eq!(QueryId(17).to_string(), "q17");
        assert_eq!(QueryId::default(), QueryId::SOLO);
    }
}
