//! Messages exchanged between machines.

use rads_graph::VertexId;

/// A request sent to another machine's daemon.
///
/// The first four variants are the daemon functionalities of Section 3.1;
/// `DeliverRows` is the shuffle primitive the synchronous baselines use to
/// redistribute intermediate results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `verifyE`: does each of these data edges exist? The receiver must own
    /// at least one endpoint of every pair.
    VerifyEdges(Vec<(VertexId, VertexId)>),
    /// `fetchV`: return the adjacency lists of these vertices (which must be
    /// owned by the receiver).
    FetchVertices(Vec<VertexId>),
    /// `checkR`: how many unprocessed region groups does the receiver have?
    CheckRegionGroups,
    /// `shareR`: hand one unprocessed region group to the requester (and mark
    /// it processed locally).
    ShareRegionGroup,
    /// Deliver a batch of partial results (rows of data vertices) tagged with
    /// an algorithm-specific channel id. Used by PSgL / TwinTwig / SEED /
    /// Crystal for shuffling; RADS never sends this.
    DeliverRows {
        /// Algorithm-specific stream tag (e.g. join round number).
        tag: u32,
        /// The rows; all rows in one message have the same arity.
        rows: Vec<Vec<VertexId>>,
    },
    /// Serving mode: the coordinator tells a worker to run one query on the
    /// resident cluster. The worker acknowledges immediately (`Ack`), runs
    /// the engine on its own thread, and delivers its per-query report as a
    /// result frame — a long-running enumeration must not hold a daemon
    /// connection handler hostage.
    Query {
        /// Monotonically increasing per-serve-session query id; the worker
        /// echoes it in its report so a late report can never be matched to
        /// the wrong query.
        id: u64,
        /// Pattern name (`rads_graph::queries::query_by_name`).
        pattern: String,
        /// Per-query memory budget `Φ` override in bytes (`None` = the
        /// budget the serve cluster was started with).
        budget: Option<u64>,
    },
}

impl Request {
    /// Whether re-issuing this request (after a transport failure, under a
    /// fresh correlation id) cannot change any machine's state or results.
    ///
    /// `verifyE`, `fetchV` and `checkR` are pure reads over the receiver's
    /// partition (or its region-group queue length) — answering them twice
    /// is harmless, so the retry/backoff layer may re-send them freely.
    /// `shareR` *pops* the receiver's queue (a duplicate would lose a
    /// region group) and `DeliverRows` appends to the receiver's inbox (a
    /// duplicate would double rows); neither may be blindly re-sent.
    /// `Query` starts an engine run on the receiver (a duplicate would run
    /// — and count — the query twice), so it is never retried either.
    pub fn idempotent(&self) -> bool {
        match self {
            Request::VerifyEdges(_) | Request::FetchVertices(_) | Request::CheckRegionGroups => {
                true
            }
            Request::ShareRegionGroup
            | Request::DeliverRows { .. }
            | Request::Query { .. } => false,
        }
    }
}

/// A response returned by a daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::VerifyEdges`], in request order.
    EdgeVerification(Vec<bool>),
    /// Answer to [`Request::FetchVertices`]: `(vertex, adjacency list)` pairs.
    Adjacency(Vec<(VertexId, Vec<VertexId>)>),
    /// Answer to [`Request::CheckRegionGroups`].
    RegionGroupCount(usize),
    /// Answer to [`Request::ShareRegionGroup`]: a region group (candidate
    /// vertices of the start query vertex), or `None` if none remain.
    RegionGroup(Option<Vec<VertexId>>),
    /// Generic acknowledgement (used for [`Request::DeliverRows`] and
    /// [`Request::Query`] — the query *report* arrives later, as a result
    /// frame).
    Ack,
    /// The receiving daemon does not implement the request.
    Unsupported,
    /// Serving mode: a worker's per-query report, opaque to the runtime (the
    /// serve layer defines the payload: query id, counts, per-query stats).
    /// Emitted by serve daemons answering a follow-up poll; the primary
    /// delivery path is the result frame.
    QueryDone(Vec<u8>),
}

const VERTEX_BYTES: usize = std::mem::size_of::<VertexId>();
/// Fixed per-message envelope overhead (headers, tags) charged by the
/// accounting model.
pub const MESSAGE_OVERHEAD_BYTES: usize = 16;

/// Number of bytes a request occupies on the simulated wire.
pub fn request_bytes(request: &Request) -> usize {
    MESSAGE_OVERHEAD_BYTES
        + match request {
            Request::VerifyEdges(pairs) => pairs.len() * 2 * VERTEX_BYTES,
            Request::FetchVertices(vs) => vs.len() * VERTEX_BYTES,
            Request::CheckRegionGroups | Request::ShareRegionGroup => 0,
            Request::DeliverRows { rows, .. } => {
                4 + rows.iter().map(|r| r.len() * VERTEX_BYTES).sum::<usize>()
            }
            Request::Query { pattern, .. } => 8 + pattern.len() + 9,
        }
}

/// Number of bytes a response occupies on the simulated wire.
pub fn response_bytes(response: &Response) -> usize {
    MESSAGE_OVERHEAD_BYTES
        + match response {
            Response::EdgeVerification(bits) => bits.len(),
            Response::Adjacency(lists) => lists
                .iter()
                .map(|(_, adj)| VERTEX_BYTES + adj.len() * VERTEX_BYTES)
                .sum(),
            Response::RegionGroupCount(_) => 8,
            Response::RegionGroup(Some(vs)) => vs.len() * VERTEX_BYTES,
            Response::RegionGroup(None) => 1,
            Response::Ack | Response::Unsupported => 1,
            Response::QueryDone(payload) => payload.len(),
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_scale_with_payload() {
        let small = Request::VerifyEdges(vec![(0, 1)]);
        let large = Request::VerifyEdges((0..100).map(|i| (i, i + 1)).collect());
        assert!(request_bytes(&large) > request_bytes(&small));
        assert_eq!(request_bytes(&small), MESSAGE_OVERHEAD_BYTES + 8);
        assert_eq!(request_bytes(&Request::CheckRegionGroups), MESSAGE_OVERHEAD_BYTES);
    }

    #[test]
    fn response_sizes_scale_with_payload() {
        let adj = Response::Adjacency(vec![(5, vec![1, 2, 3])]);
        assert_eq!(response_bytes(&adj), MESSAGE_OVERHEAD_BYTES + 4 + 12);
        let verdicts = Response::EdgeVerification(vec![true; 10]);
        assert_eq!(response_bytes(&verdicts), MESSAGE_OVERHEAD_BYTES + 10);
        assert_eq!(response_bytes(&Response::Ack), MESSAGE_OVERHEAD_BYTES + 1);
    }

    #[test]
    fn deliver_rows_accounts_every_vertex() {
        let rows = Request::DeliverRows { tag: 3, rows: vec![vec![1, 2, 3], vec![4, 5, 6]] };
        assert_eq!(request_bytes(&rows), MESSAGE_OVERHEAD_BYTES + 4 + 24);
    }

    #[test]
    fn only_pure_reads_are_idempotent() {
        assert!(Request::VerifyEdges(vec![(0, 1)]).idempotent());
        assert!(Request::FetchVertices(vec![1]).idempotent());
        assert!(Request::CheckRegionGroups.idempotent());
        assert!(!Request::ShareRegionGroup.idempotent(), "shareR pops the queue");
        assert!(!Request::DeliverRows { tag: 0, rows: vec![] }.idempotent());
        assert!(
            !Request::Query { id: 1, pattern: "q1".into(), budget: None }.idempotent(),
            "a re-sent Query would run the engine twice"
        );
    }

    #[test]
    fn query_messages_account_their_payload() {
        let q = Request::Query { id: 7, pattern: "q1".into(), budget: Some(4096) };
        assert_eq!(request_bytes(&q), MESSAGE_OVERHEAD_BYTES + 8 + 2 + 9);
        let done = Response::QueryDone(vec![0u8; 84]);
        assert_eq!(response_bytes(&done), MESSAGE_OVERHEAD_BYTES + 84);
    }
}
