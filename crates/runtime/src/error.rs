//! Typed failures of the cluster fabric and its configuration.
//!
//! Before this module every transport failure was a `panic!`/`expect`
//! somewhere inside the fabric: a daemon dying mid-run, a reset peer
//! connection or a malformed frame aborted the whole process. The engines
//! now receive every one of those conditions as a [`TransportError`] and
//! decide what to do — retry idempotent reads, reconnect, recompute, or
//! surface a structured per-machine report (see the `RADS_FAULT_POLICY`
//! handling in `rads-bench`).
//!
//! The variants mirror the distinct *recovery strategies*, not the
//! underlying syscalls:
//!
//! * [`TransportError::ConnectRefused`] / [`TransportError::Reset`] /
//!   [`TransportError::Timeout`] / [`TransportError::Decode`] are
//!   **transient** ([`TransportError::is_transient`]): the request may
//!   never have been processed, or the reply was lost, and for an
//!   idempotent read (`fetchV` / `verifyE` / `checkR`) re-issuing it under
//!   a fresh correlation id — after a reconnect if the connection died —
//!   is always sound. A decode failure kills the whole connection (framing
//!   sync is gone), which is why it is retryable: the retry travels over a
//!   *new* connection.
//! * [`TransportError::PeerDead`] is **terminal**: the peer was confirmed
//!   gone (its process exited, or reconnecting kept failing past the
//!   deadline). Retrying cannot help; the caller escalates to the fault
//!   policy.
//! * [`TransportError::BarrierTimeout`] is **terminal and attributed**: the
//!   barrier waited out its deadline and names exactly which machines never
//!   arrived at the epoch, so the operator (or the fail-fast report) sees
//!   *who* is missing instead of a hung process.
//!
//! [`ConfigError`] is the same idea applied to environment parsing: an
//! unknown `RADS_TRANSPORT`, a malformed `RADS_MEMORY_BUDGET` or
//! `RADS_ROUND_DRIVER` used to `panic!` deep inside a constructor; parsers
//! now return a value naming the variable, the offending value and what
//! would have been accepted, and binaries exit cleanly with that message.

use rads_partition::MachineId;

/// Why an RPC, barrier or control-frame exchange failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Establishing a connection to the peer failed (refused, unreachable,
    /// socket file missing) and kept failing until the connect deadline.
    ConnectRefused {
        /// The machine that attempted the connection.
        machine: MachineId,
        /// The peer it tried to reach.
        to: MachineId,
        /// The underlying I/O error text.
        detail: String,
    },
    /// An established connection died: the write failed, or the reader
    /// thread saw the stream close with replies still outstanding.
    Reset {
        /// The machine that held the connection.
        machine: MachineId,
        /// The peer whose connection died.
        to: MachineId,
        /// What the fabric observed.
        detail: String,
    },
    /// A reply (or an acknowledgement) did not arrive within the deadline.
    Timeout {
        /// The machine that waited.
        machine: MachineId,
        /// What was being waited for (request name or exchange).
        what: String,
        /// How long it waited before giving up.
        waited_ms: u64,
    },
    /// The peer sent bytes that are not a valid frame or message. The
    /// connection is torn down (framing sync cannot be recovered); the
    /// retry path reconnects.
    Decode {
        /// The machine that received the garbage.
        machine: MachineId,
        /// The peer that sent it.
        to: MachineId,
        /// The wire-codec error text.
        detail: String,
    },
    /// The peer is confirmed gone: reconnect attempts exhausted their
    /// deadline, or its process was observed to exit. Not retryable.
    PeerDead {
        /// The machine reporting the death.
        machine: MachineId,
        /// The dead peer.
        to: MachineId,
        /// The evidence.
        detail: String,
    },
    /// A distributed barrier timed out, naming the machines that never
    /// arrived at the epoch. Not retryable (the missing machines are either
    /// dead or wedged; re-entering the barrier cannot make them arrive).
    BarrierTimeout {
        /// The machine that waited at the barrier.
        machine: MachineId,
        /// The barrier epoch that never completed.
        epoch: u64,
        /// The machines whose arrival notification never came.
        missing: Vec<MachineId>,
        /// How long the barrier waited before giving up.
        waited_ms: u64,
    },
}

impl TransportError {
    /// Whether re-issuing the failed operation (for an idempotent request,
    /// under a fresh correlation id, reconnecting first if needed) is
    /// sound and has a chance of succeeding. See the module docs for the
    /// per-variant rationale.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TransportError::ConnectRefused { .. }
                | TransportError::Reset { .. }
                | TransportError::Timeout { .. }
                | TransportError::Decode { .. }
        )
    }

    /// The peer this failure implicates, when there is a single one
    /// (barrier timeouts implicate a set instead).
    pub fn peer(&self) -> Option<MachineId> {
        match self {
            TransportError::ConnectRefused { to, .. }
            | TransportError::Reset { to, .. }
            | TransportError::Decode { to, .. }
            | TransportError::PeerDead { to, .. } => Some(*to),
            TransportError::Timeout { .. } | TransportError::BarrierTimeout { .. } => None,
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::ConnectRefused { machine, to, detail } => {
                write!(f, "machine {machine}: connecting to machine {to} failed: {detail}")
            }
            TransportError::Reset { machine, to, detail } => {
                write!(f, "machine {machine}: connection to machine {to} reset: {detail}")
            }
            TransportError::Timeout { machine, what, waited_ms } => {
                write!(f, "machine {machine}: {what} timed out after {waited_ms} ms")
            }
            TransportError::Decode { machine, to, detail } => {
                write!(f, "machine {machine}: undecodable frame from machine {to}: {detail}")
            }
            TransportError::PeerDead { machine, to, detail } => {
                write!(f, "machine {machine}: machine {to} is dead: {detail}")
            }
            TransportError::BarrierTimeout { machine, epoch, missing, waited_ms } => {
                let names: Vec<String> = missing.iter().map(|m| format!("m{m}")).collect();
                write!(
                    f,
                    "machine {machine}: barrier epoch {epoch} timed out after {waited_ms} ms; \
                     missing: [{}]",
                    names.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A malformed or unknown value in a `RADS_*` environment variable (or the
/// CLI flag mirroring it): names the variable, the offending value and the
/// accepted grammar, instead of panicking inside a constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The environment variable (or flag) that held the bad value.
    pub var: &'static str,
    /// The value that failed to parse.
    pub value: String,
    /// Human-readable statement of what would have been accepted.
    pub expected: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={:?} is invalid: expected {}", self.var, self.value, self.expected)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification_matches_the_recovery_table() {
        let transient: Vec<TransportError> = vec![
            TransportError::ConnectRefused { machine: 0, to: 1, detail: "refused".into() },
            TransportError::Reset { machine: 0, to: 1, detail: "eof".into() },
            TransportError::Timeout { machine: 0, what: "rpc.fetchV".into(), waited_ms: 10 },
            TransportError::Decode { machine: 0, to: 1, detail: "unknown frame kind 9".into() },
        ];
        for e in &transient {
            assert!(e.is_transient(), "{e} should be transient");
        }
        let terminal: Vec<TransportError> = vec![
            TransportError::PeerDead { machine: 0, to: 2, detail: "exited".into() },
            TransportError::BarrierTimeout { machine: 0, epoch: 3, missing: vec![2], waited_ms: 5 },
        ];
        for e in &terminal {
            assert!(!e.is_transient(), "{e} should be terminal");
        }
    }

    #[test]
    fn barrier_timeout_names_the_missing_machines() {
        let e = TransportError::BarrierTimeout {
            machine: 0,
            epoch: 7,
            missing: vec![1, 3],
            waited_ms: 1500,
        };
        let text = e.to_string();
        assert!(text.contains("epoch 7"), "{text}");
        assert!(text.contains("m1, m3"), "{text}");
        assert!(text.contains("1500 ms"), "{text}");
    }

    #[test]
    fn config_error_names_variable_value_and_grammar() {
        let e = ConfigError {
            var: "RADS_TRANSPORT",
            value: "smoke-signals".into(),
            expected: "in-process | uds | tcp",
        };
        let text = e.to_string();
        assert!(text.contains("RADS_TRANSPORT"), "{text}");
        assert!(text.contains("smoke-signals"), "{text}");
        assert!(text.contains("in-process | uds | tcp"), "{text}");
    }

    #[test]
    fn peer_attribution() {
        assert_eq!(
            TransportError::Reset { machine: 0, to: 4, detail: String::new() }.peer(),
            Some(4)
        );
        assert_eq!(
            TransportError::Timeout { machine: 0, what: "x".into(), waited_ms: 1 }.peer(),
            None
        );
    }
}
