//! Observability layer for the RADS engine.
//!
//! Two facilities, both process-global, both gated by environment toggles
//! and runtime overrides so instrumentation can ship in release builds:
//!
//! * [`trace`] — structured spans (query → region group → round →
//!   scatter/harvest/expand/verifyE, plus per-RPC spans on the transports)
//!   drained to Chrome trace-event JSON. Toggle: `RADS_TRACE` /
//!   [`set_trace_enabled`].
//! * [`metrics`] — a named registry of counters, gauges, and fixed-bucket
//!   histograms, exported as a JSON snapshot, a Prometheus-style text page,
//!   or a compact binary frame for cluster-wide aggregation. Toggle:
//!   `RADS_METRICS` / [`set_metrics_enabled`].
//!
//! When a toggle is off the recording calls compile to a relaxed atomic
//! load and a branch — cheap enough to leave on every hot path. When on,
//! the overhead budget is ≤2% of engine throughput (pinned by the
//! `observe` experiment in the bench crate).
//!
//! See the module docs of [`trace`] and [`metrics`] for the span and
//! metric naming conventions.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod http;
pub mod metrics;
pub mod trace;

pub use http::MetricsHttpServer;
pub use metrics::{
    metrics_enabled, set_metrics_enabled, Counter, EpochLedger, Gauge, Histogram, MetricEntry,
    MetricValue, MetricsSnapshot, Registry, METRICS_ENV,
};
pub use trace::{
    async_span, discard_trace, drain_chrome_trace, flush_thread, set_trace_enabled,
    set_trace_process, span, trace_enabled, AsyncSpan, SpanGuard, TRACE_ENV,
};

/// Bucket bounds (µs) for latency histograms such as
/// `rads_fetch_demand_wait_us`.
pub const WAIT_US_BUCKETS: &[u64] =
    &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Bucket bounds (bytes) for frame/message size histograms such as
/// `rads_net_frame_bytes`.
pub const FRAME_BYTES_BUCKETS: &[u64] =
    &[64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20];

/// Bucket bounds (bytes) for memory-footprint histograms such as
/// `rads_governor_live_bytes`.
pub const LIVE_BYTES_BUCKETS: &[u64] =
    &[64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30];

/// Bucket bounds for small-depth histograms such as
/// `rads_inflight_window_depth`.
pub const DEPTH_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Bucket bounds (percent) for ratio histograms such as
/// `rads_intersect_selectivity_pct`.
pub const PERCENT_BUCKETS: &[u64] = &[1, 2, 5, 10, 20, 35, 50, 75, 100];
