//! Minimal HTTP/1.0 endpoint that continuously serves the process-global
//! registry as a Prometheus text page.
//!
//! Serving mode runs for hours; operators point a Prometheus scraper (or
//! `curl`) at this listener instead of waiting for an end-of-run JSON blob.
//! The implementation is deliberately tiny — a blocking accept loop on a
//! background thread, one response per connection, no keep-alive, no
//! routing (every path gets the metrics page) — because the only client is
//! a scraper hitting it every few seconds.
//!
//! The page renders [`Registry::global`]'s *cumulative* snapshot
//! ([`crate::MetricsSnapshot::to_prometheus`]); per-query deltas are a reporting
//! concern of the serve layer ([`crate::MetricsSnapshot::delta_since`]), not of
//! the scrape endpoint — Prometheus expects cumulative counters and
//! computes rates itself.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::Registry;

/// How long the accept loop sleeps between polls of the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// A background thread serving `Registry::global()` as Prometheus text.
pub struct MetricsHttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn bind(addr: &str) -> std::io::Result<MetricsHttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // nonblocking accept + poll: a blocking accept would pin the thread
        // past `stop()` until one more scrape arrived
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rads-metrics-http".into())
            .spawn(move || accept_loop(listener, &stop_flag))
            .expect("spawn metrics http thread");
        Ok(MetricsHttpServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsHttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_scrape(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answers one scrape: drain whatever request line arrived, send the page,
/// close. Any I/O error just drops the connection — the scraper retries.
fn serve_scrape(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // read (and discard) the request head; we serve the same page for every
    // path, so only "the client sent *something*" matters
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = Registry::global().snapshot().to_prometheus();
    let response = format!(
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::set_metrics_enabled;

    #[test]
    fn serves_the_global_registry_as_prometheus_text() {
        set_metrics_enabled(true);
        Registry::global().counter("rads_test_http_total").add(3);
        let mut server = MetricsHttpServer::bind("127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "got: {response}");
        assert!(response.contains("text/plain"));
        assert!(response.contains("rads_test_http_total"));
        server.stop();
        set_metrics_enabled(false);
    }

    #[test]
    fn stop_joins_the_thread_promptly() {
        let mut server = MetricsHttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.stop();
        // the listener is gone after stop: a fresh bind to the same port
        // succeeds (best-effort check; another process could grab it, so
        // only assert we don't hang)
        let _ = TcpListener::bind(addr);
    }
}
