//! Structured tracing with Chrome trace-event export.
//!
//! # Model
//!
//! A *span* is a named interval with microsecond start/end timestamps, a
//! process-unique id, a parent id, and optional integer key/value
//! attributes. Two flavours exist:
//!
//! * [`span`] returns a RAII [`SpanGuard`] that joins the calling thread's
//!   parent stack — child spans opened while the guard lives are parented
//!   to it. Used for the engine's nested phases
//!   (`query` → `region_group` → `round` → `scatter`/`harvest`/`expand`/`verifyE`).
//! * [`async_span`] returns a movable [`AsyncSpan`] that records its parent
//!   at creation but does *not* join the stack, so it can stay open across
//!   other spans and even finish on another thread. Used for in-flight RPCs
//!   (`rpc.fetchV` etc.), whose duration *is* the comm/compute overlap.
//!
//! Completed spans are buffered in per-thread buffers and flushed to a
//! process-wide collector in batches (and on thread exit), keeping the
//! enabled-path cost to a `Vec` push. When tracing is disabled
//! ([`trace_enabled`], toggled by the `RADS_TRACE` environment variable or
//! [`set_trace_enabled`]), every call is a relaxed load plus a branch and
//! no span ids are allocated.
//!
//! # Naming convention
//!
//! Span names are short `snake_case` phase names; RPC spans are
//! `rpc.<request>` (`rpc.fetchV`, `rpc.verifyE`, `rpc.checkR`,
//! `rpc.shareR`, `rpc.rows`) and prefetch phases are `prefetch.<phase>`.
//! Categories group spans for trace-viewer filtering: `engine` (phase
//! spans), `rpc` (transport round trips), `prefetch` (lookahead machinery).
//!
//! # Export
//!
//! [`drain_chrome_trace`] renders everything collected so far as Chrome
//! trace-event JSON (`{"traceEvents":[...]}`): one complete (`"ph":"X"`)
//! event per span with `id`/`parent` and the user attributes in `args`,
//! plus metadata records naming the process (the machine id, set via
//! [`set_trace_process`]) and accounting for started/closed spans so
//! validators can prove no span was left open. Load the file in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable that enables tracing (`1`/`true`/`on`).
pub const TRACE_ENV: &str = "RADS_TRACE";

/// 0 = not yet resolved, 1 = disabled, 2 = enabled.
static TRACE_STATE: AtomicU8 = AtomicU8::new(0);
/// Next span id; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Next trace-local thread id (stable, small, assigned on first use).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// The `pid` stamped on exported events (the cluster machine id).
static PROCESS_ID: AtomicU64 = AtomicU64::new(0);
/// Spans opened while tracing was enabled.
static SPANS_STARTED: AtomicU64 = AtomicU64::new(0);
/// Spans recorded (closed). Equal to [`SPANS_STARTED`] once all guards drop.
static SPANS_CLOSED: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Mutex<Vec<TraceEvent>> {
    static COLLECTOR: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Whether tracing is currently enabled. Resolved from [`TRACE_ENV`] on
/// first use; [`set_trace_enabled`] overrides it at runtime.
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE_STATE.load(Ordering::Relaxed) {
        0 => {
            let enabled = matches!(
                std::env::var(TRACE_ENV).ok().as_deref(),
                Some("1") | Some("true") | Some("on") | Some("yes")
            );
            TRACE_STATE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
            enabled
        }
        state => state == 2,
    }
}

/// Forces tracing on or off for this process, overriding the environment
/// toggle.
pub fn set_trace_enabled(enabled: bool) {
    TRACE_STATE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
}

/// Sets the process id stamped on exported events — by convention the
/// cluster machine id, so a merged timeline shows one track group per
/// machine.
pub fn set_trace_process(machine: u64) {
    PROCESS_ID.store(machine, Ordering::Relaxed);
}

/// A completed span, ready for export.
#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    id: u64,
    parent: u64,
    args: Vec<(&'static str, u64)>,
}

/// Per-thread event buffer and parent stack.
struct LocalBuf {
    events: Vec<TraceEvent>,
    stack: Vec<u64>,
    tid: u64,
}

/// Events buffered per thread before a batch flush to the collector.
const FLUSH_BATCH: usize = 128;

impl LocalBuf {
    fn flush(&mut self) {
        if !self.events.is_empty() {
            collector().lock().unwrap().append(&mut self.events);
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        events: Vec::new(),
        stack: Vec::new(),
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
    });
}

fn record(event: TraceEvent) {
    SPANS_CLOSED.fetch_add(1, Ordering::Relaxed);
    // The thread-local may already be gone during thread teardown; push
    // straight to the collector in that rare case.
    let overflow = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            local.events.push(event.clone());
            if local.events.len() >= FLUSH_BATCH {
                local.flush();
            }
        })
        .is_err();
    if overflow {
        collector().lock().unwrap().push(event);
    }
}

/// Flushes the calling thread's buffered events to the process collector.
/// Call before [`drain_chrome_trace`] on threads that stay alive (worker
/// threads flush automatically on exit).
pub fn flush_thread() {
    let _ = LOCAL.try_with(|local| local.borrow_mut().flush());
}

/// A RAII span that joins the calling thread's parent stack. Created by
/// [`span`]; the interval closes (and is recorded) when the guard drops.
pub struct SpanGuard {
    data: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    id: u64,
    parent: u64,
    args: Vec<(&'static str, u64)>,
}

/// Opens a nested phase span. Returns an inert guard when tracing is
/// disabled.
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard { data: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPANS_STARTED.fetch_add(1, Ordering::Relaxed);
    let parent = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            let parent = local.stack.last().copied().unwrap_or(0);
            local.stack.push(id);
            parent
        })
        .unwrap_or(0);
    SpanGuard {
        data: Some(SpanData { name, cat, start_us: now_us(), id, parent, args: Vec::new() }),
    }
}

impl SpanGuard {
    /// Attaches an integer attribute, exported under `args`.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(data) = &mut self.data {
            data.args.push((key, value));
        }
    }

    /// The span id (0 when tracing is disabled).
    pub fn id(&self) -> u64 {
        self.data.as_ref().map_or(0, |data| data.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else { return };
        let tid = LOCAL
            .try_with(|local| {
                let mut local = local.borrow_mut();
                // Guards drop LIFO in well-formed code, but be robust to
                // out-of-order drops: remove this id wherever it sits.
                if let Some(at) = local.stack.iter().rposition(|&id| id == data.id) {
                    local.stack.remove(at);
                }
                local.tid
            })
            .unwrap_or(0);
        let end_us = now_us();
        record(TraceEvent {
            name: data.name,
            cat: data.cat,
            ts_us: data.start_us,
            dur_us: end_us.saturating_sub(data.start_us),
            tid,
            id: data.id,
            parent: data.parent,
            args: data.args,
        });
    }
}

/// A movable span for work that stays in flight across other spans (RPCs).
/// Created by [`async_span`]; closes when dropped or [`AsyncSpan::finish`]ed,
/// possibly on a different thread. The exported event keeps the *opening*
/// thread's track so the in-flight interval lines up with where it was
/// issued.
pub struct AsyncSpan {
    data: Option<AsyncData>,
}

struct AsyncData {
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    id: u64,
    parent: u64,
    tid: u64,
    args: Vec<(&'static str, u64)>,
}

/// Opens an in-flight span parented to the current thread's innermost
/// phase span. Returns an inert span when tracing is disabled.
pub fn async_span(name: &'static str, cat: &'static str) -> AsyncSpan {
    if !trace_enabled() {
        return AsyncSpan { data: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPANS_STARTED.fetch_add(1, Ordering::Relaxed);
    let (parent, tid) = LOCAL
        .try_with(|local| {
            let local = local.borrow();
            (local.stack.last().copied().unwrap_or(0), local.tid)
        })
        .unwrap_or((0, 0));
    AsyncSpan {
        data: Some(AsyncData { name, cat, start_us: now_us(), id, parent, tid, args: Vec::new() }),
    }
}

impl AsyncSpan {
    /// Attaches an integer attribute, exported under `args`.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(data) = &mut self.data {
            data.args.push((key, value));
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for AsyncSpan {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else { return };
        let end_us = now_us();
        record(TraceEvent {
            name: data.name,
            cat: data.cat,
            ts_us: data.start_us,
            dur_us: end_us.saturating_sub(data.start_us),
            tid: data.tid,
            id: data.id,
            parent: data.parent,
            args: data.args,
        });
    }
}

/// Discards everything collected so far (buffered events and the
/// started/closed accounting). Used between repetitions of overhead
/// experiments so traces do not accumulate.
pub fn discard_trace() {
    flush_thread();
    collector().lock().unwrap().clear();
    SPANS_STARTED.store(0, Ordering::Relaxed);
    SPANS_CLOSED.store(0, Ordering::Relaxed);
}

/// Drains all collected spans as Chrome trace-event JSON and resets the
/// span accounting. Remember to [`flush_thread`] on any *other* live thread
/// that recorded spans (worker threads flush on exit).
pub fn drain_chrome_trace() -> String {
    flush_thread();
    let events = std::mem::take(&mut *collector().lock().unwrap());
    let started = SPANS_STARTED.swap(0, Ordering::Relaxed);
    let closed = SPANS_CLOSED.swap(0, Ordering::Relaxed);
    let pid = PROCESS_ID.load(Ordering::Relaxed);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"machine {pid}\"}}}}"
    ));
    out.push_str(&format!(
        ",{{\"name\":\"span_accounting\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"started\":{started},\"closed\":{closed}}}}}"
    ));
    for event in &events {
        out.push_str(&format!(
            ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{pid},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
            event.name, event.cat, event.ts_us, event.dur_us, event.tid, event.id, event.parent
        ));
        for (key, value) in &event.args {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enabled toggle and collector are process-global; serialize tests.
    fn toggle_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _guard = toggle_lock();
        set_trace_enabled(false);
        discard_trace();
        let span = span("noop", "test");
        assert_eq!(span.id(), 0);
        drop(span);
        let trace = drain_chrome_trace();
        assert!(!trace.contains("\"noop\""));
    }

    #[test]
    fn nested_spans_record_parents_and_attrs() {
        let _guard = toggle_lock();
        set_trace_enabled(true);
        discard_trace();
        let outer = span("outer", "test");
        let outer_id = outer.id();
        {
            let mut inner = span("inner", "test");
            inner.attr("round", 3);
            assert_ne!(inner.id(), 0);
        }
        drop(outer);
        set_trace_enabled(false);
        let trace = drain_chrome_trace();
        assert!(trace.contains("\"name\":\"inner\""));
        assert!(trace.contains(&format!("\"parent\":{outer_id}")));
        assert!(trace.contains("\"round\":3"));
        assert!(trace.contains("\"started\":2,\"closed\":2"));
    }

    #[test]
    fn async_spans_can_finish_on_another_thread() {
        let _guard = toggle_lock();
        set_trace_enabled(true);
        discard_trace();
        let phase = span("phase", "test");
        let phase_id = phase.id();
        let mut rpc = async_span("rpc.test", "rpc");
        rpc.attr("correlation", 42);
        std::thread::spawn(move || rpc.finish()).join().unwrap();
        drop(phase);
        set_trace_enabled(false);
        let trace = drain_chrome_trace();
        assert!(trace.contains("\"name\":\"rpc.test\""));
        assert!(trace.contains("\"correlation\":42"));
        // The RPC span is parented to the phase that issued it.
        assert!(trace.contains(&format!("\"parent\":{phase_id}")));
        assert!(trace.contains("\"started\":2,\"closed\":2"));
    }

    #[test]
    fn drain_produces_parseable_shape() {
        let _guard = toggle_lock();
        set_trace_enabled(true);
        discard_trace();
        set_trace_process(7);
        drop(span("solo", "test"));
        set_trace_enabled(false);
        let trace = drain_chrome_trace();
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.ends_with("]}"));
        assert!(trace.contains("\"pid\":7"));
        assert!(trace.contains("machine 7"));
        set_trace_process(0);
    }
}
