//! Named metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! # Model
//!
//! A [`Registry`] maps metric *names* to live cells. Handles ([`Counter`],
//! [`Gauge`], [`Histogram`]) are cheap `Arc` clones of those cells: callers
//! register once (typically through a lazily initialised `OnceLock` next to
//! the instrumented code) and record through the handle on the hot path.
//! Recording is a relaxed atomic op guarded by [`metrics_enabled`]; with
//! metrics disabled every recording call is a single relaxed load and a
//! predictable branch, so instrumentation can stay in release builds.
//!
//! Most code records into the process-wide [`Registry::global`] registry.
//! Fresh registries ([`Registry::new`]) exist for tests.
//!
//! # Naming convention
//!
//! Metric names are `snake_case`, Prometheus-safe (`[a-z0-9_]`), and follow
//! `rads_<subsystem>_<quantity>[_<unit>]`:
//!
//! * counters end in `_total` (`rads_cache_hits_total`),
//! * durations are microseconds with a `_us` suffix
//!   (`rads_fetch_demand_wait_us`),
//! * sizes are bytes with a `_bytes` suffix (`rads_net_frame_bytes`).
//!
//! # Exports
//!
//! [`Registry::snapshot`] produces an immutable [`MetricsSnapshot`] that can
//! be rendered as machine-readable JSON ([`MetricsSnapshot::to_json`]) or a
//! Prometheus-style text page ([`MetricsSnapshot::to_prometheus`]), merged
//! across machines ([`MetricsSnapshot::absorb`]), or shipped over the wire
//! via the compact binary codec ([`MetricsSnapshot::encode`] /
//! [`MetricsSnapshot::decode`]) used by the cluster's periodic metrics
//! frames.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable that enables metrics collection (`1`/`true`/`on`).
pub const METRICS_ENV: &str = "RADS_METRICS";

/// 0 = not yet resolved, 1 = disabled, 2 = enabled.
static METRICS_STATE: AtomicU8 = AtomicU8::new(0);

fn env_truthy(var: &str) -> bool {
    matches!(
        std::env::var(var).ok().as_deref(),
        Some("1") | Some("true") | Some("on") | Some("yes")
    )
}

/// Whether metric recording is currently enabled.
///
/// Resolved from [`METRICS_ENV`] on first use; [`set_metrics_enabled`]
/// overrides it at runtime (used by `--metrics-out` and the equivalence
/// tests). The disabled path is a single relaxed load.
#[inline]
pub fn metrics_enabled() -> bool {
    match METRICS_STATE.load(Ordering::Relaxed) {
        0 => {
            let enabled = env_truthy(METRICS_ENV);
            METRICS_STATE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
            enabled
        }
        state => state == 2,
    }
}

/// Forces metric recording on or off for this process, overriding the
/// environment toggle.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_STATE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `delta` to the counter. No-op while metrics are disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if metrics_enabled() {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one. No-op while metrics are disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (reads regardless of the enabled toggle).
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge holding the most recent (or maximum) observed value.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge. No-op while metrics are disabled.
    #[inline]
    pub fn set(&self, value: u64) {
        if metrics_enabled() {
            self.cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is higher than the current reading
    /// (high-watermark semantics). No-op while metrics are disabled.
    #[inline]
    pub fn observe_max(&self, value: u64) {
        if metrics_enabled() {
            self.cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (reads regardless of the enabled toggle).
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCell {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last one is the overflow (+Inf) bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram over `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one sample. No-op while metrics are disabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !metrics_enabled() {
            return;
        }
        let cell = &self.cell;
        let idx = cell.bounds.partition_point(|&bound| bound < value);
        cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry (for tests; production code uses [`Registry::global`]).
    pub fn new() -> Registry {
        Registry { metrics: Mutex::new(BTreeMap::new()) }
    }

    /// The process-wide registry every subsystem records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers (or retrieves) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter { cell: Arc::new(AtomicU64::new(0)) }))
        {
            Metric::Counter(counter) => counter.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge { cell: Arc::new(AtomicU64::new(0)) }))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) the histogram called `name` with the given
    /// inclusive finite bucket bounds (an overflow bucket is implicit).
    /// Bounds must be strictly increasing and are fixed at first
    /// registration.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|pair| pair[0] < pair[1]),
            "histogram {name:?} bounds must be strictly increasing"
        );
        let mut metrics = self.metrics.lock().unwrap();
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram {
                cell: Arc::new(HistogramCell {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }),
            })
        }) {
            Metric::Histogram(histogram) => histogram.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Zeroes every registered metric *in place*. Existing handles stay
    /// valid and keep pointing at the (now zeroed) cells — required because
    /// instrumented code caches handles in `OnceLock`s.
    pub fn reset(&self) {
        let metrics = self.metrics.lock().unwrap();
        for metric in metrics.values() {
            match metric {
                Metric::Counter(counter) => counter.cell.store(0, Ordering::Relaxed),
                Metric::Gauge(gauge) => gauge.cell.store(0, Ordering::Relaxed),
                Metric::Histogram(histogram) => {
                    for bucket in &histogram.cell.buckets {
                        bucket.store(0, Ordering::Relaxed);
                    }
                    histogram.cell.count.store(0, Ordering::Relaxed);
                    histogram.cell.sum.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// An immutable point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().unwrap();
        let entries = metrics
            .iter()
            .map(|(name, metric)| MetricEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(counter) => MetricValue::Counter(counter.value()),
                    Metric::Gauge(gauge) => MetricValue::Gauge(gauge.value()),
                    Metric::Histogram(histogram) => {
                        let cell = &histogram.cell;
                        MetricValue::Histogram {
                            bounds: cell.bounds.clone(),
                            buckets: cell
                                .buckets
                                .iter()
                                .map(|bucket| bucket.load(Ordering::Relaxed))
                                .collect(),
                            count: cell.count.load(Ordering::Relaxed),
                            sum: cell.sum.load(Ordering::Relaxed),
                        }
                    }
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last/maximum observed value.
    Gauge(u64),
    /// Fixed-bucket histogram: `buckets.len() == bounds.len() + 1` with the
    /// final bucket counting overflow samples.
    Histogram {
        /// Inclusive upper bounds of the finite buckets.
        bounds: Vec<u64>,
        /// Per-bucket sample counts (non-cumulative).
        buckets: Vec<u64>,
        /// Total sample count.
        count: u64,
        /// Sum of all samples.
        sum: u64,
    },
}

/// A named metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// The registered metric name.
    pub name: String,
    /// The captured value.
    pub value: MetricValue,
}

/// An immutable snapshot of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The captured metrics, sorted by name.
    pub entries: Vec<MetricEntry>,
}

const TAG_COUNTER: u8 = 1;
const TAG_GAUGE: u8 = 2;
const TAG_HISTOGRAM: u8 = 3;

impl MetricsSnapshot {
    /// Looks up a scalar metric (counter or gauge) by name.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|entry| entry.name == name).and_then(
            |entry| match entry.value {
                MetricValue::Counter(value) | MetricValue::Gauge(value) => Some(value),
                MetricValue::Histogram { .. } => None,
            },
        )
    }

    /// Merges `other` into `self`: counters and histogram buckets are
    /// summed, gauges take the maximum (cluster-wide watermark semantics).
    /// Metrics present only in `other` are appended; the result stays sorted
    /// by name.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for theirs in &other.entries {
            match self.entries.binary_search_by(|entry| entry.name.as_str().cmp(&theirs.name)) {
                Err(at) => self.entries.insert(at, theirs.clone()),
                Ok(at) => {
                    let ours = &mut self.entries[at];
                    match (&mut ours.value, &theirs.value) {
                        (MetricValue::Counter(mine), MetricValue::Counter(other)) => {
                            *mine += other;
                        }
                        (MetricValue::Gauge(mine), MetricValue::Gauge(other)) => {
                            *mine = (*mine).max(*other);
                        }
                        (
                            MetricValue::Histogram { bounds, buckets, count, sum },
                            MetricValue::Histogram {
                                bounds: their_bounds,
                                buckets: their_buckets,
                                count: their_count,
                                sum: their_sum,
                            },
                        ) if bounds == their_bounds => {
                            for (mine, other) in buckets.iter_mut().zip(their_buckets) {
                                *mine += other;
                            }
                            *count += their_count;
                            *sum += their_sum;
                        }
                        _ => panic!(
                            "metric {:?} has incompatible shapes across machines",
                            theirs.name
                        ),
                    }
                }
            }
        }
    }

    /// Returns the per-interval delta of `self` relative to an earlier
    /// `baseline` snapshot of the same (cumulative) registry.
    ///
    /// The registry is process-global and accumulates for the lifetime of
    /// the process, which is exactly wrong for per-query reporting on a
    /// resident cluster: the second query would report the first query's
    /// counters too. Serving mode therefore captures a baseline before each
    /// query and diffs afterwards:
    ///
    /// * counters and histogram buckets/count/sum subtract (saturating, so
    ///   a concurrent [`Registry::reset`] cannot underflow),
    /// * gauges keep their *current* value — they are watermarks or levels,
    ///   not accumulators, and a difference of two watermarks is
    ///   meaningless,
    /// * metrics absent from the baseline (registered mid-interval) pass
    ///   through unchanged.
    ///
    /// The streamed metrics frames and the Prometheus page stay cumulative;
    /// only per-query *reports* are deltas.
    pub fn delta_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|entry| {
                let base = baseline
                    .entries
                    .binary_search_by(|b| b.name.as_str().cmp(&entry.name))
                    .ok()
                    .map(|at| &baseline.entries[at].value);
                let value = match (&entry.value, base) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (
                        MetricValue::Histogram { bounds, buckets, count, sum },
                        Some(MetricValue::Histogram {
                            bounds: then_bounds,
                            buckets: then_buckets,
                            count: then_count,
                            sum: then_sum,
                        }),
                    ) if bounds == then_bounds => MetricValue::Histogram {
                        bounds: bounds.clone(),
                        buckets: buckets
                            .iter()
                            .zip(then_buckets)
                            .map(|(now, then)| now.saturating_sub(*then))
                            .collect(),
                        count: count.saturating_sub(*then_count),
                        sum: sum.saturating_sub(*then_sum),
                    },
                    // gauges, new metrics, and shape mismatches pass through
                    _ => entry.value.clone(),
                };
                MetricEntry { name: entry.name.clone(), value }
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Renders the snapshot as a machine-readable JSON object:
    /// `{"metrics":{"name":{"type":...,...},...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        for (idx, entry) in self.entries.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&entry.name);
            out.push_str("\":");
            match &entry.value {
                MetricValue::Counter(value) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{value}}}"));
                }
                MetricValue::Gauge(value) => {
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{value}}}"));
                }
                MetricValue::Histogram { bounds, buckets, count, sum } => {
                    out.push_str("{\"type\":\"histogram\",\"buckets\":[");
                    for (idx, count) in buckets.iter().enumerate() {
                        if idx > 0 {
                            out.push(',');
                        }
                        let le = bounds
                            .get(idx)
                            .map(|bound| bound.to_string())
                            .unwrap_or_else(|| "\"+Inf\"".to_string());
                        out.push_str(&format!("{{\"le\":{le},\"count\":{count}}}"));
                    }
                    out.push_str(&format!("],\"count\":{count},\"sum\":{sum}}}"));
                }
            }
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as a Prometheus text-format page.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            match &entry.value {
                MetricValue::Counter(value) => {
                    out.push_str(&format!("# TYPE {} counter\n{} {}\n", entry.name, entry.name, value));
                }
                MetricValue::Gauge(value) => {
                    out.push_str(&format!("# TYPE {} gauge\n{} {}\n", entry.name, entry.name, value));
                }
                MetricValue::Histogram { bounds, buckets, count, sum } => {
                    out.push_str(&format!("# TYPE {} histogram\n", entry.name));
                    let mut cumulative = 0u64;
                    for (idx, bucket) in buckets.iter().enumerate() {
                        cumulative += bucket;
                        let le = bounds
                            .get(idx)
                            .map(|bound| bound.to_string())
                            .unwrap_or_else(|| "+Inf".to_string());
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{le}\"}} {cumulative}\n",
                            entry.name
                        ));
                    }
                    out.push_str(&format!("{}_sum {sum}\n{}_count {count}\n", entry.name, entry.name));
                }
            }
        }
        out
    }

    /// Encodes the snapshot with the compact length-prefixed binary codec
    /// used by the cluster's periodic metrics frames.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for entry in &self.entries {
            let name = entry.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            match &entry.value {
                MetricValue::Counter(value) => {
                    out.push(TAG_COUNTER);
                    out.extend_from_slice(&value.to_le_bytes());
                }
                MetricValue::Gauge(value) => {
                    out.push(TAG_GAUGE);
                    out.extend_from_slice(&value.to_le_bytes());
                }
                MetricValue::Histogram { bounds, buckets, count, sum } => {
                    out.push(TAG_HISTOGRAM);
                    out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
                    for bound in bounds {
                        out.extend_from_slice(&bound.to_le_bytes());
                    }
                    for bucket in buckets {
                        out.extend_from_slice(&bucket.to_le_bytes());
                    }
                    out.extend_from_slice(&count.to_le_bytes());
                    out.extend_from_slice(&sum.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a snapshot produced by [`MetricsSnapshot::encode`].
    pub fn decode(payload: &[u8]) -> Result<MetricsSnapshot, String> {
        struct Reader<'a> {
            bytes: &'a [u8],
            at: usize,
        }
        impl Reader<'_> {
            fn take(&mut self, n: usize) -> Result<&[u8], String> {
                let end = self
                    .at
                    .checked_add(n)
                    .filter(|&end| end <= self.bytes.len())
                    .ok_or_else(|| "metrics payload truncated".to_string())?;
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u16(&mut self) -> Result<u16, String> {
                Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
            }
        }
        let mut reader = Reader { bytes: payload, at: 0 };
        let entries = reader.u32()? as usize;
        let mut snapshot = MetricsSnapshot::default();
        for _ in 0..entries {
            let name_len = reader.u16()? as usize;
            let name = String::from_utf8(reader.take(name_len)?.to_vec())
                .map_err(|_| "metric name is not UTF-8".to_string())?;
            let tag = reader.take(1)?[0];
            let value = match tag {
                TAG_COUNTER => MetricValue::Counter(reader.u64()?),
                TAG_GAUGE => MetricValue::Gauge(reader.u64()?),
                TAG_HISTOGRAM => {
                    let bound_count = reader.u32()? as usize;
                    let bounds =
                        (0..bound_count).map(|_| reader.u64()).collect::<Result<Vec<_>, _>>()?;
                    let buckets = (0..=bound_count)
                        .map(|_| reader.u64())
                        .collect::<Result<Vec<_>, _>>()?;
                    let count = reader.u64()?;
                    let sum = reader.u64()?;
                    MetricValue::Histogram { bounds, buckets, count, sum }
                }
                other => return Err(format!("unknown metric tag {other}")),
            };
            snapshot.entries.push(MetricEntry { name, value });
        }
        if reader.at != payload.len() {
            return Err("trailing bytes after metrics payload".to_string());
        }
        Ok(snapshot)
    }
}

/// Per-interval metric epochs that may **overlap**, keyed by an opaque
/// `u64` id (serving mode passes its query id; this crate deliberately has
/// no dependency on the runtime's `QueryId` type).
///
/// [`MetricsSnapshot::delta_since`] against one shared "previous snapshot"
/// is only correct when intervals are strictly serialized: with two queries
/// in flight, whichever finishes second would diff against a baseline taken
/// *after* the first query started and silently lose (or double-count) the
/// overlap. The ledger fixes the bookkeeping: every interval records its
/// **own** baseline at `begin` and diffs against exactly that baseline at
/// `end`, so an epoch always covers `[its begin, its end]` regardless of
/// what other epochs are open.
///
/// Under overlap the delta is a *conservative superset*: work done by a
/// concurrently running interval inside this epoch's window is included.
/// For serialized intervals the delta is exact and identical to the old
/// shared-baseline scheme — the regression test in `tests/registry_epochs.rs`
/// pins both properties.
#[derive(Default)]
pub struct EpochLedger {
    baselines: Mutex<BTreeMap<u64, MetricsSnapshot>>,
}

impl EpochLedger {
    /// An empty ledger.
    pub fn new() -> EpochLedger {
        EpochLedger::default()
    }

    /// Opens epoch `id` with `baseline` as its reference point. A second
    /// `begin` for the same id replaces the earlier baseline.
    pub fn begin(&self, id: u64, baseline: MetricsSnapshot) {
        self.baselines.lock().unwrap_or_else(|p| p.into_inner()).insert(id, baseline);
    }

    /// Closes epoch `id`: removes its baseline and returns `now` diffed
    /// against it. Ending an id that was never begun diffs against an empty
    /// baseline (i.e. returns `now` unchanged) instead of panicking.
    pub fn end(&self, id: u64, now: &MetricsSnapshot) -> MetricsSnapshot {
        let baseline = self
            .baselines
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id)
            .unwrap_or_default();
        now.delta_since(&baseline)
    }

    /// Discards epoch `id` without producing a delta (error paths).
    pub fn abort(&self, id: u64) {
        self.baselines.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
    }

    /// Number of currently open epochs.
    pub fn open(&self) -> usize {
        self.baselines.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enabled toggle is process-global, so tests that flip it must not
    /// interleave with each other.
    fn toggle_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn with_metrics_on<T>(body: impl FnOnce() -> T) -> T {
        let _guard = toggle_lock();
        set_metrics_enabled(true);
        let result = body();
        set_metrics_enabled(false);
        result
    }

    #[test]
    fn counters_gauges_and_histograms_record() {
        with_metrics_on(|| {
            let registry = Registry::new();
            let counter = registry.counter("rads_test_hits_total");
            counter.add(3);
            counter.inc();
            let gauge = registry.gauge("rads_test_depth");
            gauge.set(5);
            gauge.observe_max(2); // lower than current → no change
            gauge.observe_max(9);
            let histogram = registry.histogram("rads_test_wait_us", &[10, 100]);
            histogram.observe(5); // bucket 0
            histogram.observe(10); // inclusive bound → bucket 0
            histogram.observe(50); // bucket 1
            histogram.observe(1_000); // overflow

            let snapshot = registry.snapshot();
            assert_eq!(snapshot.scalar("rads_test_hits_total"), Some(4));
            assert_eq!(snapshot.scalar("rads_test_depth"), Some(9));
            let entry = snapshot
                .entries
                .iter()
                .find(|entry| entry.name == "rads_test_wait_us")
                .unwrap();
            assert_eq!(
                entry.value,
                MetricValue::Histogram {
                    bounds: vec![10, 100],
                    buckets: vec![2, 1, 1],
                    count: 4,
                    sum: 1_065,
                }
            );
        });
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _guard = toggle_lock();
        set_metrics_enabled(false);
        let registry = Registry::new();
        let counter = registry.counter("rads_test_noop_total");
        counter.add(100);
        assert_eq!(counter.value(), 0);
    }

    #[test]
    fn reset_zeroes_cells_in_place() {
        with_metrics_on(|| {
            let registry = Registry::new();
            let counter = registry.counter("rads_test_reset_total");
            counter.add(7);
            registry.reset();
            assert_eq!(counter.value(), 0);
            counter.add(2); // the pre-reset handle still feeds the registry
            assert_eq!(registry.snapshot().scalar("rads_test_reset_total"), Some(2));
        });
    }

    #[test]
    fn snapshot_round_trips_through_binary_codec() {
        with_metrics_on(|| {
            let registry = Registry::new();
            registry.counter("rads_test_a_total").add(11);
            registry.gauge("rads_test_b").set(22);
            registry.histogram("rads_test_c_us", &[1, 2, 4]).observe(3);
            let snapshot = registry.snapshot();
            let decoded = MetricsSnapshot::decode(&snapshot.encode()).unwrap();
            assert_eq!(decoded, snapshot);
        });
    }

    #[test]
    fn decode_rejects_truncated_payloads() {
        with_metrics_on(|| {
            let registry = Registry::new();
            registry.counter("rads_test_d_total").add(1);
            let encoded = registry.snapshot().encode();
            assert!(MetricsSnapshot::decode(&encoded[..encoded.len() - 1]).is_err());
        });
    }

    #[test]
    fn absorb_sums_counters_and_maxes_gauges() {
        with_metrics_on(|| {
            let a = Registry::new();
            a.counter("rads_test_sum_total").add(1);
            a.gauge("rads_test_peak").set(10);
            a.histogram("rads_test_h_us", &[5]).observe(1);
            let b = Registry::new();
            b.counter("rads_test_sum_total").add(2);
            b.counter("rads_test_only_b_total").add(9);
            b.gauge("rads_test_peak").set(4);
            b.histogram("rads_test_h_us", &[5]).observe(100);

            let mut merged = a.snapshot();
            merged.absorb(&b.snapshot());
            assert_eq!(merged.scalar("rads_test_sum_total"), Some(3));
            assert_eq!(merged.scalar("rads_test_only_b_total"), Some(9));
            assert_eq!(merged.scalar("rads_test_peak"), Some(10));
            let entry = merged
                .entries
                .iter()
                .find(|entry| entry.name == "rads_test_h_us")
                .unwrap();
            assert_eq!(
                entry.value,
                MetricValue::Histogram { bounds: vec![5], buckets: vec![1, 1], count: 2, sum: 101 }
            );
        });
    }

    #[test]
    fn delta_since_isolates_an_interval() {
        with_metrics_on(|| {
            let registry = Registry::new();
            let counter = registry.counter("rads_test_q_total");
            let gauge = registry.gauge("rads_test_q_peak");
            let histogram = registry.histogram("rads_test_q_us", &[10]);
            counter.add(5);
            gauge.observe_max(100);
            histogram.observe(3);
            let baseline = registry.snapshot();

            counter.add(2);
            gauge.observe_max(40); // below the watermark → unchanged
            histogram.observe(50); // overflow bucket
            registry.counter("rads_test_q_late_total").add(9); // registered mid-interval

            let delta = registry.snapshot().delta_since(&baseline);
            assert_eq!(delta.scalar("rads_test_q_total"), Some(2));
            assert_eq!(delta.scalar("rads_test_q_late_total"), Some(9));
            assert_eq!(
                delta.scalar("rads_test_q_peak"),
                Some(100),
                "gauges report their current value, not a difference"
            );
            let entry =
                delta.entries.iter().find(|entry| entry.name == "rads_test_q_us").unwrap();
            assert_eq!(
                entry.value,
                MetricValue::Histogram { bounds: vec![10], buckets: vec![0, 1], count: 1, sum: 50 }
            );
        });
    }

    #[test]
    fn delta_since_saturates_after_a_reset() {
        with_metrics_on(|| {
            let registry = Registry::new();
            let counter = registry.counter("rads_test_r_total");
            counter.add(10);
            let baseline = registry.snapshot();
            registry.reset();
            counter.add(1);
            let delta = registry.snapshot().delta_since(&baseline);
            assert_eq!(delta.scalar("rads_test_r_total"), Some(0), "no underflow panic");
        });
    }

    #[test]
    fn epoch_ledger_diffs_each_interval_against_its_own_baseline() {
        with_metrics_on(|| {
            let registry = Registry::new();
            let counter = registry.counter("rads_test_epoch_total");
            let ledger = EpochLedger::new();
            counter.add(10);
            ledger.begin(1, registry.snapshot());
            counter.add(5);
            ledger.begin(2, registry.snapshot()); // opened while epoch 1 is live
            assert_eq!(ledger.open(), 2);
            counter.add(3);
            let first = ledger.end(1, &registry.snapshot());
            // epoch 1's window saw 5 + 3: its own work plus the overlap —
            // a conservative superset, never a loss
            assert_eq!(first.scalar("rads_test_epoch_total"), Some(8));
            counter.add(4);
            let second = ledger.end(2, &registry.snapshot());
            assert_eq!(second.scalar("rads_test_epoch_total"), Some(7));
            assert_eq!(ledger.open(), 0);
        });
    }

    #[test]
    fn epoch_ledger_handles_unknown_and_aborted_ids() {
        with_metrics_on(|| {
            let registry = Registry::new();
            registry.counter("rads_test_epoch_b_total").add(6);
            let ledger = EpochLedger::new();
            // ending an id that was never begun diffs against empty
            let delta = ledger.end(99, &registry.snapshot());
            assert_eq!(delta.scalar("rads_test_epoch_b_total"), Some(6));
            ledger.begin(7, registry.snapshot());
            ledger.abort(7);
            assert_eq!(ledger.open(), 0);
        });
    }

    #[test]
    fn exports_render_both_formats() {
        with_metrics_on(|| {
            let registry = Registry::new();
            registry.counter("rads_test_x_total").add(5);
            registry.histogram("rads_test_y_us", &[10]).observe(7);
            let snapshot = registry.snapshot();
            let json = snapshot.to_json();
            assert!(json.contains("\"rads_test_x_total\":{\"type\":\"counter\",\"value\":5}"));
            assert!(json.contains("\"le\":\"+Inf\""));
            let prom = snapshot.to_prometheus();
            assert!(prom.contains("# TYPE rads_test_x_total counter"));
            assert!(prom.contains("rads_test_y_us_bucket{le=\"+Inf\"} 1"));
            assert!(prom.contains("rads_test_y_us_sum 7"));
        });
    }
}
