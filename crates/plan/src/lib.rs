//! Query decomposition and execution-plan computation (Section 4 of the
//! paper).
//!
//! An execution plan decomposes the query pattern into a sequence of
//! *decomposition units*, each a pivot vertex plus a set of leaf vertices
//! (Definition 6/7). The R-Meef engine processes one unit per round, so the
//! plan determines:
//!
//! * how many rounds there are (the paper proves the minimum equals the
//!   connected domination number `c_P`, Theorem 1),
//! * which query vertex every machine starts from (`dp0.piv`), and therefore
//!   how much work SM-E can keep local (the span heuristic of Section 4.2),
//! * where the verification edges fall, i.e. how early false candidates can
//!   be filtered (the scoring function of Section 4.3).
//!
//! This crate provides:
//!
//! * [`DecompositionUnit`] / [`ExecutionPlan`] — the plan representation with
//!   all derived information engines need (sub-patterns, expansion / sibling /
//!   cross-unit edges, the matching order of Definition 10);
//! * [`compute`] — the heuristic planner implementing the paper's rule chain
//!   (minimum rounds → minimum span → maximum early filtering → pivot
//!   degree);
//! * [`random`] — the `RanS` (random stars) and `RanM` (random minimum-round)
//!   baseline planners used in the Figure 13 ablation.

pub mod compute;
pub mod plan;
pub mod random;

pub use compute::{best_plan, enumerate_minimum_round_plans, PlannerConfig};
pub use plan::{DecompositionUnit, EdgeClass, ExecutionPlan, PlanError};
pub use random::{random_min_round_plan, random_star_plan};
