//! Execution-plan representation and derived information.

use rads_graph::{Pattern, PatternVertex};

/// One decomposition unit `dp_i` (Definition 6): a pivot vertex plus a
/// non-empty set of leaf vertices, all adjacent to the pivot in the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompositionUnit {
    /// The pivot vertex `dp_i.piv`.
    pub pivot: PatternVertex,
    /// The leaf vertices `dp_i.LF` (sorted).
    pub leaves: Vec<PatternVertex>,
}

impl DecompositionUnit {
    /// Creates a unit, sorting the leaves.
    pub fn new(pivot: PatternVertex, mut leaves: Vec<PatternVertex>) -> Self {
        leaves.sort_unstable();
        leaves.dedup();
        DecompositionUnit { pivot, leaves }
    }
}

/// How a pattern edge is processed by a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// `(pivot, leaf)` edge of unit `round` — used to *expand* candidates.
    Expansion { round: usize },
    /// Edge between two leaves of unit `round` — verified in that round.
    Sibling { round: usize },
    /// Edge from an earlier sub-pattern vertex to a leaf of unit `round` —
    /// verified in that round.
    CrossUnit { round: usize },
}

impl EdgeClass {
    /// The round in which the edge is handled.
    pub fn round(&self) -> usize {
        match *self {
            EdgeClass::Expansion { round } | EdgeClass::Sibling { round } | EdgeClass::CrossUnit { round } => round,
        }
    }

    /// `true` for sibling and cross-unit edges (the "verification edges").
    pub fn is_verification(&self) -> bool {
        !matches!(self, EdgeClass::Expansion { .. })
    }
}

/// Errors raised when validating an execution plan against its pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A unit has no leaves.
    EmptyUnit { round: usize },
    /// A leaf is not adjacent to its unit's pivot in the pattern.
    LeafNotAdjacentToPivot { round: usize, leaf: PatternVertex },
    /// A leaf vertex already appeared in an earlier unit.
    LeafReused { round: usize, leaf: PatternVertex },
    /// The pivot of a non-initial unit is not covered by the previous
    /// sub-pattern (violates Definition 7).
    PivotNotCovered { round: usize, pivot: PatternVertex },
    /// The plan does not cover every pattern vertex.
    VerticesMissing { missing: Vec<PatternVertex> },
    /// A vertex id is out of range for the pattern.
    UnknownVertex { vertex: PatternVertex },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyUnit { round } => write!(f, "unit {round} has no leaves"),
            PlanError::LeafNotAdjacentToPivot { round, leaf } => {
                write!(f, "leaf {leaf} of unit {round} is not adjacent to the pivot")
            }
            PlanError::LeafReused { round, leaf } => {
                write!(f, "leaf {leaf} of unit {round} already appeared in an earlier unit")
            }
            PlanError::PivotNotCovered { round, pivot } => {
                write!(f, "pivot {pivot} of unit {round} is not in the previous sub-pattern")
            }
            PlanError::VerticesMissing { missing } => {
                write!(f, "plan does not cover pattern vertices {missing:?}")
            }
            PlanError::UnknownVertex { vertex } => write!(f, "vertex {vertex} is out of range"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A validated execution plan (Definition 7) with all derived data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionPlan {
    pattern: Pattern,
    units: Vec<DecompositionUnit>,
    /// `edge_class[k]` classifies `pattern.edges()[k]`.
    edge_classes: Vec<(PatternVertex, PatternVertex, EdgeClass)>,
    /// The matching order of Definition 10.
    matching_order: Vec<PatternVertex>,
    /// `covered_after[i]` = vertices of the sub-pattern `P_i`, sorted.
    covered_after: Vec<Vec<PatternVertex>>,
}

impl ExecutionPlan {
    /// Validates and builds a plan from its units.
    pub fn new(pattern: Pattern, units: Vec<DecompositionUnit>) -> Result<Self, PlanError> {
        let n = pattern.vertex_count();
        // --- validation -----------------------------------------------------
        let mut covered: Vec<bool> = vec![false; n];
        let mut leaf_used: Vec<bool> = vec![false; n];
        let mut covered_after: Vec<Vec<PatternVertex>> = Vec::with_capacity(units.len());
        for (round, unit) in units.iter().enumerate() {
            if unit.pivot >= n {
                return Err(PlanError::UnknownVertex { vertex: unit.pivot });
            }
            if unit.leaves.is_empty() {
                return Err(PlanError::EmptyUnit { round });
            }
            if round == 0 {
                covered[unit.pivot] = true;
            } else if !covered[unit.pivot] {
                return Err(PlanError::PivotNotCovered { round, pivot: unit.pivot });
            }
            for &leaf in &unit.leaves {
                if leaf >= n {
                    return Err(PlanError::UnknownVertex { vertex: leaf });
                }
                if !pattern.has_edge(unit.pivot, leaf) {
                    return Err(PlanError::LeafNotAdjacentToPivot { round, leaf });
                }
                if covered[leaf] || leaf_used[leaf] {
                    return Err(PlanError::LeafReused { round, leaf });
                }
            }
            for &leaf in &unit.leaves {
                covered[leaf] = true;
                leaf_used[leaf] = true;
            }
            covered_after.push(
                covered
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c)
                    .map(|(v, _)| v)
                    .collect(),
            );
        }
        let missing: Vec<PatternVertex> = covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(v, _)| v)
            .collect();
        if !missing.is_empty() {
            return Err(PlanError::VerticesMissing { missing });
        }

        // --- edge classification --------------------------------------------
        // leaf_round[v] = the round in which v appears as a leaf;
        // dp0.piv is treated as appearing "before round 0".
        let mut leaf_round: Vec<usize> = vec![usize::MAX; n];
        for (round, unit) in units.iter().enumerate() {
            for &leaf in &unit.leaves {
                leaf_round[leaf] = round;
            }
        }
        let root = units[0].pivot;
        // `appear(v)`: the root appears before round 0 (-1), every other
        // vertex appears in the round where it is a leaf.
        let appear = |v: PatternVertex| -> i64 {
            if v == root {
                -1
            } else {
                leaf_round[v] as i64
            }
        };
        let mut edge_classes = Vec::with_capacity(pattern.edge_count());
        for (a, b) in pattern.edges() {
            // the edge is handled in the round where its later endpoint appears
            let round = appear(a).max(appear(b)) as usize;
            let unit = &units[round];
            let a_leaf = unit.leaves.contains(&a);
            let b_leaf = unit.leaves.contains(&b);
            let class = if (a == unit.pivot && b_leaf) || (b == unit.pivot && a_leaf) {
                EdgeClass::Expansion { round }
            } else if a_leaf && b_leaf {
                EdgeClass::Sibling { round }
            } else {
                EdgeClass::CrossUnit { round }
            };
            edge_classes.push((a, b, class));
        }

        // --- matching order (Definition 10) ----------------------------------
        // pivot_of_unit[v] = Some(i) if v is the pivot of unit i
        let mut pivot_unit: Vec<Option<usize>> = vec![None; n];
        for (i, unit) in units.iter().enumerate() {
            // the paper notes no two units share the same pivot in minimum
            // plans; if they do (random plans), keep the first.
            if pivot_unit[unit.pivot].is_none() {
                pivot_unit[unit.pivot] = Some(i);
            }
        }
        let mut matching_order = Vec::with_capacity(n);
        matching_order.push(root);
        for unit in &units {
            let mut leaves = unit.leaves.clone();
            leaves.sort_by(|&a, &b| {
                let key = |v: PatternVertex| {
                    match pivot_unit[v] {
                        // pivot leaves first, ordered by the unit they pivot
                        Some(i) => (0usize, i, 0usize, v),
                        // then non-pivot leaves by descending degree, then id
                        None => (1usize, 0, usize::MAX - pattern.degree(v), v),
                    }
                };
                key(a).cmp(&key(b))
            });
            for leaf in leaves {
                if !matching_order.contains(&leaf) {
                    matching_order.push(leaf);
                }
            }
        }

        Ok(ExecutionPlan { pattern, units, edge_classes, matching_order, covered_after })
    }

    /// The pattern this plan decomposes.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The decomposition units in processing order.
    pub fn units(&self) -> &[DecompositionUnit] {
        &self.units
    }

    /// Number of rounds (= number of units).
    pub fn rounds(&self) -> usize {
        self.units.len()
    }

    /// The starting query vertex `dp0.piv` (`u_start` in Section 3.1).
    pub fn start_vertex(&self) -> PatternVertex {
        self.units[0].pivot
    }

    /// The matching order of Definition 10 (a permutation of the query
    /// vertices; the vertices of `P_i` form a prefix).
    pub fn matching_order(&self) -> &[PatternVertex] {
        &self.matching_order
    }

    /// The vertices of the sub-pattern `P_i` (sorted).
    pub fn sub_pattern_vertices(&self, round: usize) -> &[PatternVertex] {
        &self.covered_after[round]
    }

    /// Every pattern edge with its classification.
    pub fn edge_classes(&self) -> &[(PatternVertex, PatternVertex, EdgeClass)] {
        &self.edge_classes
    }

    /// Expansion edges of `round` (pivot → leaf).
    pub fn expansion_edges(&self, round: usize) -> Vec<(PatternVertex, PatternVertex)> {
        self.edges_of_class(round, |c| matches!(c, EdgeClass::Expansion { .. }))
    }

    /// Sibling edges of `round` (leaf ↔ leaf in the same unit).
    pub fn sibling_edges(&self, round: usize) -> Vec<(PatternVertex, PatternVertex)> {
        self.edges_of_class(round, |c| matches!(c, EdgeClass::Sibling { .. }))
    }

    /// Cross-unit edges of `round` (earlier vertex ↔ leaf).
    pub fn cross_edges(&self, round: usize) -> Vec<(PatternVertex, PatternVertex)> {
        self.edges_of_class(round, |c| matches!(c, EdgeClass::CrossUnit { .. }))
    }

    /// Verification edges of `round` (sibling ∪ cross-unit).
    pub fn verification_edges(&self, round: usize) -> Vec<(PatternVertex, PatternVertex)> {
        self.edges_of_class(round, |c| c.is_verification())
    }

    fn edges_of_class<F: Fn(&EdgeClass) -> bool>(
        &self,
        round: usize,
        pred: F,
    ) -> Vec<(PatternVertex, PatternVertex)> {
        self.edge_classes
            .iter()
            .filter(|(_, _, c)| c.round() == round && pred(c))
            .map(|&(a, b, _)| (a, b))
            .collect()
    }

    /// The scoring function of Section 4.3 (equation 4): verification edges
    /// weighted by `1 / (round + 1)^rho` plus the pivot-degree component.
    pub fn score(&self, rho: f64) -> f64 {
        self.units
            .iter()
            .enumerate()
            .map(|(i, unit)| {
                let verif = self.verification_edges(i).len() as f64;
                let weight = 1.0 / ((i + 1) as f64).powf(rho);
                let degree_component = self.pattern.degree(unit.pivot) as f64 / (i + 1) as f64;
                verif * weight + degree_component
            })
            .sum()
    }

    /// The verification-edge-only score of equation 3 (used by tests that
    /// reproduce Example 5).
    pub fn verification_score(&self, rho: f64) -> f64 {
        self.units
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let verif = self.verification_edges(i).len() as f64;
                verif / ((i + 1) as f64).powf(rho)
            })
            .sum()
    }

    /// The span of the start vertex in the pattern (heuristic 2, Section 4.2).
    pub fn start_span(&self) -> usize {
        self.pattern.span(self.start_vertex())
    }

    /// Query vertices of `P_i` in matching order (a prefix of the full
    /// matching order).
    pub fn matched_prefix(&self, round: usize) -> &[PatternVertex] {
        let len = self.covered_after[round].len();
        &self.matching_order[..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::queries;

    /// The Example 3 plan for the running example pattern.
    fn example3_plan() -> ExecutionPlan {
        let p = queries::running_example_pattern();
        ExecutionPlan::new(
            p,
            vec![
                DecompositionUnit::new(0, vec![1, 2, 7]),
                DecompositionUnit::new(1, vec![3, 4]),
                DecompositionUnit::new(2, vec![5, 6]),
                DecompositionUnit::new(0, vec![8, 9]),
            ],
        )
        .expect("example 3 is a valid execution plan")
    }

    /// The Example 4 minimum-round plan PL1.
    fn example4_pl1() -> ExecutionPlan {
        let p = queries::running_example_pattern();
        ExecutionPlan::new(
            p,
            vec![
                DecompositionUnit::new(0, vec![1, 2, 7, 8, 9]),
                DecompositionUnit::new(1, vec![3, 4]),
                DecompositionUnit::new(2, vec![5, 6]),
            ],
        )
        .expect("example 4 PL1 is valid")
    }

    /// The Example 4 plan PL2 rooted at u1.
    fn example4_pl2() -> ExecutionPlan {
        let p = queries::running_example_pattern();
        ExecutionPlan::new(
            p,
            vec![
                DecompositionUnit::new(1, vec![0, 3, 4]),
                DecompositionUnit::new(0, vec![2, 7, 8, 9]),
                DecompositionUnit::new(2, vec![5, 6]),
            ],
        )
        .expect("example 4 PL2 is valid")
    }

    #[test]
    fn example3_classification_matches_paper() {
        let plan = example3_plan();
        assert_eq!(plan.rounds(), 4);
        assert_eq!(plan.start_vertex(), 0);
        // Section 3.2: E_sib(dp0) = {(u1, u2)}, E_cro(dp0) = {}
        assert_eq!(plan.sibling_edges(0), vec![(1, 2)]);
        assert!(plan.cross_edges(0).is_empty());
        // E_sib(dp2) = {(u5, u6)}, E_cro(dp2) = {(u4, u5)}
        assert_eq!(plan.sibling_edges(2), vec![(5, 6)]);
        assert_eq!(plan.cross_edges(2), vec![(4, 5)]);
        // dp1: sibling (u3, u4), no cross edges
        assert_eq!(plan.sibling_edges(1), vec![(3, 4)]);
        assert!(plan.cross_edges(1).is_empty());
        // dp3: sibling (u8, u9)
        assert_eq!(plan.sibling_edges(3), vec![(8, 9)]);
    }

    #[test]
    fn every_edge_classified_exactly_once() {
        for plan in [example3_plan(), example4_pl1(), example4_pl2()] {
            let p = plan.pattern().clone();
            assert_eq!(plan.edge_classes().len(), p.edge_count());
            // expansion edges over all rounds form a spanning tree when the
            // plan has distinct pivots (Example 4 plans)
            let expansion_total: usize =
                (0..plan.rounds()).map(|i| plan.expansion_edges(i).len()).sum();
            let verification_total: usize =
                (0..plan.rounds()).map(|i| plan.verification_edges(i).len()).sum();
            assert_eq!(expansion_total + verification_total, p.edge_count());
        }
    }

    #[test]
    fn example4_scores_match_example5() {
        // Example 5: verification edges per round are 2,1,2 for PL1 and 1,2,2
        // for PL2; with rho = 1 the scores are ~3.2 and ~2.7.
        let pl1 = example4_pl1();
        let pl2 = example4_pl2();
        let counts1: Vec<usize> = (0..3).map(|i| pl1.verification_edges(i).len()).collect();
        let counts2: Vec<usize> = (0..3).map(|i| pl2.verification_edges(i).len()).collect();
        assert_eq!(counts1, vec![2, 1, 2]);
        assert_eq!(counts2, vec![1, 2, 2]);
        let s1 = pl1.verification_score(1.0);
        let s2 = pl2.verification_score(1.0);
        assert!((s1 - (2.0 / 1.0 + 1.0 / 2.0 + 2.0 / 3.0)).abs() < 1e-9);
        assert!((s2 - (1.0 / 1.0 + 2.0 / 2.0 + 2.0 / 3.0)).abs() < 1e-9);
        assert!(s1 > s2, "PL1 must be preferred");
    }

    #[test]
    fn matching_order_prefix_property() {
        for plan in [example3_plan(), example4_pl1(), example4_pl2()] {
            let order = plan.matching_order().to_vec();
            assert_eq!(order.len(), plan.pattern().vertex_count());
            // every sub-pattern P_i is a prefix of the order
            for round in 0..plan.rounds() {
                let covered: std::collections::HashSet<_> =
                    plan.sub_pattern_vertices(round).iter().copied().collect();
                let prefix = plan.matched_prefix(round);
                assert_eq!(prefix.len(), covered.len());
                for v in prefix {
                    assert!(covered.contains(v));
                }
            }
        }
    }

    #[test]
    fn matching_order_of_example4_pl1_matches_paper() {
        // Section 5: "the vertices in the query can be arranged as
        // (u0, u1, u2, u7, u8, u9, u3, u4, u5, u6)".
        // u7, u8, u9 all have degree 1 (u7) / 2 (u8, u9); the paper's listing
        // puts u7 before u8, u9. Degrees: deg(u7)=1, deg(u8)=deg(u9)=2, so a
        // strict by-degree order would put u8, u9 before u7; the paper orders
        // by appearance in its figure. We assert the structural properties
        // instead: pivots u1, u2 come right after u0 and before the non-pivot
        // leaves, and unit-1/unit-2 leaves come last.
        let plan = example4_pl1();
        let order = plan.matching_order();
        assert_eq!(order[0], 0);
        assert_eq!(&order[1..3], &[1, 2]);
        let tail: std::collections::HashSet<_> = order[6..].iter().copied().collect();
        assert_eq!(tail, [3, 4, 5, 6].into_iter().collect());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let p = queries::running_example_pattern();
        // pivot of later unit not covered
        let err = ExecutionPlan::new(
            p.clone(),
            vec![
                DecompositionUnit::new(0, vec![1, 2]),
                DecompositionUnit::new(5, vec![6]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::PivotNotCovered { round: 1, pivot: 5 }));
        // leaf reused
        let err = ExecutionPlan::new(
            p.clone(),
            vec![
                DecompositionUnit::new(0, vec![1, 2]),
                DecompositionUnit::new(1, vec![2, 3]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::LeafReused { round: 1, leaf: 2 }));
        // leaf not adjacent to pivot
        let err = ExecutionPlan::new(
            p.clone(),
            vec![DecompositionUnit::new(0, vec![3])],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::LeafNotAdjacentToPivot { round: 0, leaf: 3 }));
        // not all vertices covered
        let err = ExecutionPlan::new(
            p.clone(),
            vec![DecompositionUnit::new(0, vec![1, 2])],
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::VerticesMissing { .. }));
        // empty unit
        let err = ExecutionPlan::new(p, vec![DecompositionUnit::new(0, vec![])]).unwrap_err();
        assert!(matches!(err, PlanError::EmptyUnit { round: 0 }));
    }

    #[test]
    fn start_span_uses_pattern_span() {
        let plan = example4_pl1();
        assert_eq!(plan.start_span(), plan.pattern().span(0));
    }

    #[test]
    fn triangle_single_unit_plan() {
        let p = rads_graph::queries::query_by_name("triangle").unwrap();
        let plan = ExecutionPlan::new(p, vec![DecompositionUnit::new(0, vec![1, 2])]).unwrap();
        assert_eq!(plan.rounds(), 1);
        assert_eq!(plan.expansion_edges(0).len(), 2);
        assert_eq!(plan.sibling_edges(0), vec![(1, 2)]);
        assert_eq!(plan.matching_order(), &[0, 1, 2]);
    }
}
