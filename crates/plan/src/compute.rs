//! The heuristic planner of Section 4.
//!
//! The rule chain is:
//!
//! 1. **Minimize the number of rounds** (Section 4.1): the minimum is the
//!    connected domination number `c_P` (Theorem 1); plans are constructed
//!    from minimum connected dominating sets, mirroring the constructive
//!    proof via maximum-leaf spanning trees.
//! 2. **Minimize the span of `dp0.piv`** (Section 4.2), so SM-E can keep as
//!    many start candidates local as possible.
//! 3. **Maximize early filtering power** (Section 4.3): prefer plans whose
//!    verification edges fall in earlier rounds, using the score function of
//!    equation (4) (which also rewards high-degree pivots in early rounds).

use rads_graph::{Pattern, PatternVertex};

use crate::plan::{DecompositionUnit, ExecutionPlan};

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// The `rho` exponent of the score function; the paper uses 1.0.
    pub rho: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { rho: 1.0 }
    }
}

/// All minimum connected dominating sets of the pattern (each sorted).
fn minimum_connected_dominating_sets(pattern: &Pattern) -> Vec<Vec<PatternVertex>> {
    let n = pattern.vertex_count();
    assert!(n <= 20, "plan computation enumerates subsets and is limited to 20 query vertices");
    let target = pattern.connected_domination_number();
    let mut result = Vec::new();
    for mask in 1u32..(1u32 << n) {
        if mask.count_ones() as usize != target {
            continue;
        }
        let subset: Vec<PatternVertex> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        if pattern.is_connected_dominating_set(&subset) {
            result.push(subset);
        }
    }
    result
}

/// How non-dominating-set vertices are attached to pivots when building a
/// plan from a connected dominating set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttachStrategy {
    /// Attach to the pivot that appears earliest in the BFS order of the CDS.
    Earliest,
    /// Attach to the pivot that appears latest in the BFS order of the CDS.
    Latest,
    /// Attach to the pivot with the highest pattern degree.
    HighestDegree,
}

/// Builds an execution plan whose pivots are exactly the vertices of `cds`,
/// rooted at `root`, attaching every remaining vertex to a pivot according to
/// `strategy`. Returns `None` when the attachment leaves some pivot without
/// leaves (the plan would be invalid).
fn plan_from_cds(
    pattern: &Pattern,
    cds: &[PatternVertex],
    root: PatternVertex,
    strategy: AttachStrategy,
) -> Option<ExecutionPlan> {
    let in_cds = |v: PatternVertex| cds.contains(&v);
    // BFS order of the CDS-induced subgraph from the root.
    let mut order = vec![root];
    let mut seen: Vec<PatternVertex> = vec![root];
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &w in pattern.neighbors(v) {
            if in_cds(w) && !seen.contains(&w) {
                seen.push(w);
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    if order.len() != cds.len() {
        return None; // CDS not connected from this root (cannot happen for a true CDS)
    }
    let rank = |v: PatternVertex| order.iter().position(|&x| x == v).unwrap();

    // D-children: each CDS vertex other than the root becomes a leaf of its
    // BFS parent (the earliest-ranked CDS neighbour).
    let mut leaves: Vec<Vec<PatternVertex>> = vec![Vec::new(); order.len()];
    for &v in &order {
        if v == root {
            continue;
        }
        let parent = pattern
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| in_cds(w) && rank(w) < rank(v))
            .min_by_key(|&w| rank(w))?;
        leaves[rank(parent)].push(v);
    }
    // Attach every non-CDS vertex to one of its CDS neighbours.
    let mut unattached: Vec<PatternVertex> =
        pattern.vertices().filter(|&v| !in_cds(v)).collect();
    // Give priority to pivots that would otherwise end up without leaves.
    unattached.sort_unstable();
    for &v in &unattached {
        let mut cands: Vec<PatternVertex> = pattern
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| in_cds(w))
            .collect();
        if cands.is_empty() {
            return None; // not a dominating set (cannot happen)
        }
        cands.sort_by_key(|&w| {
            let empty_first = if leaves[rank(w)].is_empty() { 0 } else { 1 };
            let strat_key = match strategy {
                AttachStrategy::Earliest => rank(w) as i64,
                AttachStrategy::Latest => -(rank(w) as i64),
                AttachStrategy::HighestDegree => -(pattern.degree(w) as i64),
            };
            (empty_first, strat_key, w)
        });
        leaves[rank(cands[0])].push(v);
    }
    if leaves.iter().any(|l| l.is_empty()) {
        return None;
    }
    let units: Vec<DecompositionUnit> = order
        .iter()
        .zip(leaves)
        .map(|(&pivot, lf)| DecompositionUnit::new(pivot, lf))
        .collect();
    ExecutionPlan::new(pattern.clone(), units).ok()
}

/// Enumerates candidate execution plans with the minimum number of rounds
/// (`c_P` units), following the constructive proof of Theorem 1: one plan per
/// (minimum CDS, root, attachment strategy) combination that yields a valid
/// plan. Duplicates are removed.
pub fn enumerate_minimum_round_plans(pattern: &Pattern) -> Vec<ExecutionPlan> {
    let mut plans: Vec<ExecutionPlan> = Vec::new();
    for cds in minimum_connected_dominating_sets(pattern) {
        for &root in &cds {
            for strategy in [
                AttachStrategy::Earliest,
                AttachStrategy::Latest,
                AttachStrategy::HighestDegree,
            ] {
                if let Some(plan) = plan_from_cds(pattern, &cds, root, strategy) {
                    if !plans.iter().any(|p| p.units() == plan.units()) {
                        plans.push(plan);
                    }
                }
            }
        }
    }
    // Theorem 1 guarantees at least one minimum-round plan exists; our
    // attachment heuristics realise one for every pattern we tested, but fall
    // back to a greedy star decomposition just in case.
    if plans.is_empty() {
        plans.push(fallback_star_plan(pattern));
    }
    plans
}

/// Greedy star decomposition used as a safety net: always valid, not
/// necessarily minimum-round.
pub(crate) fn fallback_star_plan(pattern: &Pattern) -> ExecutionPlan {
    let start = pattern
        .vertices()
        .max_by_key(|&u| pattern.degree(u))
        .expect("pattern must have vertices");
    let mut covered = vec![false; pattern.vertex_count()];
    covered[start] = true;
    let mut units = Vec::new();
    let mut frontier = vec![start];
    loop {
        // pick the covered vertex with the most uncovered neighbours
        let pivot = frontier
            .iter()
            .copied()
            .max_by_key(|&v| pattern.neighbors(v).iter().filter(|&&w| !covered[w]).count());
        let Some(pivot) = pivot else { break };
        let leaves: Vec<PatternVertex> = pattern
            .neighbors(pivot)
            .iter()
            .copied()
            .filter(|&w| !covered[w])
            .collect();
        if leaves.is_empty() {
            break;
        }
        for &l in &leaves {
            covered[l] = true;
            frontier.push(l);
        }
        units.push(DecompositionUnit::new(pivot, leaves));
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    ExecutionPlan::new(pattern.clone(), units).expect("greedy star decomposition is always valid")
}

/// Computes the best execution plan according to the paper's rule chain.
pub fn best_plan(pattern: &Pattern, config: &PlannerConfig) -> ExecutionPlan {
    let plans = enumerate_minimum_round_plans(pattern);
    let min_rounds = plans.iter().map(|p| p.rounds()).min().unwrap();
    let candidates: Vec<&ExecutionPlan> =
        plans.iter().filter(|p| p.rounds() == min_rounds).collect();
    let min_span = candidates.iter().map(|p| p.start_span()).min().unwrap();
    let candidates: Vec<&ExecutionPlan> = candidates
        .into_iter()
        .filter(|p| p.start_span() == min_span)
        .collect();
    candidates
        .into_iter()
        .max_by(|a, b| {
            a.score(config.rho)
                .partial_cmp(&b.score(config.rho))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one candidate plan")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::queries;

    #[test]
    fn minimum_round_plans_match_domination_number() {
        for nq in queries::standard_query_set().into_iter().chain(queries::clique_query_set()) {
            let c_p = nq.pattern.connected_domination_number();
            let plans = enumerate_minimum_round_plans(&nq.pattern);
            assert!(!plans.is_empty(), "{}: no plans", nq.name);
            let min_rounds = plans.iter().map(|p| p.rounds()).min().unwrap();
            assert_eq!(min_rounds, c_p, "{}: rounds != c_P", nq.name);
        }
    }

    #[test]
    fn running_example_has_three_round_plans() {
        let p = queries::running_example_pattern();
        // Example 4: the minimum number of rounds is 3 (pivots u0, u1, u2).
        assert_eq!(p.connected_domination_number(), 3);
        let plans = enumerate_minimum_round_plans(&p);
        assert!(plans.iter().all(|pl| pl.rounds() >= 3));
        assert!(plans.iter().any(|pl| pl.rounds() == 3));
    }

    #[test]
    fn best_plan_prefers_small_span_and_high_score() {
        let p = queries::running_example_pattern();
        let best = best_plan(&p, &PlannerConfig::default());
        assert_eq!(best.rounds(), 3);
        // All three-round plans of this pattern have pivot sets {u0,u1,u2};
        // the best start vertex by span is u0 (span 2) rather than u1/u2
        // (span 3).
        assert_eq!(best.start_vertex(), 0);
        assert_eq!(best.start_span(), 2);
    }

    #[test]
    fn best_plan_is_valid_for_all_queries() {
        for nq in queries::standard_query_set().into_iter().chain(queries::clique_query_set()) {
            let plan = best_plan(&nq.pattern, &PlannerConfig::default());
            // validation happened inside ExecutionPlan::new; spot-check the
            // basic structure here
            assert_eq!(
                plan.matching_order().len(),
                nq.pattern.vertex_count(),
                "{}: matching order incomplete",
                nq.name
            );
            let classified = plan.edge_classes().len();
            assert_eq!(classified, nq.pattern.edge_count(), "{}: edges missing", nq.name);
        }
    }

    #[test]
    fn triangle_best_plan_is_single_round() {
        let p = queries::query_by_name("triangle").unwrap();
        let plan = best_plan(&p, &PlannerConfig::default());
        assert_eq!(plan.rounds(), 1);
        assert_eq!(plan.units()[0].leaves.len(), 2);
    }

    #[test]
    fn fallback_star_plan_is_valid_for_every_query() {
        for nq in queries::standard_query_set() {
            let plan = fallback_star_plan(&nq.pattern);
            assert!(plan.rounds() >= 1);
            assert!(plan.rounds() >= nq.pattern.connected_domination_number());
        }
    }

    #[test]
    fn span_example_prefers_low_span_root() {
        // Figure 4: two candidate roots with equal round counts but spans 2
        // and 3 — the plan must pick the span-2 root.
        let p = queries::span_example_pattern();
        let plan = best_plan(&p, &PlannerConfig::default());
        let min_span_possible = enumerate_minimum_round_plans(&p)
            .iter()
            .map(|pl| pl.start_span())
            .min()
            .unwrap();
        assert_eq!(plan.start_span(), min_span_possible);
    }

    #[test]
    fn k33_plans_exist() {
        let p = queries::q8();
        assert_eq!(p.connected_domination_number(), 2);
        let plan = best_plan(&p, &PlannerConfig::default());
        assert_eq!(plan.rounds(), 2);
    }
}
