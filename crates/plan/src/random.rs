//! The baseline planners of the Figure 13 ablation.
//!
//! * `RanS` — a plan made of random star decomposition units (no limit on
//!   star size, no round-count optimization).
//! * `RanM` — a random plan among those with the minimum number of rounds
//!   (ignores the span and scoring heuristics of Sections 4.2–4.3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rads_graph::{Pattern, PatternVertex};

use crate::compute::enumerate_minimum_round_plans;
use crate::plan::{DecompositionUnit, ExecutionPlan};

/// `RanS`: a random star decomposition. Starting from a random vertex, each
/// round picks a random already-covered vertex that still has uncovered
/// neighbours and takes a random non-empty subset of them as leaves.
pub fn random_star_plan(pattern: &Pattern, seed: u64) -> ExecutionPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = pattern.vertex_count();
    let mut covered = vec![false; n];
    let start = rng.gen_range(0..n);
    covered[start] = true;
    let mut units: Vec<DecompositionUnit> = Vec::new();
    while covered.iter().any(|&c| !c) {
        // candidate pivots: covered vertices with at least one uncovered neighbour
        let mut pivots: Vec<PatternVertex> = pattern
            .vertices()
            .filter(|&v| covered[v] && pattern.neighbors(v).iter().any(|&w| !covered[w]))
            .collect();
        pivots.shuffle(&mut rng);
        let pivot = pivots[0];
        let mut uncovered: Vec<PatternVertex> = pattern
            .neighbors(pivot)
            .iter()
            .copied()
            .filter(|&w| !covered[w])
            .collect();
        uncovered.shuffle(&mut rng);
        // random non-empty prefix
        let take = rng.gen_range(1..=uncovered.len());
        let leaves: Vec<PatternVertex> = uncovered.into_iter().take(take).collect();
        for &l in &leaves {
            covered[l] = true;
        }
        units.push(DecompositionUnit::new(pivot, leaves));
    }
    ExecutionPlan::new(pattern.clone(), units)
        .expect("random star construction always yields a valid plan")
}

/// `RanM`: a uniformly random plan among the enumerated minimum-round plans.
pub fn random_min_round_plan(pattern: &Pattern, seed: u64) -> ExecutionPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let plans = enumerate_minimum_round_plans(pattern);
    let min_rounds = plans.iter().map(|p| p.rounds()).min().unwrap();
    let minimal: Vec<ExecutionPlan> =
        plans.into_iter().filter(|p| p.rounds() == min_rounds).collect();
    minimal[rng.gen_range(0..minimal.len())].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::queries;

    #[test]
    fn random_star_plan_is_valid_and_reproducible() {
        for nq in queries::standard_query_set() {
            for seed in 0..5u64 {
                let a = random_star_plan(&nq.pattern, seed);
                let b = random_star_plan(&nq.pattern, seed);
                assert_eq!(a.units(), b.units(), "{} seed {seed} not reproducible", nq.name);
                // plan covers all vertices — ExecutionPlan::new validated it
                assert_eq!(a.matching_order().len(), nq.pattern.vertex_count());
                assert!(a.rounds() >= nq.pattern.connected_domination_number());
            }
        }
    }

    #[test]
    fn random_star_plans_vary_with_seed() {
        let p = queries::running_example_pattern();
        let distinct: std::collections::HashSet<usize> =
            (0..20).map(|s| random_star_plan(&p, s).rounds()).collect();
        assert!(distinct.len() > 1, "RanS should produce varying round counts");
    }

    #[test]
    fn random_min_round_plan_has_minimum_rounds() {
        for nq in queries::standard_query_set() {
            let c_p = nq.pattern.connected_domination_number();
            for seed in 0..3u64 {
                let plan = random_min_round_plan(&nq.pattern, seed);
                assert_eq!(plan.rounds(), c_p, "{} seed {seed}", nq.name);
            }
        }
    }

    #[test]
    fn ran_s_generally_uses_more_rounds_than_ran_m() {
        let p = queries::running_example_pattern();
        let avg_rans: f64 =
            (0..10).map(|s| random_star_plan(&p, s).rounds() as f64).sum::<f64>() / 10.0;
        let ranm = random_min_round_plan(&p, 0).rounds() as f64;
        assert!(avg_rans >= ranm);
    }
}
