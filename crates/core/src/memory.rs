//! Memory estimation for region-group sizing (Section 6).
//!
//! The dominant memory consumers on a machine are the intermediate results
//! (stored in the embedding trie) and the fetched foreign vertices. The paper
//! estimates the space of a region group from the *average embedding-trie
//! node count per start candidate*, measured for free while SM-E runs its
//! backtracking search (the sum of candidates matched at every recursive step
//! equals the trie node count of the local embeddings). Fetched foreign
//! vertices get a separate small allowance and can be evicted, so they are
//! excluded from the group estimate, just as in the paper.
//!
//! The estimate is only a *prior*: on adversarial inputs (power-law hubs,
//! clique queries) the distributed candidates behave nothing like the SM-E
//! sample and the static estimate can be an order of magnitude too low. The
//! [`crate::governor::MemoryGovernor`] therefore re-fits
//! [`SpaceEstimator::refit`] online from the nodes-per-candidate it actually
//! observes, and the engine enforces the budget at runtime instead of
//! trusting the prior.

use crate::trie::EmbeddingTrie;
use rads_runtime::ConfigError;

/// Environment variable read by [`MemoryBudget::from_env`] (and therefore by
/// `RadsConfig::default()`): the per-region-group budget `Φ` in bytes, with
/// optional `k`/`m`/`g` suffix (e.g. `RADS_MEMORY_BUDGET=64k`). The same
/// value also bounds the foreign-vertex cache allowance, so a tiny budget
/// exercises the governor's split *and* the cache's eviction paths — the CI
/// matrix runs the whole suite once under `RADS_MEMORY_BUDGET=4k`.
pub const MEMORY_BUDGET_ENV: &str = "RADS_MEMORY_BUDGET";

/// The per-machine memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// `Φ`: the bytes one region group's intermediate results (embedding-trie
    /// nodes plus expansion buffers) may occupy. Enforced a priori by region
    /// grouping and at runtime by the memory governor.
    pub region_group_bytes: usize,
    /// The separate, evictable allowance for fetched foreign vertices
    /// (Appendix B): the byte capacity of each worker's LRU
    /// [`crate::cache::ForeignVertexCache`].
    pub cache_bytes: usize,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget {
            // A deliberately small default so the grouping logic is exercised
            // even on the laptop-scale datasets of this reproduction.
            region_group_bytes: 4 * 1024 * 1024,
            // Foreign vertices are cheap to re-fetch; a few MiB of adjacency
            // lists is plenty at reproduction scale.
            cache_bytes: 8 * 1024 * 1024,
        }
    }
}

impl MemoryBudget {
    /// A budget of `mb` mebibytes per region group (cache allowance at its
    /// default).
    pub fn from_megabytes(mb: usize) -> Self {
        MemoryBudget { region_group_bytes: mb * 1024 * 1024, ..Default::default() }
    }

    /// A budget of `bytes` for the region groups *and* for the cache
    /// allowance — the shape the `RADS_MEMORY_BUDGET` variable configures.
    pub fn from_bytes(bytes: usize) -> Self {
        MemoryBudget { region_group_bytes: bytes, cache_bytes: bytes }
    }

    /// An effectively unlimited budget (grouping degenerates to one group per
    /// machine and the governor never splits).
    pub fn unlimited() -> Self {
        MemoryBudget { region_group_bytes: usize::MAX, cache_bytes: usize::MAX }
    }

    /// The budget configured by the `RADS_MEMORY_BUDGET` environment
    /// variable: `Ok(None)` when unset, `Ok(Some(..))` for a valid size, and
    /// a typed [`ConfigError`] for a malformed or zero value (instead of the
    /// old behaviour of silently falling back to the default). Accepts plain
    /// bytes or a `k`/`m`/`g` binary suffix, case-insensitive: `65536`,
    /// `64k`, `4m`, `1g`.
    pub fn from_env() -> Result<Option<Self>, ConfigError> {
        Self::from_env_value(std::env::var(MEMORY_BUDGET_ENV).ok().as_deref())
    }

    /// [`MemoryBudget::from_env`] over an explicit value (`None` = unset), so
    /// the parse rules are unit-testable without mutating the environment.
    pub fn from_env_value(raw: Option<&str>) -> Result<Option<Self>, ConfigError> {
        match raw {
            None => Ok(None),
            Some(raw) => match parse_bytes(raw) {
                Some(bytes) => Ok(Some(Self::from_bytes(bytes))),
                None => Err(ConfigError {
                    var: MEMORY_BUDGET_ENV,
                    value: raw.to_string(),
                    expected: "a positive byte count, optionally with a k/m/g suffix (e.g. 64k)",
                }),
            },
        }
    }

    /// [`MemoryBudget::from_env`] with the default as fallback. Library-level
    /// backstop: binaries should call `from_env()` up front and report the
    /// [`ConfigError`] cleanly; this panics only if they did not.
    pub fn default_from_env() -> Self {
        Self::from_env().unwrap_or_else(|e| panic!("{e}")).unwrap_or_default()
    }
}

/// Parses `64k`-style byte sizes (plain number, or `k`/`m`/`g` binary
/// suffix, case-insensitive). Returns `None` for malformed or zero values.
pub fn parse_bytes(raw: &str) -> Option<usize> {
    let s = raw.trim();
    let (digits, multiplier) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1024usize),
        'm' | 'M' => (&s[..s.len() - 1], 1024 * 1024),
        'g' | 'G' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    let value: usize = digits.trim().parse().ok()?;
    value.checked_mul(multiplier).filter(|&b| b > 0)
}

/// Estimates the space cost `φ(rg)` of the results originating from a region
/// group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceEstimator {
    /// Estimated trie nodes generated per start candidate.
    nodes_per_candidate: f64,
}

impl SpaceEstimator {
    /// Builds the estimator from SM-E measurements: `total_nodes` search-tree
    /// nodes observed over `candidates` start candidates.
    pub fn from_sme(total_nodes: u64, candidates: usize) -> Self {
        if candidates == 0 {
            return Self::fallback(8.0, 4);
        }
        SpaceEstimator {
            nodes_per_candidate: (total_nodes as f64 / candidates as f64).max(1.0),
        }
    }

    /// Fallback estimator when SM-E processed no candidates (e.g. hash
    /// partitioning where every vertex is a border vertex): a geometric model
    /// `avg_degree^(pattern_size - 1)`, clamped to keep groups non-degenerate.
    pub fn fallback(avg_degree: f64, pattern_size: usize) -> Self {
        let est = avg_degree.max(1.0).powi(pattern_size.saturating_sub(1).min(6) as i32);
        SpaceEstimator { nodes_per_candidate: est.clamp(1.0, 1e9) }
    }

    /// Estimated trie nodes generated per start candidate.
    pub fn nodes_per_candidate(&self) -> f64 {
        self.nodes_per_candidate
    }

    /// Online re-fit from runtime observations (the governor feeds it the
    /// per-candidate trie growth it actually saw). The estimate is raised to
    /// the observed value but never lowered — under-estimation is what blows
    /// the budget, while over-estimation merely yields smaller groups.
    /// Returns `true` when the estimate changed.
    pub fn refit(&mut self, observed_nodes_per_candidate: f64) -> bool {
        let observed = observed_nodes_per_candidate.min(1e12);
        if observed > self.nodes_per_candidate {
            self.nodes_per_candidate = observed;
            true
        } else {
            false
        }
    }

    /// Estimated bytes of intermediate results for a region group of
    /// `group_size` candidates (`φ(rg)`).
    pub fn estimate_group_bytes(&self, group_size: usize) -> usize {
        (self.nodes_per_candidate * group_size as f64 * EmbeddingTrie::NODE_BYTES as f64) as usize
    }

    /// The largest group size whose estimate fits in the budget (at least 1,
    /// so progress is always possible).
    pub fn max_group_size(&self, budget: &MemoryBudget) -> usize {
        if budget.region_group_bytes == usize::MAX {
            return usize::MAX;
        }
        let per_candidate = (self.nodes_per_candidate * EmbeddingTrie::NODE_BYTES as f64).max(1.0);
        ((budget.region_group_bytes as f64 / per_candidate) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_env_value_parses_suffixes_and_rejects_garbage() {
        assert_eq!(MemoryBudget::from_env_value(None).expect("unset"), None);
        assert_eq!(
            MemoryBudget::from_env_value(Some("64k")).expect("64k"),
            Some(MemoryBudget::from_bytes(64 * 1024))
        );
        assert_eq!(
            MemoryBudget::from_env_value(Some("4M")).expect("4M"),
            Some(MemoryBudget::from_bytes(4 * 1024 * 1024))
        );
        for bad in ["", "lots", "-4k", "0", "4q"] {
            let err = MemoryBudget::from_env_value(Some(bad))
                .expect_err("garbage must be a typed error, not a silent default");
            assert_eq!(err.var, MEMORY_BUDGET_ENV);
            assert_eq!(err.value, bad);
            assert!(err.to_string().contains(MEMORY_BUDGET_ENV), "{err}");
        }
    }

    #[test]
    fn sme_estimator_averages_nodes() {
        let e = SpaceEstimator::from_sme(1000, 10);
        assert!((e.nodes_per_candidate() - 100.0).abs() < 1e-9);
        let bytes = e.estimate_group_bytes(5);
        assert_eq!(bytes, (100.0 * 5.0 * EmbeddingTrie::NODE_BYTES as f64) as usize);
    }

    #[test]
    fn zero_candidates_falls_back() {
        let e = SpaceEstimator::from_sme(0, 0);
        assert!(e.nodes_per_candidate() >= 1.0);
    }

    #[test]
    fn fallback_grows_with_degree_and_pattern_size() {
        let small = SpaceEstimator::fallback(2.0, 3);
        let large = SpaceEstimator::fallback(10.0, 5);
        assert!(large.nodes_per_candidate() > small.nodes_per_candidate());
    }

    #[test]
    fn max_group_size_respects_budget() {
        let e = SpaceEstimator::from_sme(1200, 10); // 120 nodes per candidate
        let budget = MemoryBudget {
            region_group_bytes: 120 * EmbeddingTrie::NODE_BYTES * 7,
            ..Default::default()
        };
        assert_eq!(e.max_group_size(&budget), 7);
        // a tiny budget still allows one candidate per group
        let tiny = MemoryBudget { region_group_bytes: 1, ..Default::default() };
        assert_eq!(e.max_group_size(&tiny), 1);
        // the unlimited budget never caps a group
        assert_eq!(e.max_group_size(&MemoryBudget::unlimited()), usize::MAX);
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(MemoryBudget::from_megabytes(2).region_group_bytes, 2 * 1024 * 1024);
        assert!(MemoryBudget::default().region_group_bytes > 0);
        assert!(MemoryBudget::default().cache_bytes > 0);
        let b = MemoryBudget::from_bytes(4096);
        assert_eq!((b.region_group_bytes, b.cache_bytes), (4096, 4096));
        assert_eq!(MemoryBudget::unlimited().region_group_bytes, usize::MAX);
    }

    #[test]
    fn byte_size_parsing() {
        assert_eq!(parse_bytes("65536"), Some(65536));
        assert_eq!(parse_bytes("64k"), Some(64 * 1024));
        assert_eq!(parse_bytes(" 4M "), Some(4 * 1024 * 1024));
        assert_eq!(parse_bytes("1g"), Some(1024 * 1024 * 1024));
        assert_eq!(parse_bytes("0"), None);
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("k"), None);
    }

    #[test]
    fn refit_only_raises_the_estimate() {
        let mut e = SpaceEstimator::from_sme(100, 10); // 10 nodes/candidate
        assert!(!e.refit(5.0), "refit must not lower the estimate");
        assert!((e.nodes_per_candidate() - 10.0).abs() < 1e-9);
        assert!(e.refit(250.0));
        assert!((e.nodes_per_candidate() - 250.0).abs() < 1e-9);
        // a raised estimate shrinks the admissible group size
        let budget = MemoryBudget {
            region_group_bytes: 250 * EmbeddingTrie::NODE_BYTES * 3,
            ..Default::default()
        };
        assert_eq!(e.max_group_size(&budget), 3);
    }
}
