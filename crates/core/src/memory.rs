//! Memory estimation for region-group sizing (Section 6).
//!
//! The dominant memory consumers on a machine are the intermediate results
//! (stored in the embedding trie) and the fetched foreign vertices. The paper
//! estimates the space of a region group from the *average embedding-trie
//! node count per start candidate*, measured for free while SM-E runs its
//! backtracking search (the sum of candidates matched at every recursive step
//! equals the trie node count of the local embeddings). Fetched foreign
//! vertices get a separate small allowance and can be evicted, so they are
//! excluded from the group estimate, just as in the paper.

use crate::trie::EmbeddingTrie;

/// The per-machine memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// `Φ`: the bytes one region group's intermediate results may occupy.
    pub region_group_bytes: usize,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        // A deliberately small default so the grouping logic is exercised even
        // on the laptop-scale datasets of this reproduction.
        MemoryBudget { region_group_bytes: 4 * 1024 * 1024 }
    }
}

impl MemoryBudget {
    /// A budget of `mb` mebibytes per region group.
    pub fn from_megabytes(mb: usize) -> Self {
        MemoryBudget { region_group_bytes: mb * 1024 * 1024 }
    }
}

/// Estimates the space cost `φ(rg)` of the results originating from a region
/// group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceEstimator {
    /// Estimated trie nodes generated per start candidate.
    nodes_per_candidate: f64,
}

impl SpaceEstimator {
    /// Builds the estimator from SM-E measurements: `total_nodes` search-tree
    /// nodes observed over `candidates` start candidates.
    pub fn from_sme(total_nodes: u64, candidates: usize) -> Self {
        if candidates == 0 {
            return Self::fallback(8.0, 4);
        }
        SpaceEstimator {
            nodes_per_candidate: (total_nodes as f64 / candidates as f64).max(1.0),
        }
    }

    /// Fallback estimator when SM-E processed no candidates (e.g. hash
    /// partitioning where every vertex is a border vertex): a geometric model
    /// `avg_degree^(pattern_size - 1)`, clamped to keep groups non-degenerate.
    pub fn fallback(avg_degree: f64, pattern_size: usize) -> Self {
        let est = avg_degree.max(1.0).powi(pattern_size.saturating_sub(1).min(6) as i32);
        SpaceEstimator { nodes_per_candidate: est.clamp(1.0, 1e9) }
    }

    /// Estimated trie nodes generated per start candidate.
    pub fn nodes_per_candidate(&self) -> f64 {
        self.nodes_per_candidate
    }

    /// Estimated bytes of intermediate results for a region group of
    /// `group_size` candidates (`φ(rg)`).
    pub fn estimate_group_bytes(&self, group_size: usize) -> usize {
        (self.nodes_per_candidate * group_size as f64 * EmbeddingTrie::NODE_BYTES as f64) as usize
    }

    /// The largest group size whose estimate fits in the budget (at least 1,
    /// so progress is always possible).
    pub fn max_group_size(&self, budget: &MemoryBudget) -> usize {
        let per_candidate = (self.nodes_per_candidate * EmbeddingTrie::NODE_BYTES as f64).max(1.0);
        ((budget.region_group_bytes as f64 / per_candidate) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sme_estimator_averages_nodes() {
        let e = SpaceEstimator::from_sme(1000, 10);
        assert!((e.nodes_per_candidate() - 100.0).abs() < 1e-9);
        let bytes = e.estimate_group_bytes(5);
        assert_eq!(bytes, (100.0 * 5.0 * EmbeddingTrie::NODE_BYTES as f64) as usize);
    }

    #[test]
    fn zero_candidates_falls_back() {
        let e = SpaceEstimator::from_sme(0, 0);
        assert!(e.nodes_per_candidate() >= 1.0);
    }

    #[test]
    fn fallback_grows_with_degree_and_pattern_size() {
        let small = SpaceEstimator::fallback(2.0, 3);
        let large = SpaceEstimator::fallback(10.0, 5);
        assert!(large.nodes_per_candidate() > small.nodes_per_candidate());
    }

    #[test]
    fn max_group_size_respects_budget() {
        let e = SpaceEstimator::from_sme(1200, 10); // 120 nodes per candidate
        let budget = MemoryBudget { region_group_bytes: 120 * EmbeddingTrie::NODE_BYTES * 7 };
        assert_eq!(e.max_group_size(&budget), 7);
        // a tiny budget still allows one candidate per group
        let tiny = MemoryBudget { region_group_bytes: 1 };
        assert_eq!(e.max_group_size(&tiny), 1);
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(MemoryBudget::from_megabytes(2).region_group_bytes, 2 * 1024 * 1024);
        assert!(MemoryBudget::default().region_group_bytes > 0);
    }
}
