//! Region grouping (Section 6, Algorithm 3).
//!
//! The candidate vertices of the start query vertex are divided into disjoint
//! *region groups*, each processed independently so that the cached
//! intermediate results never exceed the memory budget. Groups are grown
//! greedily by *proximity* — the fraction of a candidate's neighbours that
//! are already neighbours of the group — so candidates in one group share
//! verification edges and foreign-vertex fetches.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rads_graph::VertexId;
use rads_partition::LocalPartition;

use crate::memory::{MemoryBudget, SpaceEstimator};

/// How the candidate set is split into region groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupingStrategy {
    /// Algorithm 3: grow each group by maximum proximity to the group.
    Proximity,
    /// Ablation baseline: random assignment respecting only the size cap.
    Random,
}

/// The proximity of `v` to the group whose united neighbourhood is
/// `group_neighborhood` (equation 5): `|adj(v) ∩ N(rg)| / |adj(v)|`.
pub fn proximity(adjacency: &[VertexId], group_neighborhood: &HashSet<VertexId>) -> f64 {
    if adjacency.is_empty() {
        return 0.0;
    }
    let shared = adjacency.iter().filter(|v| group_neighborhood.contains(v)).count();
    shared as f64 / adjacency.len() as f64
}

/// The members of `group` whose adjacency is *foreign*: not owned by this
/// machine and not already covered per `cached`. This is the round-0
/// `fetchV` set of a region group — computed both when a group starts its
/// first round and, by the async driver, one group ahead so the fetches are
/// already in flight while the previous group is still expanding. Order is
/// the group's member order; callers sort/dedup as part of batching.
pub fn foreign_members(
    local: &LocalPartition,
    group: &[VertexId],
    cached: impl Fn(VertexId) -> bool,
) -> Vec<VertexId> {
    group.iter().copied().filter(|&v| !local.owns(v) && !cached(v)).collect()
}

/// Splits `candidates` (start-vertex candidates owned by this machine) into
/// region groups.
///
/// * With [`GroupingStrategy::Proximity`], groups are grown as in Algorithm 3:
///   start from a random candidate, repeatedly add the candidate with the
///   highest proximity to the group, and stop when the estimated memory cost
///   `φ(rg)` would exceed the budget `Φ`.
/// * With [`GroupingStrategy::Random`], candidates are shuffled and chopped
///   into chunks of the same maximum size.
///
/// Every candidate appears in exactly one group and every group is non-empty.
pub fn find_region_groups(
    local: &LocalPartition,
    candidates: &[VertexId],
    estimator: &SpaceEstimator,
    budget: &MemoryBudget,
    strategy: GroupingStrategy,
    seed: u64,
) -> Vec<Vec<VertexId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_size = estimator.max_group_size(budget);
    let mut remaining: Vec<VertexId> = candidates.to_vec();
    remaining.shuffle(&mut rng);
    let mut groups = Vec::new();
    match strategy {
        GroupingStrategy::Random => {
            for chunk in remaining.chunks(max_size) {
                groups.push(chunk.to_vec());
            }
        }
        GroupingStrategy::Proximity => {
            while let Some(first) = remaining.pop() {
                let mut group = vec![first];
                let mut neighborhood: HashSet<VertexId> =
                    local.neighbors(first).map(|n| n.iter().copied().collect()).unwrap_or_default();
                while !remaining.is_empty()
                    && group.len() < max_size
                    && estimator.estimate_group_bytes(group.len() + 1) <= budget.region_group_bytes.max(1)
                {
                    // candidate with maximum proximity to the group
                    let (best_idx, _) = remaining
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            let adj = local.neighbors(v).unwrap_or(&[]);
                            (i, proximity(adj, &neighborhood))
                        })
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .expect("remaining is non-empty");
                    let v = remaining.swap_remove(best_idx);
                    if let Some(adj) = local.neighbors(v) {
                        neighborhood.extend(adj.iter().copied());
                    }
                    group.push(v);
                }
                groups.push(group);
            }
        }
    }
    groups.retain(|g| !g.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::community_graph;
    use rads_graph::GraphBuilder;
    use rads_partition::{Partitioning, PartitionedGraph};

    fn single_machine_partition(graph: &rads_graph::Graph) -> PartitionedGraph {
        PartitionedGraph::build(graph, Partitioning::single_machine(graph.vertex_count()))
    }

    #[test]
    fn proximity_definition() {
        let nbh: HashSet<VertexId> = [1, 2, 3].into_iter().collect();
        assert!((proximity(&[1, 2, 9, 10], &nbh) - 0.5).abs() < 1e-9);
        assert_eq!(proximity(&[], &nbh), 0.0);
        assert_eq!(proximity(&[7], &nbh), 0.0);
        assert_eq!(proximity(&[1], &nbh), 1.0);
    }

    #[test]
    fn groups_partition_the_candidates() {
        let g = community_graph(4, 10, 0.5, 0.02, 1);
        let pg = single_machine_partition(&g);
        let local = pg.local(0);
        let candidates: Vec<VertexId> = g.vertices().collect();
        let estimator = SpaceEstimator::from_sme(400, 40); // 10 nodes per candidate
        let budget = MemoryBudget { region_group_bytes: 10 * crate::trie::EmbeddingTrie::NODE_BYTES * 8, ..Default::default() };
        for strategy in [GroupingStrategy::Proximity, GroupingStrategy::Random] {
            let groups =
                find_region_groups(local, &candidates, &estimator, &budget, strategy, 7);
            let mut seen: Vec<VertexId> = groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            let mut expected = candidates.clone();
            expected.sort_unstable();
            assert_eq!(seen, expected, "{strategy:?} lost or duplicated candidates");
            assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= 8), "{strategy:?}");
        }
    }

    #[test]
    fn proximity_grouping_keeps_communities_together() {
        // Two well-separated cliques; with a group capacity equal to the
        // clique size, proximity grouping should produce groups that stay
        // within one clique, while random grouping usually mixes them.
        let mut b = GraphBuilder::new(12);
        for base in [0u32, 6] {
            for i in 0..6u32 {
                for j in i + 1..6 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        // one weak link between the cliques
        b.add_edge(0, 6);
        let g = b.build();
        let pg = single_machine_partition(&g);
        let local = pg.local(0);
        let candidates: Vec<VertexId> = g.vertices().collect();
        let estimator = SpaceEstimator::from_sme(120, 12); // 10 nodes/candidate
        let budget = MemoryBudget { region_group_bytes: 10 * crate::trie::EmbeddingTrie::NODE_BYTES * 6, ..Default::default() };
        let groups = find_region_groups(
            local,
            &candidates,
            &estimator,
            &budget,
            GroupingStrategy::Proximity,
            3,
        );
        assert_eq!(groups.len(), 2);
        for group in &groups {
            let left = group.iter().filter(|&&v| v < 6).count();
            let right = group.len() - left;
            assert!(
                left == 0 || right == 0 || left == 1 || right == 1,
                "group {group:?} mixes the two cliques"
            );
        }
    }

    #[test]
    fn tiny_budget_yields_singleton_groups() {
        let g = community_graph(2, 5, 0.6, 0.1, 2);
        let pg = single_machine_partition(&g);
        let local = pg.local(0);
        let candidates: Vec<VertexId> = g.vertices().collect();
        let estimator = SpaceEstimator::from_sme(1000, 10);
        let budget = MemoryBudget { region_group_bytes: 1, ..Default::default() };
        let groups = find_region_groups(
            local,
            &candidates,
            &estimator,
            &budget,
            GroupingStrategy::Proximity,
            0,
        );
        assert_eq!(groups.len(), candidates.len());
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn empty_candidate_set_gives_no_groups() {
        let g = community_graph(1, 5, 0.5, 0.0, 2);
        let pg = single_machine_partition(&g);
        let groups = find_region_groups(
            pg.local(0),
            &[],
            &SpaceEstimator::from_sme(10, 1),
            &MemoryBudget::default(),
            GroupingStrategy::Proximity,
            0,
        );
        assert!(groups.is_empty());
    }
}
