//! The foreign-vertex cache.
//!
//! "If a foreign vertex is already cached in the local machine, for the
//! undetermined edges attached to this vertex, we can verify them locally
//! without sending requests to other machines. Also we do not re-fetch any
//! foreign vertex if it is already cached previously." (Appendix B)
//!
//! The paper gives fetched foreign vertices a *separate, evictable*
//! allowance: they are not part of a region group's intermediate results, so
//! they are excluded from the group estimate `φ(rg)`, and may be dropped at
//! any time without affecting correctness (a dropped vertex is simply
//! re-fetched on next use). This cache enforces that allowance with a
//! byte-bounded LRU policy: entries form an intrusive recency list (O(1)
//! touch and evict), every insert evicts least-recently-used entries until
//! the new adjacency list fits, and the hit/miss/eviction counters are
//! surfaced through `EngineStats` so experiments can report cache pressure.

use std::collections::HashMap;

use rads_graph::VertexId;

/// Hit/miss/eviction counters of a [`ForeignVertexCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the vertex already cached.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay under the byte capacity.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    adjacency: Vec<VertexId>,
    /// More recently used neighbour in the recency list (`None` = newest).
    prev: Option<VertexId>,
    /// Less recently used neighbour (`None` = oldest, next to evict).
    next: Option<VertexId>,
}

/// Per-machine cache of foreign adjacency lists fetched with `fetchV`,
/// bounded to `capacity_bytes` with LRU eviction.
#[derive(Debug, Clone)]
pub struct ForeignVertexCache {
    entries: HashMap<VertexId, Entry>,
    /// Most recently used vertex.
    head: Option<VertexId>,
    /// Least recently used vertex (evicted first).
    tail: Option<VertexId>,
    /// Current accounted bytes of every cached adjacency list.
    bytes: usize,
    /// Highest `bytes` ever observed.
    peak_bytes: usize,
    /// Byte capacity; inserts evict until the new entry fits.
    capacity_bytes: usize,
    stats: CacheStats,
    /// Whether caching is enabled; when disabled (ablation), inserts are
    /// dropped so every use re-fetches — misses are still counted, so the
    /// ablation run reports the full fetch pressure it causes.
    enabled: bool,
}

impl Default for ForeignVertexCache {
    fn default() -> Self {
        ForeignVertexCache::new()
    }
}

impl ForeignVertexCache {
    /// An enabled cache with no byte bound (legacy behaviour; the engine uses
    /// [`ForeignVertexCache::with_capacity`]).
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// An enabled, empty cache that evicts LRU entries to keep its accounted
    /// bytes at or below `capacity_bytes`.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        ForeignVertexCache {
            entries: HashMap::new(),
            head: None,
            tail: None,
            bytes: 0,
            peak_bytes: 0,
            capacity_bytes,
            stats: CacheStats::default(),
            enabled: true,
        }
    }

    /// A cache that never retains anything (the `ablation_cache` setting).
    pub fn disabled() -> Self {
        ForeignVertexCache { enabled: false, ..Self::new() }
    }

    /// Whether caching is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of cached adjacency lists.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The byte capacity inserts are held to.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes the accounting model charges for caching `adjacency` under one
    /// vertex key (the key plus its list entries).
    pub fn entry_bytes(adjacency_len: usize) -> usize {
        std::mem::size_of::<VertexId>() * (adjacency_len + 1)
    }

    /// Unlinks `vertex` from the recency list (must be present).
    fn unlink(&mut self, vertex: VertexId) {
        let (prev, next) = {
            let e = &self.entries[&vertex];
            (e.prev, e.next)
        };
        match prev {
            Some(p) => self.entries.get_mut(&p).expect("linked prev").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.entries.get_mut(&n).expect("linked next").prev = prev,
            None => self.tail = prev,
        }
    }

    /// Links `vertex` (already in `entries`) as the most recently used.
    fn link_front(&mut self, vertex: VertexId) {
        let old_head = self.head;
        {
            let e = self.entries.get_mut(&vertex).expect("entry present");
            e.prev = None;
            e.next = old_head;
        }
        if let Some(h) = old_head {
            self.entries.get_mut(&h).expect("old head").prev = Some(vertex);
        }
        self.head = Some(vertex);
        if self.tail.is_none() {
            self.tail = Some(vertex);
        }
    }

    /// Moves `vertex` to the front of the recency list.
    fn touch(&mut self, vertex: VertexId) {
        if self.head == Some(vertex) {
            return;
        }
        self.unlink(vertex);
        self.link_front(vertex);
    }

    /// Evicts the least recently used entry. Returns `false` when empty.
    fn evict_one(&mut self) -> bool {
        let Some(victim) = self.tail else { return false };
        self.unlink(victim);
        let entry = self.entries.remove(&victim).expect("tail entry");
        self.bytes -= Self::entry_bytes(entry.adjacency.len());
        self.stats.evictions += 1;
        true
    }

    /// Inserts a fetched adjacency list (sorted). A no-op when disabled.
    /// Evicts LRU entries until the new list fits the capacity; a list that
    /// cannot fit even in an empty cache is not retained at all (it would
    /// only displace everything else for a single use).
    pub fn insert(&mut self, vertex: VertexId, mut adjacency: Vec<VertexId>) {
        if !self.enabled {
            return;
        }
        let new_bytes = Self::entry_bytes(adjacency.len());
        if new_bytes > self.capacity_bytes {
            return;
        }
        adjacency.sort_unstable();
        if self.entries.contains_key(&vertex) {
            // re-fetch of a cached vertex: replace the payload and refresh
            self.unlink(vertex);
            let entry = self.entries.remove(&vertex).expect("present");
            self.bytes -= Self::entry_bytes(entry.adjacency.len());
        }
        while self.bytes + new_bytes > self.capacity_bytes {
            if !self.evict_one() {
                break;
            }
        }
        self.entries.insert(vertex, Entry { adjacency, prev: None, next: None });
        self.bytes += new_bytes;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        self.link_front(vertex);
    }

    /// Bulk [`insert`](Self::insert) of a harvested `fetchV` response: the
    /// lists land in response order, so the harvest order of the async
    /// driver (its deterministic issue order) is also the LRU recency order.
    pub fn insert_all(&mut self, lists: Vec<(VertexId, Vec<VertexId>)>) {
        for (vertex, adjacency) in lists {
            self.insert(vertex, adjacency);
        }
    }

    /// Looks up the adjacency list of `vertex`, recording hit/miss statistics
    /// and refreshing its recency on a hit.
    pub fn get(&mut self, vertex: VertexId) -> Option<&[VertexId]> {
        if self.entries.contains_key(&vertex) {
            self.stats.hits += 1;
            self.touch(vertex);
            self.entries.get(&vertex).map(|e| e.adjacency.as_slice())
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Non-recording lookup (used by read-only verification paths). Does not
    /// refresh recency.
    pub fn peek(&self, vertex: VertexId) -> Option<&[VertexId]> {
        self.entries.get(&vertex).map(|e| e.adjacency.as_slice())
    }

    /// `true` if `vertex` is cached.
    pub fn contains(&self, vertex: VertexId) -> bool {
        self.entries.contains_key(&vertex)
    }

    /// Checks whether the cached adjacency of either endpoint decides the
    /// existence of the edge `(u, v)`. Returns `None` when neither endpoint
    /// is cached.
    pub fn verify_edge(&self, u: VertexId, v: VertexId) -> Option<bool> {
        if let Some(e) = self.entries.get(&u) {
            return Some(e.adjacency.binary_search(&v).is_ok());
        }
        if let Some(e) = self.entries.get(&v) {
            return Some(e.adjacency.binary_search(&u).is_ok());
        }
        None
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accounted heap footprint in bytes of the cached adjacency lists.
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// Highest accounted footprint ever observed.
    pub fn peak_memory_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// The cached vertices from most to least recently used (tests and
    /// diagnostics).
    pub fn recency_order(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.entries.len());
        let mut cur = self.head;
        while let Some(v) = cur {
            out.push(v);
            cur = self.entries[&v].next;
        }
        out
    }

    /// Drops every cached entry (used between region groups when the memory
    /// budget requires it). Not counted as evictions.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.head = None;
        self.tail = None;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_stats() {
        let mut cache = ForeignVertexCache::new();
        assert!(cache.get(5).is_none());
        cache.insert(5, vec![3, 1, 2]);
        assert_eq!(cache.get(5).unwrap(), &[1, 2, 3]);
        assert!(cache.contains(5));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(cache.len(), 1);
        assert!(cache.memory_bytes() > 0);
    }

    #[test]
    fn edge_verification_from_cache() {
        let mut cache = ForeignVertexCache::new();
        cache.insert(10, vec![11, 12]);
        assert_eq!(cache.verify_edge(10, 11), Some(true));
        assert_eq!(cache.verify_edge(12, 10), Some(true));
        assert_eq!(cache.verify_edge(10, 99), Some(false));
        assert_eq!(cache.verify_edge(1, 2), None);
    }

    #[test]
    fn disabled_cache_never_stores_but_still_counts_misses() {
        let mut cache = ForeignVertexCache::disabled();
        cache.insert(5, vec![1]);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
        assert!(cache.get(5).is_none());
        assert!(cache.get(5).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 2, 0));
        assert_eq!(cache.memory_bytes(), 0);
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = ForeignVertexCache::new();
        cache.insert(1, vec![2]);
        cache.insert(3, vec![4]);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.memory_bytes(), 0);
        assert_eq!(cache.stats().evictions, 0);
        // still usable after clearing
        cache.insert(9, vec![1, 2]);
        assert_eq!(cache.recency_order(), vec![9]);
    }

    #[test]
    fn byte_accounting_tracks_inserts_and_evictions() {
        // capacity for exactly two 2-neighbour entries
        let entry = ForeignVertexCache::entry_bytes(2);
        let mut cache = ForeignVertexCache::with_capacity(2 * entry);
        cache.insert(1, vec![10, 11]);
        cache.insert(2, vec![20, 21]);
        assert_eq!(cache.memory_bytes(), 2 * entry);
        assert_eq!(cache.peak_memory_bytes(), 2 * entry);
        // the third insert must evict the least recently used (vertex 1)
        cache.insert(3, vec![30, 31]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.memory_bytes(), 2 * entry);
        assert!(!cache.contains(1));
        assert!(cache.contains(2) && cache.contains(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_order_follows_recorded_use() {
        let entry = ForeignVertexCache::entry_bytes(1);
        let mut cache = ForeignVertexCache::with_capacity(3 * entry);
        cache.insert(1, vec![9]);
        cache.insert(2, vec![9]);
        cache.insert(3, vec![9]);
        assert_eq!(cache.recency_order(), vec![3, 2, 1]);
        // touching 1 moves it to the front, so 2 is now the LRU victim
        assert!(cache.get(1).is_some());
        assert_eq!(cache.recency_order(), vec![1, 3, 2]);
        cache.insert(4, vec![9]);
        assert!(!cache.contains(2), "the LRU entry (2) must be the one evicted");
        assert_eq!(cache.recency_order(), vec![4, 1, 3]);
        // peek must NOT refresh recency: 3 stays the victim
        assert!(cache.peek(3).is_some());
        assert!(cache.peek(3).is_some());
        cache.insert(5, vec![9]);
        assert!(!cache.contains(3));
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn oversized_entries_are_not_retained() {
        let mut cache = ForeignVertexCache::with_capacity(ForeignVertexCache::entry_bytes(2));
        cache.insert(1, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(cache.is_empty(), "an entry larger than the whole capacity is not cached");
        assert_eq!(cache.stats().evictions, 0);
        // a fitting entry is unaffected
        cache.insert(2, vec![1, 2]);
        assert!(cache.contains(2));
    }

    #[test]
    fn reinserting_a_vertex_replaces_its_payload_and_bytes() {
        let entry1 = ForeignVertexCache::entry_bytes(1);
        let entry3 = ForeignVertexCache::entry_bytes(3);
        let mut cache = ForeignVertexCache::with_capacity(1024);
        cache.insert(7, vec![1]);
        assert_eq!(cache.memory_bytes(), entry1);
        cache.insert(7, vec![3, 2, 1]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.memory_bytes(), entry3);
        assert_eq!(cache.get(7).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut cache = ForeignVertexCache::new();
        for v in 0..100u32 {
            cache.insert(v, vec![v + 1, v + 2]);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.peak_memory_bytes(), cache.memory_bytes());
    }
}
