//! The foreign-vertex cache.
//!
//! "If a foreign vertex is already cached in the local machine, for the
//! undetermined edges attached to this vertex, we can verify them locally
//! without sending requests to other machines. Also we do not re-fetch any
//! foreign vertex if it is already cached previously." (Appendix B)

use std::collections::HashMap;

use rads_graph::VertexId;

/// Per-machine cache of foreign adjacency lists fetched with `fetchV`.
#[derive(Debug, Default, Clone)]
pub struct ForeignVertexCache {
    entries: HashMap<VertexId, Vec<VertexId>>,
    /// Number of lookups that found the vertex already cached.
    hits: u64,
    /// Number of lookups that missed.
    misses: u64,
    /// Whether caching is enabled; when disabled (ablation), inserts are
    /// dropped so every use re-fetches.
    enabled: bool,
}

impl ForeignVertexCache {
    /// An enabled, empty cache.
    pub fn new() -> Self {
        ForeignVertexCache { enabled: true, ..Default::default() }
    }

    /// A cache that never retains anything (the `ablation_cache` setting).
    pub fn disabled() -> Self {
        ForeignVertexCache { enabled: false, ..Default::default() }
    }

    /// Whether caching is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of cached adjacency lists.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a fetched adjacency list (sorted). A no-op when disabled.
    pub fn insert(&mut self, vertex: VertexId, mut adjacency: Vec<VertexId>) {
        if !self.enabled {
            return;
        }
        adjacency.sort_unstable();
        self.entries.insert(vertex, adjacency);
    }

    /// Looks up the adjacency list of `vertex`, recording hit/miss statistics.
    pub fn get(&mut self, vertex: VertexId) -> Option<&[VertexId]> {
        if self.entries.contains_key(&vertex) {
            self.hits += 1;
            self.entries.get(&vertex).map(|v| v.as_slice())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Non-recording lookup (used by read-only verification paths).
    pub fn peek(&self, vertex: VertexId) -> Option<&[VertexId]> {
        self.entries.get(&vertex).map(|v| v.as_slice())
    }

    /// `true` if `vertex` is cached.
    pub fn contains(&self, vertex: VertexId) -> bool {
        self.entries.contains_key(&vertex)
    }

    /// Checks whether the cached adjacency of either endpoint decides the
    /// existence of the edge `(u, v)`. Returns `None` when neither endpoint
    /// is cached.
    pub fn verify_edge(&self, u: VertexId, v: VertexId) -> Option<bool> {
        if let Some(adj) = self.entries.get(&u) {
            return Some(adj.binary_search(&v).is_ok());
        }
        if let Some(adj) = self.entries.get(&v) {
            return Some(adj.binary_search(&u).is_ok());
        }
        None
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.values().map(|adj| std::mem::size_of::<VertexId>() * (adj.len() + 1))
            .sum()
    }

    /// Drops every cached entry (used between region groups when the memory
    /// budget requires it).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_stats() {
        let mut cache = ForeignVertexCache::new();
        assert!(cache.get(5).is_none());
        cache.insert(5, vec![3, 1, 2]);
        assert_eq!(cache.get(5).unwrap(), &[1, 2, 3]);
        assert!(cache.contains(5));
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(cache.memory_bytes() > 0);
    }

    #[test]
    fn edge_verification_from_cache() {
        let mut cache = ForeignVertexCache::new();
        cache.insert(10, vec![11, 12]);
        assert_eq!(cache.verify_edge(10, 11), Some(true));
        assert_eq!(cache.verify_edge(12, 10), Some(true));
        assert_eq!(cache.verify_edge(10, 99), Some(false));
        assert_eq!(cache.verify_edge(1, 2), None);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut cache = ForeignVertexCache::disabled();
        cache.insert(5, vec![1]);
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
        assert!(cache.get(5).is_none());
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = ForeignVertexCache::new();
        cache.insert(1, vec![2]);
        cache.insert(3, vec![4]);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
