//! SM-E: the single-machine enumeration phase (Section 3.1).
//!
//! By Proposition 1, any embedding that maps the start query vertex to a data
//! vertex whose border distance is at least the span of the start vertex lies
//! entirely inside the local partition. Those start candidates are therefore
//! processed with the single-machine enumerator over the induced subgraph of
//! the machine's owned vertices, without any communication; the remaining
//! candidates are handed to the distributed R-Meef phase.
//!
//! Since every start candidate roots an independent search tree, the phase
//! parallelizes trivially: the candidate list is cut into work units of
//! `steal_granularity` candidates and mapped over the [`rads_exec`] pool.
//! Per-unit embeddings and statistics are merged back **in unit order**, so
//! the outcome is bit-identical for every worker count.

use std::collections::HashMap;
use std::ops::Range;

use rads_exec::{parallel_map, ExecConfig};
use rads_graph::{Graph, GraphBuilder, Pattern, VertexId};
use rads_partition::LocalPartition;
use rads_plan::ExecutionPlan;
use rads_single::{EnumerationStats, Enumerator, MatchingOrder, SharedRun};

use crate::memory::SpaceEstimator;

/// Outcome of the SM-E phase on one machine.
#[derive(Debug, Clone)]
pub struct SmeResult {
    /// Embeddings found locally, indexed by query vertex (global data ids).
    pub embeddings: Vec<Vec<VertexId>>,
    /// Number of embeddings found locally.
    pub count: u64,
    /// Start candidates processed by SM-E (`|C1(u_start)|`).
    pub local_candidates: usize,
    /// Start candidates left for the distributed phase (`C - C1`).
    pub remaining_candidates: Vec<VertexId>,
    /// Space estimator derived from the SM-E search statistics (Section 6).
    pub estimator: SpaceEstimator,
    /// Total search-tree nodes visited by SM-E (embedding-trie size of the
    /// local results).
    pub trie_nodes: u64,
}

/// The induced subgraph over the machine's owned vertices, plus the dense ↔
/// global id mappings. Exposed so tests and the engine can reuse it.
pub struct OwnedSubgraph {
    /// The induced subgraph with densely relabelled vertices.
    pub graph: Graph,
    /// Dense id → global id.
    pub global_of_dense: Vec<VertexId>,
    /// Global id → dense id.
    pub dense_of_global: HashMap<VertexId, VertexId>,
}

/// Builds the induced subgraph of the owned vertices of `local`.
pub fn owned_subgraph(local: &LocalPartition) -> OwnedSubgraph {
    let owned = local.owned_vertices();
    let mut dense_of_global = HashMap::with_capacity(owned.len());
    for (i, &v) in owned.iter().enumerate() {
        dense_of_global.insert(v, i as VertexId);
    }
    let mut builder = GraphBuilder::new(owned.len());
    for &v in owned {
        let dv = dense_of_global[&v];
        for &w in local.neighbors(v).expect("owned vertex") {
            if let Some(&dw) = dense_of_global.get(&w) {
                if dv < dw {
                    builder.add_edge(dv, dw);
                }
            }
        }
    }
    OwnedSubgraph { graph: builder.build(), global_of_dense: owned.to_vec(), dense_of_global }
}

/// Runs SM-E on one machine, fanning the start candidates out to
/// `exec.workers` pool workers.
///
/// * `enabled = false` (ablation) sends every start candidate to the
///   distributed phase and derives the space estimator from a degree-based
///   fallback instead.
pub fn run_sme(
    local: &LocalPartition,
    pattern: &Pattern,
    plan: &ExecutionPlan,
    enabled: bool,
    exec: &ExecConfig,
) -> SmeResult {
    let start = plan.start_vertex();
    let span = pattern.span(start) as u32;
    let min_degree = pattern.degree(start);
    // C(u_start): owned vertices passing the degree filter.
    let all_candidates = local.candidates_with_min_degree(min_degree);
    let (local_cands, remote_cands): (Vec<VertexId>, Vec<VertexId>) = if enabled {
        all_candidates.into_iter().partition(|&v| {
            local.border_distance(v).map(|d| d >= span).unwrap_or(false)
        })
    } else {
        (Vec::new(), all_candidates)
    };

    if local_cands.is_empty() {
        let avg_degree = if local.owned_count() == 0 {
            1.0
        } else {
            local
                .owned_vertices()
                .iter()
                .map(|&v| local.degree(v).unwrap_or(0))
                .sum::<usize>() as f64
                / local.owned_count() as f64
        };
        return SmeResult {
            embeddings: Vec::new(),
            count: 0,
            local_candidates: 0,
            remaining_candidates: remote_cands,
            estimator: SpaceEstimator::fallback(avg_degree, pattern.vertex_count()),
            trie_nodes: 0,
        };
    }

    let sub = owned_subgraph(local);
    let dense_candidates: Vec<VertexId> =
        local_cands.iter().map(|v| sub.dense_of_global[v]).collect();
    // Matching order, symmetry constraints and filter thresholds are derived
    // once per machine run and shared (borrowed) by every work unit — a unit
    // is only `steal_granularity` start candidates, far too small to amortize
    // re-deriving them.
    let shared = SharedRun::new(pattern, MatchingOrder::greedy_from(pattern, start), false);
    let enumerator = Enumerator::new(&sub.graph, pattern);

    // One work unit per `steal_granularity` start candidates; each unit runs
    // the enumerator over its own sub-range of the shared (borrowed, never
    // cloned) candidate list. Sub-ranges are taken before the per-vertex
    // filters, so the units partition the result set exactly.
    let granularity = exec.effective_granularity();
    let units: Vec<Range<usize>> = (0..dense_candidates.len())
        .step_by(granularity)
        .map(|lo| lo..(lo + granularity).min(dense_candidates.len()))
        .collect();
    let unit_exec = ExecConfig { workers: exec.effective_workers(), steal_granularity: 1 };
    let (unit_results, _) = parallel_map(&unit_exec, &units, |_, _, range| {
        let mut embeddings: Vec<Vec<VertexId>> = Vec::new();
        let stats =
            enumerator.run_units(&shared, &dense_candidates, Some(range.clone()), |mapping| {
                embeddings
                    .push(mapping.iter().map(|&dv| sub.global_of_dense[dv as usize]).collect());
                true
            });
        (embeddings, stats)
    });

    // Merge in unit order: identical to one sequential sweep.
    let mut embeddings = Vec::new();
    let mut stats = EnumerationStats::default();
    for (unit_embeddings, unit_stats) in unit_results {
        embeddings.extend(unit_embeddings);
        stats.absorb(&unit_stats);
    }

    SmeResult {
        count: embeddings.len() as u64,
        embeddings,
        local_candidates: local_cands.len(),
        remaining_candidates: remote_cands,
        estimator: SpaceEstimator::from_sme(stats.total_nodes(), local_cands.len()),
        trie_nodes: stats.total_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::{community_graph, grid_2d};
    use rads_graph::queries;
    use rads_partition::{BfsPartitioner, PartitionedGraph, Partitioner, Partitioning};
    use rads_plan::{best_plan, PlannerConfig};
    use rads_single::count_embeddings;

    #[test]
    fn single_machine_cluster_finds_everything_locally() {
        let g = community_graph(3, 12, 0.4, 0.05, 5);
        let pg = PartitionedGraph::build(&g, Partitioning::single_machine(g.vertex_count()));
        let pattern = queries::q2();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        let result = run_sme(pg.local(0), &pattern, &plan, true, &ExecConfig::sequential());
        // no border vertices at all: every candidate is local
        assert!(result.remaining_candidates.is_empty());
        assert_eq!(result.count, count_embeddings(&g, &pattern));
    }

    #[test]
    fn sme_embeddings_never_touch_foreign_vertices() {
        let g = grid_2d(10, 10);
        let partitioning = BfsPartitioner.partition(&g, 4);
        let pg = PartitionedGraph::build(&g, partitioning);
        let pattern = queries::q1();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        for m in 0..4 {
            let local = pg.local(m);
            let result = run_sme(local, &pattern, &plan, true, &ExecConfig::sequential());
            for emb in &result.embeddings {
                for &v in emb {
                    assert!(local.owns(v), "SM-E produced a foreign vertex {v} on machine {m}");
                }
            }
        }
    }

    #[test]
    fn sme_plus_remaining_covers_all_candidates() {
        let g = grid_2d(8, 8);
        let partitioning = BfsPartitioner.partition(&g, 2);
        let pg = PartitionedGraph::build(&g, partitioning);
        let pattern = queries::q1();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        for m in 0..2 {
            let local = pg.local(m);
            let with = run_sme(local, &pattern, &plan, true, &ExecConfig::sequential());
            let without = run_sme(local, &pattern, &plan, false, &ExecConfig::sequential());
            assert_eq!(without.count, 0);
            assert_eq!(without.local_candidates, 0);
            assert_eq!(
                with.local_candidates + with.remaining_candidates.len(),
                without.remaining_candidates.len(),
                "machine {m}: candidate split is not a partition"
            );
        }
    }

    #[test]
    fn parallel_sme_is_bit_identical_to_sequential() {
        let g = grid_2d(12, 12);
        let partitioning = BfsPartitioner.partition(&g, 2);
        let pg = PartitionedGraph::build(&g, partitioning);
        let pattern = queries::q1();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        for m in 0..2 {
            let local = pg.local(m);
            let sequential = run_sme(local, &pattern, &plan, true, &ExecConfig::sequential());
            for workers in [2, 4, 8] {
                let exec = ExecConfig { workers, steal_granularity: 3 };
                let parallel = run_sme(local, &pattern, &plan, true, &exec);
                assert_eq!(parallel.embeddings, sequential.embeddings, "machine {m}");
                assert_eq!(parallel.count, sequential.count);
                assert_eq!(parallel.trie_nodes, sequential.trie_nodes);
                assert_eq!(parallel.local_candidates, sequential.local_candidates);
                assert_eq!(parallel.remaining_candidates, sequential.remaining_candidates);
                assert_eq!(parallel.estimator, sequential.estimator);
            }
        }
    }

    #[test]
    fn estimator_reflects_search_effort() {
        let g = community_graph(2, 15, 0.5, 0.02, 9);
        let pg = PartitionedGraph::build(&g, Partitioning::single_machine(g.vertex_count()));
        let pattern = queries::q4();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        let result = run_sme(pg.local(0), &pattern, &plan, true, &ExecConfig::sequential());
        assert!(result.trie_nodes > 0);
        assert!(result.estimator.nodes_per_candidate() >= 1.0);
    }

    #[test]
    fn owned_subgraph_maps_ids_consistently() {
        let g = grid_2d(4, 4);
        let partitioning = BfsPartitioner.partition(&g, 2);
        let pg = PartitionedGraph::build(&g, partitioning);
        let local = pg.local(1);
        let sub = owned_subgraph(local);
        assert_eq!(sub.graph.vertex_count(), local.owned_count());
        for (dense, &global) in sub.global_of_dense.iter().enumerate() {
            assert_eq!(sub.dense_of_global[&global], dense as VertexId);
            assert!(local.owns(global));
        }
        // every edge of the subgraph is an edge of the original graph
        for (a, b) in sub.graph.edges() {
            let (ga, gb) = (sub.global_of_dense[a as usize], sub.global_of_dense[b as usize]);
            assert!(g.has_edge(ga, gb));
        }
    }
}
