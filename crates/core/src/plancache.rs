//! Plan cache for serving mode: execution plans keyed by a canonical
//! pattern signature.
//!
//! A resident cluster sees the same handful of patterns over and over
//! (dashboards re-issue their queries, clients retry). The Section 4
//! planner enumerates minimum connected dominating sets — exponential in
//! the pattern size — so recomputing the plan per query is pure waste:
//! [`rads_plan::best_plan`] is a *pure function* of the pattern structure
//! and the planner's `rho` exponent, nothing else (no data-graph
//! statistics), which makes its results safely reusable for the lifetime
//! of the process.
//!
//! The cache key is the **canonical signature** of the pattern — the
//! lexicographically smallest sorted edge list over all vertex
//! relabelings — so isomorphic patterns share one entry no matter how a
//! client happened to number the vertices (`q1` submitted as `0-1,1-2,2-0`
//! and as `2-0,0-1,1-2` relabeled is one plan). Canonicalisation is brute
//! force over all `n!` relabelings, which is fine at query-pattern scale
//! (the planner itself is already `O(2^n)` and capped at 20 vertices; the
//! cache caps canonicalisation at 8, past which it falls back to the
//! *literal* signature — still correct, just no isomorphism sharing).
//!
//! Hits and misses are counted in the process-global registry
//! (`rads_plan_cache_hits_total` / `rads_plan_cache_misses_total`) so the
//! serve smoke test — and an operator's Prometheus page — can observe that
//! a repeated pattern was served from cache.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use rads_graph::{Pattern, PatternVertex};
use rads_obs::{metrics_enabled, Counter, Registry};
use rads_plan::{best_plan, ExecutionPlan, PlannerConfig};

/// Patterns above this vertex count use their literal (non-canonical) edge
/// list as the cache key: `n!` relabelings stop being "free" around here.
const CANONICAL_MAX_VERTICES: usize = 8;

fn hits_counter() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| Registry::global().counter("rads_plan_cache_hits_total"))
}

fn misses_counter() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| Registry::global().counter("rads_plan_cache_misses_total"))
}

/// The canonical signature of `pattern`: vertex count plus the
/// lexicographically smallest sorted edge list over all vertex
/// relabelings. Two patterns have equal signatures iff they are isomorphic
/// (for `vertex_count() <= CANONICAL_MAX_VERTICES`; above that the
/// identity labeling is used, so equal signatures still imply isomorphic
/// but not the converse).
pub fn canonical_signature(pattern: &Pattern) -> PatternSignature {
    let n = pattern.vertex_count();
    let edges = pattern.edges();
    if n > CANONICAL_MAX_VERTICES {
        let mut literal: Vec<(PatternVertex, PatternVertex)> =
            edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        literal.sort_unstable();
        return PatternSignature { vertices: n, edges: literal };
    }
    let mut best: Option<Vec<(PatternVertex, PatternVertex)>> = None;
    let mut relabel: Vec<PatternVertex> = (0..n).collect();
    permute(&mut relabel, 0, &mut |relabel| {
        let mut candidate: Vec<(PatternVertex, PatternVertex)> = edges
            .iter()
            .map(|&(u, v)| {
                let (u, v) = (relabel[u], relabel[v]);
                (u.min(v), u.max(v))
            })
            .collect();
        candidate.sort_unstable();
        if best.as_ref().is_none_or(|best| candidate < *best) {
            best = Some(candidate);
        }
    });
    PatternSignature { vertices: n, edges: best.unwrap_or_default() }
}

/// Heap's-algorithm permutation visitor (avoids allocating all `n!`
/// permutations up front).
fn permute(items: &mut [PatternVertex], k: usize, visit: &mut impl FnMut(&[PatternVertex])) {
    if k == items.len().saturating_sub(1) || items.is_empty() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// A canonical pattern identity usable as a cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternSignature {
    /// Number of pattern vertices.
    pub vertices: usize,
    /// Canonicalised sorted undirected edge list.
    pub edges: Vec<(PatternVertex, PatternVertex)>,
}

/// Cache key: the pattern signature plus the planner's `rho` (the only
/// other input [`best_plan`] depends on). `rho` is keyed by its bit
/// pattern so the map key stays `Eq + Hash` without float comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    signature: PatternSignature,
    rho_bits: u64,
}

/// A process-lifetime cache of execution plans keyed by
/// [`canonical_signature`] + `rho`.
///
/// Note the plan is computed (and cached) **for the submitted labeling**,
/// not the canonical one: the signature only decides *equality*. Two
/// isomorphic submissions share one entry, and whichever arrives first
/// fixes the stored plan — sound because `best_plan` explores every
/// decomposition, so plan *quality* (cost score, unit count) is a function
/// of the isomorphism class even though the stored vertex labels follow
/// the first submission. On a serve cluster every machine resolves plans
/// through its own local cache; determinism of `best_plan` keeps them
/// agreeing without coordination.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, ExecutionPlan>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The plan for `pattern` under `rho`, computing and caching it on
    /// first sight. The boolean is `true` on a cache hit. Hits and misses
    /// are also counted in the global registry (when metrics are on).
    pub fn get_or_compute(&self, pattern: &Pattern, rho: f64) -> (ExecutionPlan, bool) {
        let key =
            PlanKey { signature: canonical_signature(pattern), rho_bits: rho.to_bits() };
        let mut plans = self.plans.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(plan) = plans.get(&key) {
            if metrics_enabled() {
                hits_counter().inc();
            }
            return (plan.clone(), true);
        }
        let plan = best_plan(pattern, &PlannerConfig { rho });
        plans.insert(key, plan.clone());
        if metrics_enabled() {
            misses_counter().inc();
        }
        (plan, false)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::queries;

    #[test]
    fn isomorphic_patterns_share_a_signature() {
        let triangle = Pattern::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let relabeled = Pattern::from_edges(3, &[(2, 0), (0, 1), (1, 2)]);
        let rotated = Pattern::from_edges(3, &[(1, 0), (2, 1), (0, 2)]);
        let sig = canonical_signature(&triangle);
        assert_eq!(sig, canonical_signature(&relabeled));
        assert_eq!(sig, canonical_signature(&rotated));
        let path = Pattern::from_edges(3, &[(0, 1), (1, 2)]);
        assert_ne!(sig, canonical_signature(&path));
    }

    #[test]
    fn relabeled_square_matches_square() {
        // q1 is the square 0-1-2-3-0; submit it with vertices shuffled
        let square = queries::q1();
        let shuffled = Pattern::from_edges(4, &[(3, 1), (1, 0), (0, 2), (2, 3)]);
        assert_eq!(canonical_signature(&square), canonical_signature(&shuffled));
    }

    #[test]
    fn standard_queries_have_distinct_signatures() {
        let signatures: Vec<PatternSignature> = queries::standard_query_set()
            .into_iter()
            .map(|q| canonical_signature(&q.pattern))
            .collect();
        for (i, a) in signatures.iter().enumerate() {
            for b in &signatures[i + 1..] {
                assert_ne!(a, b, "two standard queries collided");
            }
        }
    }

    #[test]
    fn cache_hits_on_repeat_and_isomorphic_submissions() {
        let cache = PlanCache::new();
        let (plan1, hit1) = cache.get_or_compute(&queries::q1(), 1.0);
        assert!(!hit1, "first sight is a miss");
        let (plan2, hit2) = cache.get_or_compute(&queries::q1(), 1.0);
        assert!(hit2, "repeat is a hit");
        assert_eq!(plan1, plan2, "the hit returns the identical plan");
        let shuffled = Pattern::from_edges(4, &[(3, 1), (1, 0), (0, 2), (2, 3)]);
        let (_, hit3) = cache.get_or_compute(&shuffled, 1.0);
        assert!(hit3, "an isomorphic relabeling is a hit");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn rho_is_part_of_the_key() {
        let cache = PlanCache::new();
        cache.get_or_compute(&queries::q1(), 1.0);
        let (_, hit) = cache.get_or_compute(&queries::q1(), 2.0);
        assert!(!hit, "a different rho must not reuse the plan");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_plan_equals_fresh_plan_for_every_standard_query() {
        let cache = PlanCache::new();
        for query in queries::standard_query_set() {
            let (cached, _) = cache.get_or_compute(&query.pattern, 1.0);
            let fresh = best_plan(&query.pattern, &PlannerConfig { rho: 1.0 });
            assert_eq!(cached, fresh, "{}: cache must be transparent", query.name);
        }
    }
}
