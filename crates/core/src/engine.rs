//! The R-Meef engine (Section 3.2, Algorithm 4) and the per-machine driver.
//!
//! Every machine runs [`run_machine`]: SM-E first, then region grouping of the
//! remaining start candidates, then the multi-round expand / verify & filter
//! loop per region group, and finally checkR/shareR work stealing once the
//! local queue is empty.
//!
//! With `workers > 1` the machine drains its region groups with an
//! intra-machine [`rads_exec`] worker pool instead of a single loop. Region
//! groups are fully independent units of work, so each pool worker runs the
//! exact sequential drain loop — pop a group from the shared queue, process
//! it, steal from other machines once the queue is empty — against its own
//! foreign-vertex cache (contention-free reads: no worker ever blocks on
//! another worker's cache) and its own partial [`MachineOutput`]. The
//! partials are merged at the end-of-phase barrier by summing counters,
//! maxing peaks and sorting collected embeddings, all order-insensitive
//! reductions, so every result surfaced by [`run_machine`] is independent of
//! the worker count and of scheduling. Only the communication-volume
//! counters (cache hits/misses, `fetchV`/`verifyE` request counts) may vary
//! with `workers > 1`, because which worker's cache already holds a foreign
//! vertex depends on which worker processed the earlier group.
//!
//! # Round drivers: scatter / harvest
//!
//! The communication of each round runs under one of two [`RoundDriver`]s,
//! selected by [`EngineConfig::driver`] (`RADS_ROUND_DRIVER=serial|async`
//! for the env-driven default):
//!
//! * [`RoundDriver::Serial`] issues every `fetchV` / `verifyE` request with
//!   a blocking round-trip, exactly the paper's sequential loop — the
//!   differential-testing oracle.
//! * [`RoundDriver::Async`] (the default) splits each round's communication
//!   into a *scatter* phase — every per-owner request chunk is issued
//!   immediately via the transport's split-phase RPC, so their round-trips
//!   overlap on the wire — and a *harvest* phase that redeems the pending
//!   responses **in issue order**. On top of that, while the pool expands
//!   one region group, the round-0 `fetchV` chunks of the *next* queued
//!   group are already in flight (a bounded [`rads_exec::InflightWindow`]
//!   of pending completions, budget-aware via
//!   [`MemoryGovernor::prefetch_quota`]); the harvested adjacency warms the
//!   worker's foreign-vertex cache before that group starts expanding.
//!   Prefetching is *latency-adaptive*: the demand-fetch path feeds its
//!   observed first-response wait into
//!   [`EngineStats::fetch_wait_micros`], and on a fabric that answers
//!   faster than the engine could stall (nothing to hide) the prefetcher
//!   stops scattering rather than burn CPU duplicating the next group's
//!   round-0 computation.
//!
//! **Determinism contract under reordering.** Requests are scattered in a
//! deterministic order (owners ascending, chunks in sorted-vertex order)
//! and harvested in that same issue order, and the transport guarantees
//! each pending handle resolves to *its own* request's response no matter
//! how the network interleaves or reorders the replies (the fault-injection
//! suite pins this with adversarial completion orders). Embedding counts,
//! collected embeddings and every schedule-independent statistic are
//! therefore bit-identical between the two drivers; prefetching only warms
//! caches, so — as with `workers > 1` — only the communication-volume
//! counters may differ.

use std::collections::{BTreeMap, HashMap, HashSet};

use rads_exec::{scoped_workers, ExecConfig, InflightWindow};
use rads_graph::{Pattern, SymmetryBreaking, VertexId};
use rads_graph::types::EdgeKey;
use rads_partition::LocalPartition;
use rads_plan::ExecutionPlan;
use rads_runtime::{ConfigError, MachineContext, PendingResponse, Request, Response, TransportError};

use crate::cache::ForeignVertexCache;
use crate::daemon::GroupQueue;
use crate::evi::EdgeVerificationIndex;
use crate::expand::{AdjacencyOracle, Expander, ExtensionBuffer, UnitExpansion};
use crate::governor::MemoryGovernor;
use crate::memory::{MemoryBudget, SpaceEstimator};
use crate::region::{find_region_groups, foreign_members, GroupingStrategy};
use crate::sme::run_sme;
use crate::trie::{EmbeddingTrie, NodeId};

/// Environment variable selecting the [`RoundDriver`]
/// (`RADS_ROUND_DRIVER=serial|async`); consulted by
/// [`RoundDriver::from_env`] and therefore by `RadsConfig::default()`.
pub const ROUND_DRIVER_ENV: &str = "RADS_ROUND_DRIVER";

/// How a round's `fetchV` / `verifyE` communication is driven; see the
/// [module docs](self#round-drivers-scatter--harvest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoundDriver {
    /// Blocking round-trip per request — the paper's sequential loop, kept
    /// as the differential-testing oracle.
    Serial,
    /// Scatter all per-owner chunks concurrently, harvest in issue order,
    /// and prefetch the next region group's round-0 fetches.
    #[default]
    Async,
}

impl RoundDriver {
    /// Parses a driver name (the accepted `RADS_ROUND_DRIVER` values).
    pub fn parse(name: &str) -> Option<RoundDriver> {
        match name {
            "serial" => Some(RoundDriver::Serial),
            "async" => Some(RoundDriver::Async),
            _ => None,
        }
    }

    /// The driver's name as accepted by [`parse`](Self::parse).
    pub fn name(self) -> &'static str {
        match self {
            RoundDriver::Serial => "serial",
            RoundDriver::Async => "async",
        }
    }

    /// Reads [`ROUND_DRIVER_ENV`], defaulting to [`RoundDriver::Async`].
    /// An unknown value is a typed [`ConfigError`] (a typo silently running
    /// the wrong driver would defeat the differential matrix; binaries exit
    /// cleanly with the message instead of panicking mid-run).
    pub fn from_env() -> Result<RoundDriver, ConfigError> {
        Self::from_env_value(std::env::var(ROUND_DRIVER_ENV).ok().as_deref())
    }

    /// [`from_env`](Self::from_env) over an explicit value (`None` = unset),
    /// so the parse is testable without racing on process-global env state.
    pub fn from_env_value(raw: Option<&str>) -> Result<RoundDriver, ConfigError> {
        match raw {
            None => Ok(RoundDriver::default()),
            Some(value) => RoundDriver::parse(value).ok_or_else(|| ConfigError {
                var: ROUND_DRIVER_ENV,
                value: value.to_string(),
                expected: "\"serial\" or \"async\"",
            }),
        }
    }
}

/// Per-machine engine configuration (the knobs of `RadsConfig` that the
/// engine itself needs).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Run the SM-E phase (Section 3.1). Disabling it is the `ablation_sme`
    /// experiment.
    pub enable_sme: bool,
    /// Keep fetched foreign vertices cached across rounds and region groups.
    pub enable_cache: bool,
    /// Steal region groups from the most loaded machine when idle.
    pub enable_load_sharing: bool,
    /// How region groups are formed.
    pub grouping: GroupingStrategy,
    /// Per-group memory budget `Φ` plus the foreign-vertex cache allowance.
    pub budget: MemoryBudget,
    /// Enforce the budget at runtime (the [`MemoryGovernor`]): overflowing
    /// region groups are split mid-flight and the space estimator is
    /// re-fitted online. `false` trusts the a-priori sizing only — the
    /// `RADS-static` ablation of the robustness experiment.
    pub enforce_budget: bool,
    /// Collect full embeddings (tests / small runs) instead of only counting.
    pub collect_embeddings: bool,
    /// RNG seed for region grouping.
    pub seed: u64,
    /// Intra-machine worker threads (see the [module docs](self)).
    pub workers: usize,
    /// Start candidates per SM-E work unit (the stealing granularity).
    pub steal_granularity: usize,
    /// How the rounds' communication is driven (see the
    /// [module docs](self#round-drivers-scatter--harvest)).
    pub driver: RoundDriver,
    /// Vertices per `fetchV` request ([`DEFAULT_FETCH_CHUNK_VERTICES`]).
    /// Smaller chunks split a round's foreign set into more frames — the
    /// `overlap` benchmark lowers this on the real-socket leg so a round
    /// spans as many round trips as it would on a network whose latency
    /// dwarfs a same-host socket's. Chunking never changes results, only
    /// how the same request sequence is framed.
    pub fetch_chunk_vertices: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            enable_sme: true,
            enable_cache: true,
            enable_load_sharing: true,
            grouping: GroupingStrategy::Proximity,
            budget: MemoryBudget::default(),
            enforce_budget: true,
            collect_embeddings: false,
            seed: 0x5AD5,
            workers: 1,
            steal_granularity: rads_exec::DEFAULT_STEAL_GRANULARITY,
            driver: RoundDriver::default(),
            fetch_chunk_vertices: DEFAULT_FETCH_CHUNK_VERTICES,
        }
    }
}

/// Counters describing one machine's run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Embeddings found by SM-E.
    pub sme_embeddings: u64,
    /// Embeddings found by the distributed R-Meef phase.
    pub distributed_embeddings: u64,
    /// Start candidates handled by SM-E.
    pub sme_candidates: usize,
    /// Start candidates handled by R-Meef (own groups).
    pub distributed_candidates: usize,
    /// Region groups created locally.
    pub groups_created: usize,
    /// Region groups processed (own + stolen).
    pub groups_processed: usize,
    /// Region groups stolen from other machines.
    pub groups_stolen: usize,
    /// Peak number of live trie nodes over all region groups.
    pub peak_trie_nodes: usize,
    /// Total trie nodes ever created (space accounting of Tables 3–4).
    pub trie_nodes_created: u64,
    /// Bytes an uncompressed embedding list of the same intermediate results
    /// would have required.
    pub embedding_list_bytes: u64,
    /// Bytes the embedding trie required for the same results.
    pub embedding_trie_bytes: u64,
    /// Foreign vertices held in the cache at the end of the run.
    pub cache_entries: usize,
    /// Foreign-vertex cache hits / misses.
    pub cache_hits: u64,
    /// Foreign-vertex cache misses.
    pub cache_misses: u64,
    /// Entries the byte-bounded cache evicted to stay under its allowance.
    pub cache_evictions: u64,
    /// Highest byte footprint any single worker's cache reached (each worker
    /// cache has its own [`MemoryBudget::cache_bytes`] allowance).
    pub cache_peak_bytes: u64,
    /// Highest bytes of intermediate results (trie + expansion buffers) seen
    /// at any governor checkpoint on any worker — the runtime counterpart of
    /// `Φ`.
    pub peak_tracked_bytes: u64,
    /// Region groups the governor split mid-flight.
    pub governor_splits: u64,
    /// Start candidates shed from overflowing groups and re-queued.
    pub respilled_candidates: u64,
    /// Times the online re-fit raised the space estimate.
    pub estimator_refits: u64,
    /// Bytes per start candidate the *static* (SM-E-fitted) estimator
    /// predicted — comparing it against `peak_tracked_bytes` of an
    /// unlimited-budget run shows how wrong the prior was.
    pub estimated_bytes_per_candidate: u64,
    /// Number of `fetchV` requests sent.
    pub fetch_requests: u64,
    /// EWMA (µs) of how long the async driver waited for the *first*
    /// `fetchV` response after scattering a round's *demand* chunks — the
    /// engine's own estimate of how much link latency there is to hide
    /// (everything after the first response overlaps). Zero until an async
    /// round has fetched something; merged across workers by `max`.
    pub fetch_wait_micros: u64,
    /// EWMA (µs) of how long harvesting one *prefetched* chunk blocked —
    /// the residual stall left after the lookahead overlapped the fetch
    /// with the previous group's compute (near zero when prefetch wins).
    /// Zero until a prefetched chunk was harvested; merged by `max`.
    pub prefetch_wait_micros: u64,
    /// Number of `verifyE` requests sent.
    pub verify_requests: u64,
    /// Transient RPC failures healed by transparent re-issue (retry with
    /// backoff, or a synchronous re-send after a failed async harvest).
    /// Zero on a healthy fabric; under fault injection this proves the
    /// retry layer fired while counts stayed bit-identical.
    pub rpc_retries: u64,
    /// Distinct undetermined edges put into the EVI.
    pub undetermined_edges: u64,
    /// Embedding candidates removed by remote verification.
    pub candidates_filtered: u64,
    /// Intersection-kernel counters of the R-Meef expansion. Like the
    /// communication counters, these may vary with `workers > 1`: which
    /// back-edge endpoints have locally known adjacency depends on the
    /// worker-private cache contents and therefore on the schedule.
    pub intersect: rads_graph::IntersectStats,
}

/// Result of one machine's run.
#[derive(Debug, Clone, Default)]
pub struct MachineOutput {
    /// Total embeddings found by this machine (SM-E + distributed).
    pub count: u64,
    /// The embeddings themselves (only when `collect_embeddings` is set),
    /// indexed by query vertex and sorted lexicographically — the sort is
    /// what keeps the output independent of the intra-machine worker
    /// schedule.
    pub embeddings: Vec<Vec<VertexId>>,
    /// Run statistics.
    pub stats: EngineStats,
}

impl MachineOutput {
    /// Folds one pool worker's partial output into the machine total. Every
    /// reduction is order-insensitive (sums and maxes), so the merged result
    /// does not depend on worker order or scheduling.
    fn absorb(&mut self, worker: MachineOutput) {
        self.count += worker.count;
        self.embeddings.extend(worker.embeddings);
        let s = &mut self.stats;
        let w = worker.stats;
        s.sme_embeddings += w.sme_embeddings;
        s.distributed_embeddings += w.distributed_embeddings;
        s.sme_candidates += w.sme_candidates;
        s.distributed_candidates += w.distributed_candidates;
        s.groups_created += w.groups_created;
        s.groups_processed += w.groups_processed;
        s.groups_stolen += w.groups_stolen;
        s.peak_trie_nodes = s.peak_trie_nodes.max(w.peak_trie_nodes);
        s.trie_nodes_created += w.trie_nodes_created;
        s.embedding_list_bytes += w.embedding_list_bytes;
        s.embedding_trie_bytes += w.embedding_trie_bytes;
        s.cache_entries += w.cache_entries;
        s.cache_hits += w.cache_hits;
        s.cache_misses += w.cache_misses;
        s.cache_evictions += w.cache_evictions;
        s.cache_peak_bytes = s.cache_peak_bytes.max(w.cache_peak_bytes);
        s.peak_tracked_bytes = s.peak_tracked_bytes.max(w.peak_tracked_bytes);
        s.governor_splits += w.governor_splits;
        s.respilled_candidates += w.respilled_candidates;
        s.estimator_refits += w.estimator_refits;
        s.estimated_bytes_per_candidate =
            s.estimated_bytes_per_candidate.max(w.estimated_bytes_per_candidate);
        s.fetch_requests += w.fetch_requests;
        s.fetch_wait_micros = s.fetch_wait_micros.max(w.fetch_wait_micros);
        s.prefetch_wait_micros = s.prefetch_wait_micros.max(w.prefetch_wait_micros);
        s.verify_requests += w.verify_requests;
        s.rpc_retries += w.rpc_retries;
        s.undetermined_edges += w.undetermined_edges;
        s.candidates_filtered += w.candidates_filtered;
        s.intersect.absorb(&w.intersect);
    }
}

/// Adjacency oracle over the machine's partition, the persistent cache, a
/// per-round scratch cache (used when caching is disabled for the ablation)
/// and an optional transient entry: the adjacency of the pivot currently
/// being expanded when the byte-bounded cache evicted it (or refused it as
/// oversized) between fetch and use. The transient keeps expansion correct
/// under arbitrary cache pressure — a pivot whose adjacency is invisible
/// would silently drop every embedding extending through it.
struct MachineOracle<'a> {
    local: &'a LocalPartition,
    cache: &'a ForeignVertexCache,
    scratch: &'a ForeignVertexCache,
    transient: Option<&'a (VertexId, Vec<VertexId>)>,
}

impl AdjacencyOracle for MachineOracle<'_> {
    fn adjacency(&self, v: VertexId) -> Option<&[VertexId]> {
        let transient = match self.transient {
            Some((tv, adj)) if *tv == v => Some(adj.as_slice()),
            _ => None,
        };
        self.local
            .neighbors(v)
            .or_else(|| self.cache.peek(v))
            .or_else(|| self.scratch.peek(v))
            .or(transient)
    }
}

/// Makes sure the adjacency of `pivot` is visible to the next expansion:
/// owned, cached, or fetched now (the round's batch prefetch can be undone by
/// LRU eviction before the pivot is reached, and an adjacency list larger
/// than the whole cache allowance is never retained at all). Returns the
/// fetched list for use as the oracle's transient entry when the cache would
/// refuse to retain it.
///
/// This is the *recorded* cache access of the engine: it uses
/// [`ForeignVertexCache::get`], so every pivot expansion counts a hit or
/// miss and refreshes the entry's LRU recency — without it, eviction would
/// degenerate to FIFO and the hottest hub adjacency would be the first to
/// go. (The read-only `peek`/`verify_edge` paths deliberately stay
/// non-recording.)
fn ensure_pivot_adjacency(
    ctx: &MachineContext,
    local: &LocalPartition,
    pivot: VertexId,
    cache: &mut ForeignVertexCache,
    scratch: &mut ForeignVertexCache,
    stats: &mut EngineStats,
) -> Option<(VertexId, Vec<VertexId>)> {
    if local.owns(pivot) {
        return None;
    }
    // records the hit/miss on the worker's reported cache, even when the
    // cache is disabled (the ablation still counts the misses it causes)
    if cache.get(pivot).is_some() || scratch.get(pivot).is_some() {
        return None;
    }
    stats.fetch_requests += 1;
    let owner = ctx.ownership().owner(pivot);
    let request = Request::FetchVertices(vec![pivot]);
    let pending = ctx.request_async(owner, request.clone());
    let correlation = pending.correlation();
    match ctx.harvest(pending, owner, &request).unwrap_or_else(|e| transport_failed(ctx, e)) {
        Response::Adjacency(lists) => {
            let mut transient = None;
            for (v, mut adj) in lists {
                let target = if cache.is_enabled() { &mut *cache } else { &mut *scratch };
                if v == pivot
                    && ForeignVertexCache::entry_bytes(adj.len()) > target.capacity_bytes()
                {
                    // the cache would refuse it as oversized: hand the list
                    // to the oracle directly instead of losing it
                    adj.sort_unstable();
                    transient = Some((v, adj));
                } else {
                    target.insert(v, adj);
                }
            }
            transient
        }
        other => unexpected_response(ctx, "fetchV", owner, correlation, &other),
    }
}

/// A daemon answered with the wrong response variant: a routing or protocol
/// bug. The message names both ends of the exchange and the correlation id
/// of the pipelined connection (`n/a` on transports without correlation
/// ids, e.g. a local short-circuited or channel-simulated request), which
/// is what lets the mis-tagged frame be found in a wire capture.
fn unexpected_response(
    ctx: &MachineContext,
    what: &str,
    from: usize,
    correlation: Option<u64>,
    response: &Response,
) -> ! {
    let me = ctx.machine();
    let correlation = correlation.map_or_else(|| "n/a".to_string(), |c| c.to_string());
    panic!(
        "machine {me}: unexpected {what} response from machine {from} \
         (correlation {correlation}): {response:?}"
    )
}

/// An RPC failed past the retry/backoff policy (terminal error, or the
/// retry budget ran out). The engine cannot make progress without the
/// answer, so the machine goes down carrying the typed error message; the
/// engine-thread panic is tagged with the machine id by the runtime, and in
/// a multi-process cluster the coordinator observes the worker's exit and
/// applies `RADS_FAULT_POLICY` (fail fast with a structured report, or
/// recompute the lost shares).
fn transport_failed(ctx: &MachineContext, error: TransportError) -> ! {
    panic!("machine {}: unrecoverable transport failure: {error}", ctx.machine())
}

/// Runs the full RADS pipeline on one machine of the cluster.
pub fn run_machine(
    ctx: &MachineContext,
    pattern: &Pattern,
    plan: &ExecutionPlan,
    config: &EngineConfig,
    group_queue: GroupQueue,
) -> MachineOutput {
    let mut output = MachineOutput::default();
    let local = ctx.partition();
    let symmetry = SymmetryBreaking::new(pattern);
    let exec = ExecConfig { workers: config.workers, steal_granularity: config.steal_granularity };
    let mut query_span = rads_obs::span("query", "engine");
    query_span.attr("machine", ctx.machine() as u64);
    query_span.attr("workers", config.workers as u64);

    // ---- Phase 1: SM-E -----------------------------------------------------
    let mut sme_span = rads_obs::span("sme", "engine");
    let sme = run_sme(local, pattern, plan, config.enable_sme, &exec);
    sme_span.attr("embeddings", sme.count);
    drop(sme_span);
    output.stats.sme_embeddings = sme.count;
    output.stats.sme_candidates = sme.local_candidates;
    output.count += sme.count;
    if config.collect_embeddings {
        output.embeddings.extend(sme.embeddings.iter().cloned());
    }

    // ---- Phase 2: region grouping -------------------------------------------
    output.stats.distributed_candidates = sme.remaining_candidates.len();
    let mut grouping_span = rads_obs::span("region_grouping", "engine");
    let groups = find_region_groups(
        local,
        &sme.remaining_candidates,
        &sme.estimator,
        &config.budget,
        config.grouping,
        config.seed ^ ctx.machine() as u64,
    );
    grouping_span.attr("groups", groups.len() as u64);
    drop(grouping_span);
    output.stats.groups_created = groups.len();
    group_queue.lock().extend(groups);

    // ---- Phases 3 + 4: drain region groups on the worker pool ----------------
    // The shared queue doubles as the pool's injector; it must stay the
    // single source of waiting groups because other machines' shareR
    // requests take from it too (and because the governor re-queues the
    // shed half of a split group there). With workers == 1 the closure runs
    // inline on the engine thread — the paper's sequential path, unchanged.
    let estimator = sme.estimator;
    let worker_outputs = scoped_workers(exec.effective_workers(), |_worker| {
        drain_region_groups(ctx, pattern, plan, &symmetry, &group_queue, config, estimator)
    });
    for worker_output in worker_outputs {
        output.absorb(worker_output);
    }
    output.stats.estimated_bytes_per_candidate =
        (estimator.nodes_per_candidate() * EmbeddingTrie::NODE_BYTES as f64).round() as u64;
    if config.collect_embeddings {
        output.embeddings.sort_unstable();
    }
    // The retry counter lives on the shared context (all workers and the
    // prefetcher funnel through it), so it is read once here, not summed
    // from worker partials.
    output.stats.rpc_retries = ctx.rpc_retries();
    crate::obs::publish_engine_stats(&output.stats);
    drop(query_span);
    // The engine thread may live past this run (it is the process main
    // thread in `rads-node`); push its buffered spans to the collector so a
    // drain right after the run sees the full timeline. Worker threads
    // flushed when they exited.
    rads_obs::flush_thread();
    output
}

/// One pool worker's share of phases 3 and 4: process local region groups
/// until the machine's queue is empty, then steal groups from the most
/// loaded other machine (checkR / shareR) until the cluster has none left.
/// Exactly the sequential drain loop, against a worker-private cache,
/// governor and output.
///
/// The governor's split path re-queues shed candidates on this machine's
/// shared queue, so a worker that splits a group finds the shed half on its
/// own next `pop_front` (it is still inside this loop when it pushes), and
/// other machines' `shareR` requests can steal it meanwhile.
#[allow(clippy::too_many_arguments)]
fn drain_region_groups(
    ctx: &MachineContext,
    pattern: &Pattern,
    plan: &ExecutionPlan,
    symmetry: &SymmetryBreaking,
    group_queue: &GroupQueue,
    config: &EngineConfig,
    estimator: SpaceEstimator,
) -> MachineOutput {
    let mut output = MachineOutput::default();
    let mut cache = if config.enable_cache {
        ForeignVertexCache::with_capacity(config.budget.cache_bytes)
    } else {
        ForeignVertexCache::disabled()
    };
    // One expander per pool worker: its candidate buffers, backtracking
    // stacks and flat extension output are reused across every parent
    // embedding, round and region group this worker processes. Likewise one
    // governor: its observations and re-fitted estimator carry across groups.
    let mut expander = Expander::new();
    let mut governor = MemoryGovernor::new(config.budget, config.enforce_budget, estimator);
    let _drain_span = rads_obs::span("drain", "engine");

    // ---- Phase 3: R-Meef over the local region groups ------------------------
    // The async driver's group-level pipeline: before expanding the popped
    // group, scatter the round-0 fetches of the *next* queued group, so its
    // foreign adjacency streams in while this group computes. The prefetch
    // only warms this worker's cache — if the targeted group is meanwhile
    // stolen by another machine or re-split by the governor, the harvested
    // entries are merely unused cache content, so counts never move.
    let mut prefetch = GroupPrefetch::new(config);
    loop {
        let (group, upcoming) = {
            let mut queue = group_queue.lock();
            let group = queue.pop_front();
            let upcoming = group.is_some().then(|| queue.front().cloned()).flatten();
            (group, upcoming)
        };
        let Some(group) = group else { break };
        // complete the fetches scattered while the previous group expanded
        prefetch.harvest_all(ctx, &mut cache, &mut output.stats);
        if let Some(next) = upcoming {
            prefetch.scatter(ctx, ctx.partition(), &next, &mut cache, &governor, &mut output.stats);
        }
        process_region_group(
            ctx, pattern, plan, symmetry, &group, &mut cache, &mut expander, &mut governor,
            group_queue, config, &mut output,
        );
        output.stats.groups_processed += 1;
    }
    // a targeted group that was stolen leaves its prefetch un-harvested
    prefetch.harvest_all(ctx, &mut cache, &mut output.stats);

    // ---- Phase 4: work stealing (checkR / shareR) -----------------------------
    if config.enable_load_sharing && ctx.machines() > 1 {
        let _steal_span = rads_obs::span("steal", "engine");
        loop {
            // the async driver scatters the checkR poll so the peers serve
            // it concurrently; results are identical, only pacing differs
            // checkR is idempotent: both paths retry transient failures
            // internally; an error here means a peer is gone past recovery.
            let polled = match config.driver {
                RoundDriver::Serial => ctx.broadcast(Request::CheckRegionGroups),
                RoundDriver::Async => ctx.broadcast_scatter(Request::CheckRegionGroups),
            }
            .unwrap_or_else(|e| transport_failed(ctx, e));
            let counts: Vec<(usize, usize)> = polled
                .into_iter()
                .filter_map(|(m, resp)| match resp {
                    Response::RegionGroupCount(n) => Some((m, n)),
                    _ => None,
                })
                .collect();
            let Some(&(target, pending)) = counts.iter().max_by_key(|&&(_, n)| n) else { break };
            if pending == 0 {
                break;
            }
            // shareR pops the target's queue — not idempotent, so a failure
            // is returned on first error, never blindly re-sent (a duplicate
            // could lose a region group). Terminal for this machine.
            match ctx
                .request(target, Request::ShareRegionGroup)
                .unwrap_or_else(|e| transport_failed(ctx, e))
            {
                Response::RegionGroup(Some(group)) => {
                    // A stolen group that overflows is split onto *this*
                    // machine's queue — the thief keeps the shed work.
                    process_region_group(
                        ctx, pattern, plan, symmetry, &group, &mut cache, &mut expander,
                        &mut governor, group_queue, config, &mut output,
                    );
                    output.stats.groups_processed += 1;
                    output.stats.groups_stolen += 1;
                    // drain any shed work before stealing more
                    loop {
                        let local_group = group_queue.lock().pop_front();
                        let Some(local_group) = local_group else { break };
                        process_region_group(
                            ctx, pattern, plan, symmetry, &local_group, &mut cache, &mut expander,
                            &mut governor, group_queue, config, &mut output,
                        );
                        output.stats.groups_processed += 1;
                    }
                }
                // Someone else got there first; re-check the cluster.
                Response::RegionGroup(None) => continue,
                _ => break,
            }
        }
    }

    let cache_stats = cache.stats();
    output.stats.cache_hits = cache_stats.hits;
    output.stats.cache_misses = cache_stats.misses;
    output.stats.cache_evictions = cache_stats.evictions;
    output.stats.cache_peak_bytes = cache.peak_memory_bytes() as u64;
    output.stats.cache_entries = cache.len();
    output.stats.intersect = expander.intersect_stats().clone();
    output.stats.peak_tracked_bytes = governor.stats.peak_tracked_bytes;
    output.stats.governor_splits = governor.stats.splits;
    output.stats.respilled_candidates = governor.stats.respilled_candidates;
    output.stats.estimator_refits = governor.stats.estimator_refits;
    output
}

/// Processes one region group: the multi-round expand / verify & filter loop
/// of Algorithm 4, under runtime budget enforcement.
///
/// The governor checkpoints the tracked bytes (trie + expansion buffers)
/// after every start candidate in round 0 and after every root subtree in
/// later rounds. When admitting the next unit of work could cross `Φ`, the
/// not-yet-expanded start candidates are shed: their partial subtrees are
/// removed from the trie, and the candidates are re-grouped under the
/// re-fitted estimator and pushed back on `group_queue`. Shed candidates
/// restart from round 0 in their new group, so every embedding is still
/// found exactly once — region groups partition the start candidates, and
/// the shed candidates' partial results are discarded before harvest. The
/// first in-flight candidate of a group is never shed, so re-queued groups
/// shrink strictly and the split recursion terminates.
#[allow(clippy::too_many_arguments)]
fn process_region_group(
    ctx: &MachineContext,
    pattern: &Pattern,
    plan: &ExecutionPlan,
    symmetry: &SymmetryBreaking,
    group: &[VertexId],
    cache: &mut ForeignVertexCache,
    expander: &mut Expander,
    governor: &mut MemoryGovernor,
    group_queue: &GroupQueue,
    config: &EngineConfig,
    output: &mut MachineOutput,
) {
    let local = ctx.partition();
    let n = pattern.vertex_count();
    let order = plan.matching_order();
    let mut trie = EmbeddingTrie::new();
    let mut evi = EdgeVerificationIndex::new();
    let mut scratch_cache = ForeignVertexCache::with_capacity(config.budget.cache_bytes);
    // Start candidates still in flight; shrinks when the governor sheds.
    let mut retained = group.len();
    let mut group_span = rads_obs::span("region_group", "engine");
    group_span.attr("candidates", group.len() as u64);
    let scanned_before = expander.intersect_stats().elements_scanned;

    for round in 0..plan.rounds() {
        let mut round_span = rads_obs::span("round", "engine");
        round_span.attr("round", round as u64);
        evi.clear();
        if !config.enable_cache {
            scratch_cache.clear();
        }
        let expansion = UnitExpansion::new(pattern, plan, symmetry, round);
        let prefix_before = if round == 0 { 0 } else { plan.sub_pattern_vertices(round - 1).len() };
        let prefix_after = plan.sub_pattern_vertices(round).len();

        // -- fetchV: gather the foreign pivot vertices this round expands from
        let parents: Vec<NodeId> = if round == 0 {
            Vec::new()
        } else {
            trie.nodes_at_depth(prefix_before - 1)
        };
        let pivot_vertex = plan.units()[round].pivot;
        let pivot_pos = order.iter().position(|&u| u == pivot_vertex).expect("pivot in order");
        let mut to_fetch: Vec<VertexId> = Vec::new();
        if round == 0 {
            // stolen region groups may contain candidates owned elsewhere
            to_fetch.extend(foreign_members(local, group, |v| {
                cache.contains(v) || scratch_cache.contains(v)
            }));
        } else {
            for &leaf in &parents {
                let result = trie.result(leaf);
                let v = result[pivot_pos];
                if !local.owns(v) && !cache.contains(v) && !scratch_cache.contains(v) {
                    to_fetch.push(v);
                }
            }
        }
        fetch_foreign(
            ctx,
            config.driver,
            config.fetch_chunk_vertices,
            &mut to_fetch,
            cache,
            &mut scratch_cache,
            &mut output.stats,
        );

        // -- expand (with governor checkpoints; the oracle is rebuilt per
        //    pivot because the byte-bounded cache may have to re-fetch)
        let mut expand_span = rads_obs::span("expand", "engine");
        let mut f: Vec<Option<VertexId>> = vec![None; n];
        if round == 0 {
            let start = plan.start_vertex();
            for (i, &v0) in group.iter().enumerate() {
                let tracked = trie.memory_bytes() + expander.memory_bytes();
                if i > 0 && governor.should_spill_candidate(tracked) {
                    retained = i;
                    // re-fit from the candidates expanded so far, so the shed
                    // remainder is re-grouped at the observed cost, not the
                    // defeated prior (otherwise the spill would recurse one
                    // candidate at a time)
                    governor.refit(trie.node_count(), i);
                    spill_candidates(governor, local, &group[i..], config, group_queue, round);
                    break;
                }
                let before = trie.memory_bytes();
                let transient = ensure_pivot_adjacency(
                    ctx, local, v0, cache, &mut scratch_cache, &mut output.stats,
                );
                let oracle = MachineOracle {
                    local,
                    cache,
                    scratch: &scratch_cache,
                    transient: transient.as_ref(),
                };
                f.iter_mut().for_each(|x| *x = None);
                f[start] = Some(v0);
                let extensions = expander.expand(&expansion, &mut f, &oracle);
                if extensions.is_empty() {
                    continue;
                }
                let root = trie.add_root(v0);
                insert_extensions(&mut trie, root, extensions, &mut evi);
                let tracked = trie.memory_bytes() + expander.memory_bytes();
                governor.observe_candidate_delta(tracked.saturating_sub(before));
                governor.track(tracked);
            }
        } else {
            // Cluster the parents by their root (start candidate) so whole
            // subtrees can be shed mid-round: the EVI of this round only
            // references nodes under already-expanded roots, which shedding
            // the *remaining* roots never touches.
            let mut clustered: Vec<(NodeId, NodeId)> =
                parents.iter().map(|&p| (trie.root_of(p), p)).collect();
            clustered.sort_unstable();
            let mut idx = 0;
            let mut expanded_roots = 0usize;
            while idx < clustered.len() {
                let root = clustered[idx].0;
                let end = clustered[idx..]
                    .iter()
                    .position(|&(r, _)| r != root)
                    .map_or(clustered.len(), |o| idx + o);
                let tracked = trie.memory_bytes() + expander.memory_bytes();
                if expanded_roots > 0 && governor.should_spill_root(tracked) {
                    // shed this and every remaining root in one pass
                    let mut shed_roots: HashSet<NodeId> = HashSet::new();
                    let mut shed_candidates: Vec<VertexId> = Vec::new();
                    for &(r, _) in &clustered[idx..] {
                        if shed_roots.insert(r) {
                            shed_candidates.push(trie.vertex(r));
                        }
                    }
                    // re-fit from the in-flight candidates before re-grouping
                    // the shed ones (see the round-0 spill above)
                    governor.refit(trie.node_count(), retained);
                    retained -= shed_candidates.len();
                    trie.remove_subtrees(&shed_roots);
                    spill_candidates(governor, local, &shed_candidates, config, group_queue, round);
                    break;
                }
                let before = trie.memory_bytes();
                for &(_, parent) in &clustered[idx..end] {
                    let result = trie.result(parent);
                    let transient = ensure_pivot_adjacency(
                        ctx, local, result[pivot_pos], cache, &mut scratch_cache,
                        &mut output.stats,
                    );
                    let oracle = MachineOracle {
                        local,
                        cache,
                        scratch: &scratch_cache,
                        transient: transient.as_ref(),
                    };
                    f.iter_mut().for_each(|x| *x = None);
                    for (pos, &v) in result.iter().enumerate() {
                        f[order[pos]] = Some(v);
                    }
                    let extensions = expander.expand(&expansion, &mut f, &oracle);
                    if extensions.is_empty() {
                        // the embedding of P_{i-1} cannot be extended: drop it
                        trie.remove(parent);
                        continue;
                    }
                    insert_extensions(&mut trie, parent, extensions, &mut evi);
                }
                let tracked = trie.memory_bytes() + expander.memory_bytes();
                governor.observe_root_delta(tracked.saturating_sub(before));
                governor.track(tracked);
                expanded_roots += 1;
                idx = end;
            }
        }
        expand_span.attr("trie_nodes", trie.node_count() as u64);
        drop(expand_span);
        output.stats.undetermined_edges += evi.len() as u64;

        // -- verify & filter
        let mut verify_span = rads_obs::span("verifyE", "engine");
        verify_span.attr("edges", evi.len() as u64);
        verify_and_filter(
            ctx, config.driver, &evi, &mut trie, cache, &scratch_cache, local, &mut output.stats,
        );
        drop(verify_span);

        // -- intermediate-result accounting (Tables 3–4): what an uncompressed
        //    embedding list of this round's results would cost vs the trie.
        let results_this_round = trie.count_at_depth(prefix_after - 1) as u64;
        output.stats.embedding_list_bytes +=
            results_this_round * prefix_after as u64 * std::mem::size_of::<VertexId>() as u64;
        output.stats.embedding_trie_bytes +=
            trie.node_count() as u64 * EmbeddingTrie::NODE_BYTES as u64;
        output.stats.peak_trie_nodes = output.stats.peak_trie_nodes.max(trie.peak_node_count());
        if rads_obs::metrics_enabled() {
            let live = (trie.memory_bytes() + expander.memory_bytes()) as u64;
            crate::obs::live_bytes_histogram().observe(live);
            crate::obs::live_bytes_watermark().observe_max(live);
        }
    }

    // -- harvest the final embeddings of this region group
    let full_depth = n - 1;
    let final_leaves = trie.nodes_at_depth(full_depth);
    output.stats.distributed_embeddings += final_leaves.len() as u64;
    output.count += final_leaves.len() as u64;
    if config.collect_embeddings {
        for leaf in &final_leaves {
            let result = trie.result(*leaf);
            let mut embedding = vec![0; n];
            for (pos, &v) in result.iter().enumerate() {
                embedding[order[pos]] = v;
            }
            output.embeddings.push(embedding);
        }
    }
    output.stats.trie_nodes_created += trie.total_created();
    if rads_obs::metrics_enabled() {
        // Intersect selectivity of this group: trie nodes produced per 100
        // elements the kernels scanned while generating its candidates.
        let scanned = expander.intersect_stats().elements_scanned - scanned_before;
        if let Some(pct) = (trie.total_created() * 100).checked_div(scanned) {
            crate::obs::selectivity_histogram().observe(pct.min(100));
        }
    }
    group_span.attr("retained", retained as u64);
    group_span.attr("embeddings", final_leaves.len() as u64);
    drop(group_span);
    // -- online re-fit: what this group's retained candidates actually cost
    governor.refit(trie.peak_node_count(), retained);
}

/// Re-groups candidates shed from an overflowing region group and re-queues
/// them on the machine's shared queue, where this worker's drain loop (or
/// another machine's `shareR`) picks them up.
fn spill_candidates(
    governor: &mut MemoryGovernor,
    local: &LocalPartition,
    shed: &[VertexId],
    config: &EngineConfig,
    group_queue: &GroupQueue,
    round: usize,
) {
    // Deterministic per spill site, so `workers = 1` runs reproduce exactly.
    let seed = config
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(shed.len() as u64)
        .wrapping_add((round as u64) << 32);
    let groups = governor.split(local, shed, config.grouping, seed);
    group_queue.lock().extend(groups);
}

/// Inserts the extensions of one parent embedding under `parent`, sharing the
/// prefixes that consecutive extensions have in common (they are produced in
/// backtracking order, so identical prefixes are adjacent), and records every
/// undetermined edge in the EVI keyed by the completed candidate's node id.
fn insert_extensions(
    trie: &mut EmbeddingTrie,
    parent: NodeId,
    extensions: &ExtensionBuffer,
    evi: &mut EdgeVerificationIndex,
) {
    let mut prev: Vec<(VertexId, NodeId)> = Vec::new();
    for i in 0..extensions.len() {
        let leaves = extensions.leaves(i);
        let mut common = 0;
        while common < prev.len()
            && common < leaves.len().saturating_sub(1)
            && prev[common].0 == leaves[common]
        {
            common += 1;
        }
        prev.truncate(common);
        let mut node = if common == 0 { parent } else { prev[common - 1].1 };
        for &v in &leaves[common..] {
            node = trie.add_child(node, v);
            prev.push((v, node));
        }
        for &(a, b) in extensions.undetermined(i) {
            evi.add(a, b, node);
        }
    }
}

/// Default vertices per `fetchV` request
/// ([`EngineConfig::fetch_chunk_vertices`]). Per-owner batches are chunked
/// so one response cannot grow without bound: the socket transport caps
/// frames at 64 MiB ([`rads_runtime::wire::MAX_FRAME_BYTES`]), and an
/// uncapped round's foreign set would cross it long before a single
/// adjacency list does. At 4096 vertices a response stays far under the cap
/// for any realistic degree distribution of the dataset stand-ins.
pub const DEFAULT_FETCH_CHUNK_VERTICES: usize = 4096;

/// Upper bound on the `fetchV` chunks a [`GroupPrefetch`] keeps pending at
/// once. Pushing past a full window completes the oldest chunk immediately
/// ([`InflightWindow`]), bounding both the responses parked in transport
/// buffers and the latency any single harvest can add.
const PREFETCH_WINDOW_CHUNKS: usize = 8;

/// Observed first-response wait (µs, EWMA — see
/// [`EngineStats::fetch_wait_micros`]) below which [`GroupPrefetch`] stops
/// scattering: a fabric that answers faster than this leaves no stall
/// worth hiding, so prefetching would only burn the CPU the current
/// group's expansion needs. One simulated-WAN round trip is milliseconds;
/// a same-host socket answers in tens of µs.
const PREFETCH_MIN_WAIT_MICROS: u64 = 500;

/// The async driver's group-level pipeline stage: scatters the round-0
/// `fetchV` chunks of an *upcoming* region group so they are in flight
/// while the current group expands, then harvests them into the worker's
/// persistent cache just before the targeted group is popped.
///
/// Inactive (every call a no-op) under the serial driver, when the
/// persistent cache is disabled — a prefetch that cannot be retained
/// anywhere would be pure waste — and once the observed fetch latency
/// drops below [`PREFETCH_MIN_WAIT_MICROS`] (a fabric that fast leaves
/// nothing to hide). The vertex count per scatter is capped by
/// [`MemoryGovernor::prefetch_quota`]: prefetching more than the cache's
/// free allowance would evict entries the in-flight group still needs.
struct GroupPrefetch {
    enabled: bool,
    chunk: usize,
    window: InflightWindow<PendingResponse>,
}

impl GroupPrefetch {
    fn new(config: &EngineConfig) -> GroupPrefetch {
        GroupPrefetch {
            enabled: config.driver == RoundDriver::Async && config.enable_cache,
            chunk: config.fetch_chunk_vertices.max(1),
            window: InflightWindow::new(PREFETCH_WINDOW_CHUNKS),
        }
    }

    /// Issues the round-0 foreign fetches of `group`, up to the governor's
    /// budget-aware quota. A push that overflows the in-flight window
    /// completes the oldest pending chunk into the cache right away.
    fn scatter(
        &mut self,
        ctx: &MachineContext,
        local: &LocalPartition,
        group: &[VertexId],
        cache: &mut ForeignVertexCache,
        governor: &MemoryGovernor,
        stats: &mut EngineStats,
    ) {
        if !self.enabled {
            return;
        }
        // Prefetching duplicates the next group's round-0 demand
        // computation, spending local CPU to hide link latency. When the
        // demand path's observed first-response wait says the fabric
        // answers before the engine could stall, that duplicate work is a
        // pure loss — skip it. No sample yet means the link speed is
        // unknown; prefetch until proven fast.
        if (1..PREFETCH_MIN_WAIT_MICROS).contains(&stats.fetch_wait_micros) {
            return;
        }
        let quota = governor.prefetch_quota(cache.len(), cache.memory_bytes());
        if quota == 0 {
            return;
        }
        let mut to_fetch = foreign_members(local, group, |v| cache.contains(v));
        to_fetch.sort_unstable();
        to_fetch.dedup();
        to_fetch.truncate(quota);
        let mut by_owner: BTreeMap<usize, Vec<VertexId>> = BTreeMap::new();
        for v in to_fetch {
            by_owner.entry(ctx.ownership().owner(v)).or_default().push(v);
        }
        let mut scatter_span = rads_obs::span("prefetch.scatter", "prefetch");
        let mut chunks = 0u64;
        for (&owner, vertices) in &by_owner {
            for chunk in vertices.chunks(self.chunk) {
                stats.fetch_requests += 1;
                chunks += 1;
                let pending = ctx.request_async(owner, Request::FetchVertices(chunk.to_vec()));
                if let Some(oldest) = self.window.push(pending) {
                    Self::harvest_one(ctx, oldest, cache, stats);
                }
            }
        }
        scatter_span.attr("chunks", chunks);
    }

    /// Completes every pending prefetch chunk into `cache`.
    fn harvest_all(
        &mut self,
        ctx: &MachineContext,
        cache: &mut ForeignVertexCache,
        stats: &mut EngineStats,
    ) {
        if self.window.is_empty() {
            return;
        }
        let mut harvest_span = rads_obs::span("prefetch.harvest", "prefetch");
        let mut chunks = 0u64;
        while let Some(pending) = self.window.pop() {
            chunks += 1;
            Self::harvest_one(ctx, pending, cache, stats);
        }
        harvest_span.attr("chunks", chunks);
    }

    fn harvest_one(
        ctx: &MachineContext,
        pending: PendingResponse,
        cache: &mut ForeignVertexCache,
        stats: &mut EngineStats,
    ) {
        let (owner, correlation) = (pending.to(), pending.correlation());
        // How long harvesting blocks on a *prefetched* chunk is the residual
        // stall the group-ahead pipeline failed to hide — near zero when the
        // scatter won the race against the expand phase.
        let started = std::time::Instant::now();
        let response = pending.wait();
        let waited = (started.elapsed().as_micros() as u64).max(1);
        stats.prefetch_wait_micros = match stats.prefetch_wait_micros {
            0 => waited,
            ewma => (3 * ewma + waited) / 4,
        };
        if rads_obs::metrics_enabled() {
            crate::obs::prefetch_wait_histogram().observe(waited);
        }
        match response {
            Ok(Response::Adjacency(lists)) => cache.insert_all(lists),
            Ok(other) => unexpected_response(ctx, "fetchV", owner, correlation, &other),
            // Prefetch is pure cache warming: a failed chunk is simply not
            // inserted, and the demand path re-fetches it later under the
            // full retry policy. Dropping it here keeps counts identical
            // under fault injection without retrying speculative work.
            Err(_) => {}
        }
    }
}

/// Batches `fetchV` requests per owner machine (chunked, see
/// [`EngineConfig::fetch_chunk_vertices`]) and inserts the returned
/// adjacency lists into
/// the cache (or the per-round scratch cache when the persistent cache is
/// disabled).
///
/// Owners are visited in ascending machine order and each owner's vertices
/// in sorted order, so the request sequence is deterministic. The serial
/// driver round-trips each chunk before issuing the next; the async driver
/// scatters every chunk first and then harvests the responses in issue
/// order, overlapping all the round-trips of the round on the wire.
fn fetch_foreign(
    ctx: &MachineContext,
    driver: RoundDriver,
    chunk_vertices: usize,
    to_fetch: &mut Vec<VertexId>,
    cache: &mut ForeignVertexCache,
    scratch: &mut ForeignVertexCache,
    stats: &mut EngineStats,
) {
    if to_fetch.is_empty() {
        return;
    }
    to_fetch.sort_unstable();
    to_fetch.dedup();
    let mut by_owner: BTreeMap<usize, Vec<VertexId>> = BTreeMap::new();
    for &v in to_fetch.iter() {
        by_owner.entry(ctx.ownership().owner(v)).or_default().push(v);
    }
    let insert = |cache: &mut ForeignVertexCache, scratch: &mut ForeignVertexCache, lists| {
        if cache.is_enabled() {
            cache.insert_all(lists);
        } else {
            scratch.insert_all(lists);
        }
    };
    // async scatter: each handle keeps its request so a transiently failed
    // harvest can re-issue it synchronously (fetchV is idempotent)
    let mut pending: Vec<(Request, PendingResponse)> = Vec::new();
    {
        // The serial driver round-trips inside this span, the async driver
        // only issues — either way "scatter" covers the request-side work.
        let mut scatter_span = rads_obs::span("scatter", "engine");
        let mut chunks = 0u64;
        for (&owner, vertices) in &by_owner {
            for chunk in vertices.chunks(chunk_vertices.max(1)) {
                stats.fetch_requests += 1;
                chunks += 1;
                let request = Request::FetchVertices(chunk.to_vec());
                match driver {
                    RoundDriver::Serial => {
                        match ctx
                            .request(owner, request)
                            .unwrap_or_else(|e| transport_failed(ctx, e))
                        {
                            Response::Adjacency(lists) => insert(cache, scratch, lists),
                            other => unexpected_response(ctx, "fetchV", owner, None, &other),
                        }
                    }
                    RoundDriver::Async => {
                        let p = ctx.request_async(owner, request.clone());
                        pending.push((request, p));
                    }
                }
            }
        }
        scatter_span.attr("chunks", chunks);
    }
    if driver == RoundDriver::Serial {
        return;
    }
    let mut harvest_span = rads_obs::span("harvest", "engine");
    harvest_span.attr("chunks", pending.len() as u64);
    // harvest in issue order: the cache's LRU recency is then independent of
    // the order in which the network delivered the responses
    let mut pending = pending.into_iter();
    if let Some((request, p)) = pending.next() {
        // The wait for the first response approximates one link round trip
        // (every later response overlaps with it); its EWMA is what
        // [`GroupPrefetch::scatter`] consults to decide whether scattering
        // a group ahead can pay for itself.
        let started = std::time::Instant::now();
        let (owner, correlation) = (p.to(), p.correlation());
        let response = ctx.harvest(p, owner, &request).unwrap_or_else(|e| transport_failed(ctx, e));
        let waited = (started.elapsed().as_micros() as u64).max(1);
        stats.fetch_wait_micros = match stats.fetch_wait_micros {
            0 => waited,
            ewma => (3 * ewma + waited) / 4,
        };
        if rads_obs::metrics_enabled() {
            crate::obs::demand_wait_histogram().observe(waited);
        }
        match response {
            Response::Adjacency(lists) => insert(cache, scratch, lists),
            other => unexpected_response(ctx, "fetchV", owner, correlation, &other),
        }
    }
    for (request, p) in pending {
        let (owner, correlation) = (p.to(), p.correlation());
        match ctx.harvest(p, owner, &request).unwrap_or_else(|e| transport_failed(ctx, e)) {
            Response::Adjacency(lists) => insert(cache, scratch, lists),
            other => unexpected_response(ctx, "fetchV", owner, correlation, &other),
        }
    }
}

/// Verifies the undetermined edges of the round: edges decidable from the
/// cache are answered locally, the rest are batched per verifier machine into
/// `verifyE` requests; candidates depending on a non-existent edge are removed
/// from the trie.
///
/// The EVI already batches every undetermined edge of all the round's
/// expansions into one request per verifier machine, in deterministic
/// (sorted-edge, ascending-owner) order. The async driver additionally
/// scatters all per-machine requests before harvesting any answer, so the
/// verifiers work concurrently instead of one blocking round-trip at a time.
#[allow(clippy::too_many_arguments)]
fn verify_and_filter(
    ctx: &MachineContext,
    driver: RoundDriver,
    evi: &EdgeVerificationIndex,
    trie: &mut EmbeddingTrie,
    cache: &ForeignVertexCache,
    scratch: &ForeignVertexCache,
    local: &LocalPartition,
    stats: &mut EngineStats,
) {
    if evi.is_empty() {
        return;
    }
    let mut verdicts: HashMap<EdgeKey, bool> = HashMap::new();
    let mut remote: Vec<EdgeKey> = Vec::new();
    for &edge in evi.edges() {
        let locally = local
            .verify_edge(edge.lo, edge.hi)
            .or_else(|| cache.verify_edge(edge.lo, edge.hi))
            .or_else(|| scratch.verify_edge(edge.lo, edge.hi));
        match locally {
            Some(exists) => {
                verdicts.insert(edge, exists);
            }
            None => remote.push(edge),
        }
    }
    // group the remaining edges by the owner of their lower endpoint
    // (`remote` is in sorted-edge order, so the grouped requests are too)
    let mut by_owner: BTreeMap<usize, Vec<(VertexId, VertexId)>> = BTreeMap::new();
    for edge in remote {
        by_owner.entry(ctx.ownership().owner(edge.lo)).or_default().push((edge.lo, edge.hi));
    }
    let record = |verdicts: &mut HashMap<EdgeKey, bool>,
                      pairs: Vec<(VertexId, VertexId)>,
                      answers: Vec<bool>| {
        for ((u, v), exists) in pairs.into_iter().zip(answers) {
            verdicts.insert(EdgeKey::new(u, v), exists);
        }
    };
    // (pairs sent, the request for harvest's retry re-issue, the handle)
    type PendingVerify = (Vec<(VertexId, VertexId)>, Request, PendingResponse);
    let mut pending: Vec<PendingVerify> = Vec::new();
    for (&owner, pairs) in &by_owner {
        stats.verify_requests += 1;
        let request = Request::VerifyEdges(pairs.clone());
        match driver {
            RoundDriver::Serial => {
                match ctx.request(owner, request).unwrap_or_else(|e| transport_failed(ctx, e)) {
                    Response::EdgeVerification(answers) => {
                        record(&mut verdicts, pairs.clone(), answers)
                    }
                    other => unexpected_response(ctx, "verifyE", owner, None, &other),
                }
            }
            RoundDriver::Async => {
                let p = ctx.request_async(owner, request.clone());
                pending.push((pairs.clone(), request, p));
            }
        }
    }
    for (pairs, request, p) in pending {
        let (owner, correlation) = (p.to(), p.correlation());
        match ctx.harvest(p, owner, &request).unwrap_or_else(|e| transport_failed(ctx, e)) {
            Response::EdgeVerification(answers) => record(&mut verdicts, pairs, answers),
            other => unexpected_response(ctx, "verifyE", owner, correlation, &other),
        }
    }
    stats.candidates_filtered += evi.filter_failed(trie, &verdicts) as u64;
}
