//! RADS — the paper's primary contribution.
//!
//! This crate implements the complete RADS system on top of the substrates in
//! the sibling crates:
//!
//! * [`trie`] — the **embedding trie** (Section 5): a compact, dynamically
//!   maintained representation of intermediate results where every leaf is a
//!   (partial) embedding and node ids double as result ids.
//! * [`evi`] — the **edge verification index** (Definition 5): groups the
//!   undetermined edges of embedding candidates so each edge is verified at
//!   most once per round, no matter how many candidates share it.
//! * [`cache`] — the foreign-vertex cache: adjacency lists fetched from other
//!   machines are kept and never re-fetched (Appendix B).
//! * [`sme`] — **SM-E**, the single-machine enumeration phase (Section 3.1):
//!   start candidates whose border distance is at least the span of the start
//!   query vertex are processed entirely locally.
//! * [`memory`] / [`region`] — the memory-control strategies of Section 6:
//!   per-candidate space estimation derived from SM-E statistics and the
//!   proximity-greedy region grouping of Algorithm 3.
//! * [`governor`] — the runtime memory governor: enforces the budget `Φ`
//!   *while* R-Meef runs by tracking live bytes, adaptively splitting
//!   overflowing region groups and re-fitting the space estimator online
//!   (static sizing alone is defeated by adversarial hub workloads).
//! * [`expand`] — the `expandEmbedTrie` / `adjEnum` backtracking expansion of
//!   Algorithms 1 and 2.
//! * [`engine`] — the **R-Meef** multi-round expand / verify & filter engine
//!   (Section 3.2, Algorithm 4), including batched `fetchV` / `verifyE`
//!   requests and checkR/shareR work stealing.
//! * [`daemon`] — the RADS daemon serving `verifyE`, `fetchV`, `checkR` and
//!   `shareR` requests from other machines.
//! * [`system`] — the public facade: [`run_rads`] executes
//!   the whole pipeline (plan → SM-E → region groups → R-Meef) on a
//!   [`rads_runtime::Cluster`] and reports embeddings, traffic and memory
//!   statistics.

pub mod cache;
pub mod daemon;
pub mod engine;
pub mod evi;
pub mod expand;
pub mod governor;
pub mod memory;
pub mod obs;
pub mod plancache;
pub mod region;
pub mod sme;
pub mod system;
pub mod trie;

pub use cache::ForeignVertexCache;
pub use engine::{RoundDriver, ROUND_DRIVER_ENV};
pub use governor::MemoryGovernor;
pub use memory::{MemoryBudget, SpaceEstimator};
pub use plancache::{canonical_signature, PatternSignature, PlanCache};
pub use system::{
    estimate_query_footprint, run_rads, run_rads_wrapped, MachineReport, RadsConfig, RadsOutcome,
    RegionGroupStrategy,
};
pub use trie::{EmbeddingTrie, NodeId};
