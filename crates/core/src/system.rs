//! The RADS system facade.
//!
//! [`run_rads`] executes the whole pipeline on a [`Cluster`]: it computes the
//! execution plan (Section 4) unless one is supplied, installs a
//! [`crate::daemon::RadsDaemon`] on every machine, runs
//! [`crate::engine::run_machine`] as every machine's engine and
//! aggregates the per-machine reports.
//!
//! The engine is transport-agnostic: the cluster may be the in-process
//! channel simulator or real TCP/UDS sockets
//! ([`rads_runtime::TransportKind`], selectable per cluster or via
//! `RADS_TRANSPORT`), and embedding counts are identical either way — only
//! the traffic numbers change meaning (modelled bytes vs real framed
//! bytes). Multi-process clusters (the `rads-node` binary) run
//! `run_machine` directly with a socket-backed
//! [`rads_runtime::MachineContext`]; `run_rads` is the single-process
//! convenience over the same parts.

use std::sync::Arc;
use std::time::Duration;

use rads_graph::{Pattern, VertexId};
use rads_plan::{best_plan, ExecutionPlan, PlannerConfig};
use rads_runtime::{Cluster, Daemon, TrafficSnapshot, Transport};

use crate::daemon::{new_group_queue, GroupQueue, RadsDaemon};
use crate::engine::{run_machine, EngineConfig, EngineStats, RoundDriver};
use crate::memory::MemoryBudget;
use crate::region::GroupingStrategy;

/// Re-export used by the configuration below.
pub use crate::region::GroupingStrategy as RegionGroupStrategy;

/// Configuration of a RADS run.
#[derive(Debug, Clone)]
pub struct RadsConfig {
    /// Run the SM-E phase (Section 3.1). Default: true.
    pub enable_sme: bool,
    /// Cache fetched foreign vertices across rounds and groups. Default: true.
    pub enable_cache: bool,
    /// Enable checkR/shareR work stealing. Default: true.
    pub enable_load_sharing: bool,
    /// Region-group formation strategy (Algorithm 3 vs random).
    pub grouping: GroupingStrategy,
    /// Per-region-group memory budget `Φ` plus the foreign-vertex cache
    /// allowance. `Default` honours the `RADS_MEMORY_BUDGET` environment
    /// variable (see [`crate::memory::MEMORY_BUDGET_ENV`]): e.g.
    /// `RADS_MEMORY_BUDGET=64k` caps both at 64 KiB, which the CI matrix
    /// uses to exercise the governor's split and the cache's eviction paths
    /// under the whole test suite.
    pub memory_budget: MemoryBudget,
    /// Enforce the budget at runtime with the
    /// [`crate::governor::MemoryGovernor`]: track live bytes while R-Meef
    /// runs, split overflowing region groups adaptively and re-fit the space
    /// estimator online. Embedding counts and collected embeddings are
    /// identical either way (region groups partition the start candidates no
    /// matter how often they are re-split); disabling it reproduces the
    /// paper's static a-priori sizing, which the robustness experiment shows
    /// blowing through `Φ` on adversarial hub workloads. Default: true.
    pub enforce_memory_budget: bool,
    /// Collect the embeddings themselves (tests / small runs); otherwise only
    /// counts are returned.
    pub collect_embeddings: bool,
    /// Use this execution plan instead of the Section 4 planner (the RanS /
    /// RanM ablations of Figure 13 pass their random plans here).
    pub plan_override: Option<ExecutionPlan>,
    /// `rho` of the plan scoring function.
    pub rho: f64,
    /// RNG seed (region grouping).
    pub seed: u64,
    /// Intra-machine parallelism: the number of worker threads each machine
    /// uses for SM-E start-candidate enumeration and R-Meef region-group
    /// processing (a [`rads_exec`] work-stealing pool).
    ///
    /// **Determinism guarantees.** For any worker count, a run returns
    /// exactly the same `total_embeddings`, the same per-machine embedding
    /// counts, the same collected embeddings (sorted lexicographically per
    /// machine), and the same values for every schedule-independent
    /// statistic (SM-E counters, groups created, trie sizes and peaks,
    /// undetermined edges, filtered candidates). With `workers == 1` the
    /// engine runs the paper's sequential code path inline — no pool thread
    /// is spawned. Only communication-volume numbers (cache hits/misses,
    /// `fetchV`/`verifyE` request counts and therefore traffic bytes) may
    /// vary with `workers > 1`, because foreign-vertex caches are
    /// worker-private and which worker's cache already holds a vertex
    /// depends on the schedule.
    ///
    /// `Default` reads the `RADS_WORKERS` environment variable (see
    /// [`rads_exec::workers_from_env`]), defaulting to 1.
    pub workers: usize,
    /// Work-stealing granularity: start candidates per SM-E work unit.
    /// Smaller units spread imbalanced candidates better; larger units
    /// amortize scheduling. Ignored when `workers == 1`.
    pub steal_granularity: usize,
    /// How each round's `fetchV` / `verifyE` communication is driven:
    /// [`RoundDriver::Async`] (default) scatters all per-owner requests
    /// concurrently and prefetches the next region group's fetches;
    /// [`RoundDriver::Serial`] is the paper's blocking loop, kept as the
    /// differential-testing oracle. Counts and collected embeddings are
    /// bit-identical between the two (see the engine's
    /// [module docs](crate::engine)); only communication-volume counters
    /// may differ. `Default` reads the `RADS_ROUND_DRIVER` environment
    /// variable (see [`crate::engine::ROUND_DRIVER_ENV`]).
    pub round_driver: RoundDriver,
    /// Vertices per `fetchV` request
    /// ([`crate::engine::DEFAULT_FETCH_CHUNK_VERTICES`]). Chunking only
    /// frames the same deterministic request sequence — results are
    /// identical for any value ≥ 1.
    pub fetch_chunk_vertices: usize,
}

impl Default for RadsConfig {
    fn default() -> Self {
        // Library backstop: binaries validate the RADS_* env up front (via
        // `from_env`, exiting cleanly with the ConfigError message) before
        // any Default::default() runs.
        RadsConfig::from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl RadsConfig {
    /// The configuration with every environment-sensitive knob
    /// (`RADS_MEMORY_BUDGET`, `RADS_WORKERS`, `RADS_ROUND_DRIVER`) read
    /// **once, now**, and every other knob at its fixed default. Malformed
    /// values are typed [`rads_runtime::ConfigError`]s instead of panics.
    ///
    /// This is the *snapshot* constructor: the returned value never
    /// consults the environment again, so holders (a resident serve
    /// cluster, a long differential suite) are immune to mid-flight env
    /// changes. Construct it once next to the `Cluster` (which likewise
    /// snapshots `RADS_TRANSPORT` at [`Cluster::new`]) and reuse it for
    /// every run — re-calling `RadsConfig::default()` per query would
    /// re-read the env each time, which is exactly the lazily-flipping
    /// behaviour this constructor exists to rule out.
    pub fn from_env() -> Result<RadsConfig, rads_runtime::ConfigError> {
        Ok(RadsConfig {
            enable_sme: true,
            enable_cache: true,
            enable_load_sharing: true,
            grouping: GroupingStrategy::Proximity,
            memory_budget: MemoryBudget::from_env()?.unwrap_or_default(),
            enforce_memory_budget: true,
            collect_embeddings: false,
            plan_override: None,
            rho: 1.0,
            seed: 42,
            workers: rads_exec::workers_from_env(),
            steal_granularity: rads_exec::DEFAULT_STEAL_GRANULARITY,
            round_driver: RoundDriver::from_env()?,
            fetch_chunk_vertices: crate::engine::DEFAULT_FETCH_CHUNK_VERTICES,
        })
    }

    /// The default configuration with an explicit worker count (ignoring the
    /// `RADS_WORKERS` environment variable).
    pub fn with_workers(workers: usize) -> Self {
        RadsConfig { workers, ..Default::default() }
    }

    /// The default configuration with an explicit round driver (ignoring the
    /// `RADS_ROUND_DRIVER` environment variable).
    pub fn with_round_driver(round_driver: RoundDriver) -> Self {
        RadsConfig { round_driver, ..Default::default() }
    }
}

/// A conservative a-priori estimate (bytes) of the intermediate-result
/// footprint `pattern` could reach on the most loaded machine of
/// `partitioned` — the number serving-mode admission control compares
/// against `Φ` *before* dispatching a query to the cluster.
///
/// The estimate deliberately ignores SM-E measurements (none exist before
/// the query runs) and uses the planner-free geometric prior
/// [`crate::memory::SpaceEstimator::fallback`] — `avg_degree^(|V(p)|-1)` trie nodes per
/// start candidate — times the largest machine's owned-vertex count. That
/// over-estimates heavily on selective patterns, which is the right
/// direction for admission: a rejected query can be re-submitted with an
/// explicit budget, an admitted query that OOMs cannot. Once a query *is*
/// admitted the [`crate::governor::MemoryGovernor`] still enforces the
/// budget at runtime; admission only filters requests that are hopeless on
/// their face.
pub fn estimate_query_footprint(
    partitioned: &rads_partition::PartitionedGraph,
    pattern: &Pattern,
) -> u64 {
    let vertices = partitioned.global_vertex_count().max(1);
    let avg_degree = 2.0 * partitioned.global_edge_count() as f64 / vertices as f64;
    let estimator = crate::memory::SpaceEstimator::fallback(avg_degree, pattern.vertex_count());
    let largest_part = (0..partitioned.num_machines())
        .map(|m| partitioned.local(m).owned_count())
        .max()
        .unwrap_or(0);
    estimator.estimate_group_bytes(largest_part) as u64
}

/// Everything one machine reports back.
#[derive(Debug, Clone, Default)]
pub struct MachineReport {
    /// Embeddings found by this machine.
    pub count: u64,
    /// The embeddings (only when `collect_embeddings` was set), indexed by
    /// query vertex.
    pub embeddings: Vec<Vec<VertexId>>,
    /// Engine statistics.
    pub stats: EngineStats,
}

/// The aggregated outcome of a RADS run.
#[derive(Debug, Clone)]
pub struct RadsOutcome {
    /// Total number of embeddings over all machines.
    pub total_embeddings: u64,
    /// Per-machine reports (indexed by machine id).
    pub per_machine: Vec<MachineReport>,
    /// Network traffic of the run.
    pub traffic: TrafficSnapshot,
    /// Wall-clock time of the distributed run.
    pub elapsed: Duration,
    /// The execution plan that was used.
    pub plan: ExecutionPlan,
}

impl RadsOutcome {
    /// Embeddings found by SM-E across all machines.
    pub fn sme_embeddings(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.sme_embeddings).sum()
    }

    /// Embeddings found by the distributed phase across all machines.
    pub fn distributed_embeddings(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.distributed_embeddings).sum()
    }

    /// All collected embeddings (empty unless `collect_embeddings` was set).
    pub fn all_embeddings(&self) -> Vec<Vec<VertexId>> {
        self.per_machine.iter().flat_map(|m| m.embeddings.iter().cloned()).collect()
    }

    /// Total bytes of the uncompressed embedding-list representation of the
    /// intermediate results (Tables 3–4, "EL" rows).
    pub fn embedding_list_bytes(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.embedding_list_bytes).sum()
    }

    /// Total bytes of the embedding-trie representation (Tables 3–4, "ET").
    pub fn embedding_trie_bytes(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.embedding_trie_bytes).sum()
    }

    /// Peak live trie nodes over all machines (robustness / memory metric).
    pub fn peak_trie_nodes(&self) -> usize {
        self.per_machine.iter().map(|m| m.stats.peak_trie_nodes).max().unwrap_or(0)
    }

    /// Peak tracked bytes (trie + expansion buffers) any worker reached —
    /// the number the governor holds at or below `Φ`.
    pub fn peak_tracked_bytes(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.peak_tracked_bytes).max().unwrap_or(0)
    }

    /// Region-group splits the governor performed across all machines.
    pub fn governor_splits(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.governor_splits).sum()
    }

    /// Foreign-vertex cache evictions across all machines.
    pub fn cache_evictions(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.cache_evictions).sum()
    }

    /// Peak cache bytes any single worker's cache reached.
    pub fn cache_peak_bytes(&self) -> u64 {
        self.per_machine.iter().map(|m| m.stats.cache_peak_bytes).max().unwrap_or(0)
    }
}

/// Runs RADS for `pattern` on `cluster`.
///
/// # Cluster-reuse contract
///
/// A `Cluster` may answer any number of `run_rads` calls (this is what
/// serving mode does), and every call behaves as if it were the first:
/// region-group queues, daemons, foreign-vertex caches, `EngineStats` and
/// traffic counters are created fresh *per invocation* — nothing carries
/// over, so a run's [`RadsOutcome`] is a pure function of
/// `(cluster dataset, pattern, config)` and repeated runs of the same
/// query return identical counts and per-machine stats. The one deliberate
/// exception is the **process-global metrics registry**
/// ([`rads_obs::Registry::global`]): it accumulates across runs by design
/// (Prometheus wants cumulative counters); callers that need per-run
/// figures diff snapshots with
/// [`rads_obs::MetricsSnapshot::delta_since`].
pub fn run_rads(cluster: &Cluster, pattern: &Pattern, config: &RadsConfig) -> RadsOutcome {
    run_rads_wrapped(cluster, pattern, config, |_machine, transport| transport)
}

/// [`run_rads`] with a [`Transport`] wrapper interposed between every
/// machine's engine and the fabric — the hook the fault-injection suite
/// uses to wrap each machine in a [`rads_runtime::FaultTransport`]. `wrap`
/// is called once per machine with its id and underlying transport; local
/// (short-circuited) requests never reach the wrapper.
pub fn run_rads_wrapped(
    cluster: &Cluster,
    pattern: &Pattern,
    config: &RadsConfig,
    wrap: impl Fn(usize, Arc<dyn Transport>) -> Arc<dyn Transport> + Send + Sync,
) -> RadsOutcome {
    let plan = config
        .plan_override
        .clone()
        .unwrap_or_else(|| best_plan(pattern, &PlannerConfig { rho: config.rho }));
    let machines = cluster.machines();

    // One shared region-group queue per machine, visible to both that
    // machine's daemon (checkR / shareR) and its engine.
    let queues: Vec<GroupQueue> = (0..machines).map(|_| new_group_queue()).collect();
    let daemons: Vec<Arc<dyn Daemon>> = (0..machines)
        .map(|m| {
            Arc::new(RadsDaemon::new(cluster.partitioned().clone(), m, queues[m].clone()))
                as Arc<dyn Daemon>
        })
        .collect();

    let engine_config = EngineConfig {
        enable_sme: config.enable_sme,
        enable_cache: config.enable_cache,
        enable_load_sharing: config.enable_load_sharing,
        grouping: config.grouping,
        budget: config.memory_budget,
        enforce_budget: config.enforce_memory_budget,
        collect_embeddings: config.collect_embeddings,
        seed: config.seed,
        workers: config.workers,
        steal_granularity: config.steal_granularity,
        driver: config.round_driver,
        fetch_chunk_vertices: config.fetch_chunk_vertices,
    };

    let plan_for_engines = plan.clone();
    let queues_for_engines = queues.clone();
    let outcome = cluster.run_with_daemons(daemons, move |ctx| {
        let machine = ctx.machine();
        let mut ctx = ctx.clone();
        ctx.wrap_transport(|transport| wrap(machine, transport));
        run_machine(
            &ctx,
            pattern,
            &plan_for_engines,
            &engine_config,
            queues_for_engines[ctx.machine()].clone(),
        )
    });

    let per_machine: Vec<MachineReport> = outcome
        .results
        .into_iter()
        .map(|out| MachineReport { count: out.count, embeddings: out.embeddings, stats: out.stats })
        .collect();
    crate::obs::publish_traffic(&outcome.traffic);
    RadsOutcome {
        total_embeddings: per_machine.iter().map(|m| m.count).sum(),
        per_machine,
        traffic: outcome.traffic,
        elapsed: outcome.elapsed,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::{barabasi_albert, community_graph, grid_2d};
    use rads_graph::{queries, Graph};
    use rads_partition::{
        BfsPartitioner, HashPartitioner, LabelPropagationPartitioner, PartitionedGraph,
        Partitioner,
    };
    use rads_single::count_embeddings;

    fn cluster_for(graph: &Graph, machines: usize, partitioner: &dyn Partitioner) -> Cluster {
        let partitioning = partitioner.partition(graph, machines);
        Cluster::new(Arc::new(PartitionedGraph::build(graph, partitioning)))
    }

    fn assert_matches_ground_truth(graph: &Graph, pattern: &Pattern, machines: usize) {
        let expected = count_embeddings(graph, pattern);
        for partitioner in [
            &BfsPartitioner as &dyn Partitioner,
            &HashPartitioner as &dyn Partitioner,
        ] {
            let cluster = cluster_for(graph, machines, partitioner);
            let outcome = run_rads(&cluster, pattern, &RadsConfig::default());
            assert_eq!(
                outcome.total_embeddings,
                expected,
                "partitioner {} machines {machines}",
                partitioner.name()
            );
        }
    }

    #[test]
    fn triangle_counts_match_single_machine() {
        let g = barabasi_albert(150, 3, 7);
        let triangle = queries::query_by_name("triangle").unwrap();
        assert_matches_ground_truth(&g, &triangle, 3);
    }

    #[test]
    fn square_counts_match_on_grid() {
        let g = grid_2d(10, 10);
        assert_matches_ground_truth(&g, &queries::q1(), 4);
    }

    #[test]
    fn house_counts_match_on_community_graph() {
        let g = community_graph(3, 15, 0.35, 0.03, 5);
        assert_matches_ground_truth(&g, &queries::q4(), 3);
    }

    #[test]
    fn multi_round_query_counts_match() {
        let g = barabasi_albert(80, 3, 11);
        for q in [queries::q3(), queries::q5()] {
            assert_matches_ground_truth(&g, &q, 3);
        }
    }

    #[test]
    fn collected_embeddings_equal_single_machine_set() {
        let g = community_graph(2, 12, 0.4, 0.05, 3);
        let pattern = queries::q2();
        let cluster = cluster_for(&g, 3, &BfsPartitioner);
        let config = RadsConfig { collect_embeddings: true, ..Default::default() };
        let outcome = run_rads(&cluster, &pattern, &config);
        let mut distributed = outcome.all_embeddings();
        let mut expected = rads_single::collect_embeddings(&g, &pattern);
        distributed.sort();
        expected.sort();
        assert_eq!(distributed, expected);
    }

    #[test]
    fn sme_handles_interior_work_on_grids() {
        // BFS partitioning of a grid leaves large interiors far from the
        // border, so most embeddings must come from SM-E and communication
        // must be small.
        let g = grid_2d(14, 14);
        let cluster = cluster_for(&g, 2, &BfsPartitioner);
        let outcome = run_rads(&cluster, &queries::q1(), &RadsConfig::default());
        assert!(outcome.sme_embeddings() > 0);
        assert!(outcome.sme_embeddings() > outcome.distributed_embeddings());
        assert_eq!(
            outcome.total_embeddings,
            count_embeddings(&g, &queries::q1())
        );
    }

    #[test]
    fn disabling_sme_pushes_everything_to_the_distributed_phase() {
        let g = grid_2d(8, 8);
        let cluster = cluster_for(&g, 2, &BfsPartitioner);
        // workers pinned to 1: the final traffic comparison is only monotone
        // under the sequential schedule (caches are worker-private); budget
        // pinned so a tiny RADS_MEMORY_BUDGET cannot skew it via re-fetches
        let base = RadsConfig {
            memory_budget: MemoryBudget::default(),
            ..RadsConfig::with_workers(1)
        };
        let with_sme = run_rads(&cluster, &queries::q1(), &base);
        let without_sme =
            run_rads(&cluster, &queries::q1(), &RadsConfig { enable_sme: false, ..base.clone() });
        assert_eq!(with_sme.total_embeddings, without_sme.total_embeddings);
        assert_eq!(without_sme.sme_embeddings(), 0);
        // pushing work to the distributed phase can only increase traffic
        assert!(without_sme.traffic.total_bytes >= with_sme.traffic.total_bytes);
    }

    #[test]
    fn cache_reduces_traffic() {
        let g = barabasi_albert(120, 3, 9);
        let cluster = cluster_for(&g, 3, &HashPartitioner);
        let q = queries::q4();
        // workers pinned to 1: the compared traffic volumes are only
        // monotone under the sequential schedule (caches are worker-private);
        // budget pinned so a tiny RADS_MEMORY_BUDGET cannot skew it
        let base = RadsConfig {
            memory_budget: MemoryBudget::default(),
            ..RadsConfig::with_workers(1)
        };
        let cached = run_rads(&cluster, &q, &base);
        let uncached =
            run_rads(&cluster, &q, &RadsConfig { enable_cache: false, ..base.clone() });
        assert_eq!(cached.total_embeddings, uncached.total_embeddings);
        assert!(cached.traffic.total_bytes <= uncached.traffic.total_bytes);
    }

    #[test]
    fn label_propagation_partitioning_also_correct() {
        let g = community_graph(4, 10, 0.4, 0.02, 8);
        let q = queries::q2();
        let expected = count_embeddings(&g, &q);
        let cluster = cluster_for(&g, 4, &LabelPropagationPartitioner::default());
        let outcome = run_rads(&cluster, &q, &RadsConfig::default());
        assert_eq!(outcome.total_embeddings, expected);
    }

    #[test]
    fn plan_override_is_respected_and_correct() {
        let g = barabasi_albert(70, 3, 4);
        let q = queries::q5();
        let expected = count_embeddings(&g, &q);
        let cluster = cluster_for(&g, 2, &BfsPartitioner);
        for seed in 0..3 {
            let plan = rads_plan::random_star_plan(&q, seed);
            let config = RadsConfig { plan_override: Some(plan.clone()), ..Default::default() };
            let outcome = run_rads(&cluster, &q, &config);
            assert_eq!(outcome.total_embeddings, expected, "seed {seed}");
            assert_eq!(outcome.plan.units(), plan.units());
        }
    }

    #[test]
    fn random_region_grouping_is_correct_too() {
        let g = barabasi_albert(90, 3, 2);
        let q = queries::q2();
        let expected = count_embeddings(&g, &q);
        let cluster = cluster_for(&g, 3, &HashPartitioner);
        let config = RadsConfig { grouping: GroupingStrategy::Random, ..Default::default() };
        assert_eq!(run_rads(&cluster, &q, &config).total_embeddings, expected);
    }

    #[test]
    fn tiny_memory_budget_still_correct_and_bounds_groups() {
        let g = barabasi_albert(80, 3, 6);
        let q = queries::q2();
        let expected = count_embeddings(&g, &q);
        let cluster = cluster_for(&g, 2, &HashPartitioner);
        let config = RadsConfig {
            memory_budget: MemoryBudget { region_group_bytes: 1, ..Default::default() },
            ..Default::default()
        };
        let outcome = run_rads(&cluster, &q, &config);
        assert_eq!(outcome.total_embeddings, expected);
        // a 1-byte budget forces singleton region groups
        let groups: usize = outcome.per_machine.iter().map(|m| m.stats.groups_created).sum();
        let candidates: usize =
            outcome.per_machine.iter().map(|m| m.stats.distributed_candidates).sum();
        assert_eq!(groups, candidates, "groups {groups} candidates {candidates}");
    }

    #[test]
    fn trie_node_count_never_exceeds_embedding_list_entries() {
        // Per round, every live trie node lies on a root-to-result path, so
        // the number of trie nodes is at most (results x prefix length), i.e.
        // the number of entries an uncompressed embedding list would store.
        // In bytes that bounds ET by 3x EL (a trie node is 12 bytes vs 4 per
        // list entry); with prefix sharing the ratio drops well below 1 on
        // dense graphs, which Table 3/4 experiments report.
        let g = barabasi_albert(100, 3, 13);
        let cluster = cluster_for(&g, 3, &HashPartitioner);
        let outcome = run_rads(&cluster, &queries::q4(), &RadsConfig::default());
        let trie_nodes = outcome.embedding_trie_bytes() / crate::trie::EmbeddingTrie::NODE_BYTES as u64;
        let list_entries = outcome.embedding_list_bytes() / std::mem::size_of::<VertexId>() as u64;
        assert!(trie_nodes <= list_entries.max(1), "trie {trie_nodes} list {list_entries}");
    }

    #[test]
    fn load_sharing_steals_groups_when_imbalanced() {
        // An unbalanced custom partitioning: machine 0 owns almost everything,
        // machine 1 owns a few vertices, so machine 1 should steal groups.
        let g = barabasi_albert(120, 3, 3);
        let n = g.vertex_count();
        let assignment: Vec<usize> = (0..n).map(|v| if v < n - 6 { 0 } else { 1 }).collect();
        let partitioning = rads_partition::Partitioning::new(assignment, 2);
        let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&g, partitioning)));
        let q = queries::q2();
        // workers pinned to 1: with an intra-machine pool, machine 0's own
        // workers can drain its queue before machine 1 gets to steal, which
        // is correct but defeats the imbalance this test sets up
        let config = RadsConfig {
            enable_sme: false,
            memory_budget: MemoryBudget { region_group_bytes: 1024, ..Default::default() },
            ..RadsConfig::with_workers(1)
        };
        let outcome = run_rads(&cluster, &q, &config);
        assert_eq!(outcome.total_embeddings, count_embeddings(&g, &q));
        let stolen: usize = outcome.per_machine.iter().map(|m| m.stats.groups_stolen).sum();
        assert!(stolen > 0, "no region groups were stolen");
    }

    #[test]
    fn clique_queries_match_ground_truth() {
        let g = barabasi_albert(80, 4, 21);
        for q in queries::clique_query_set() {
            let expected = count_embeddings(&g, &q.pattern);
            let cluster = cluster_for(&g, 3, &HashPartitioner);
            let outcome = run_rads(&cluster, &q.pattern, &RadsConfig::default());
            assert_eq!(outcome.total_embeddings, expected, "{}", q.name);
        }
    }

    #[test]
    fn worker_counts_never_change_results() {
        // The RadsConfig::workers determinism contract: counts, collected
        // embeddings and every schedule-independent statistic are identical
        // for any worker count.
        let g = community_graph(3, 14, 0.35, 0.03, 11);
        let q = queries::q4();
        let expected = count_embeddings(&g, &q);
        let cluster = cluster_for(&g, 3, &BfsPartitioner);
        // Cross-machine load sharing redistributes groups by idleness, which
        // is timing-dependent even sequentially; it stays off here so the
        // *per-machine* attribution below is comparable between runs. The
        // budget is pinned (not read from RADS_MEMORY_BUDGET) because a
        // budget tight enough to trigger governor splits makes where a group
        // is split — and with it the recompute-bearing counters below —
        // schedule-dependent; counts stay identical either way, which the
        // budget-sweep suite pins separately.
        let baseline = run_rads(
            &cluster,
            &q,
            &RadsConfig {
                collect_embeddings: true,
                enable_load_sharing: false,
                memory_budget: MemoryBudget::default(),
                ..RadsConfig::with_workers(1)
            },
        );
        assert_eq!(baseline.total_embeddings, expected);
        for workers in [2, 4, 8] {
            let config = RadsConfig {
                collect_embeddings: true,
                enable_load_sharing: false,
                steal_granularity: 4,
                memory_budget: MemoryBudget::default(),
                ..RadsConfig::with_workers(workers)
            };
            let outcome = run_rads(&cluster, &q, &config);
            assert_eq!(outcome.total_embeddings, expected, "workers {workers}");
            for (m, (a, b)) in
                baseline.per_machine.iter().zip(outcome.per_machine.iter()).enumerate()
            {
                assert_eq!(a.count, b.count, "workers {workers} machine {m}");
                assert_eq!(a.embeddings, b.embeddings, "workers {workers} machine {m}");
                let (sa, sb) = (&a.stats, &b.stats);
                assert_eq!(sa.sme_embeddings, sb.sme_embeddings);
                assert_eq!(sa.sme_candidates, sb.sme_candidates);
                assert_eq!(sa.distributed_candidates, sb.distributed_candidates);
                assert_eq!(sa.groups_created, sb.groups_created);
                assert_eq!(sa.undetermined_edges, sb.undetermined_edges);
                assert_eq!(sa.candidates_filtered, sb.candidates_filtered);
                assert_eq!(sa.trie_nodes_created, sb.trie_nodes_created);
                assert_eq!(sa.embedding_list_bytes, sb.embedding_list_bytes);
                assert_eq!(sa.embedding_trie_bytes, sb.embedding_trie_bytes);
                assert_eq!(sa.peak_trie_nodes, sb.peak_trie_nodes);
            }
        }
    }

    #[test]
    fn parallel_workers_with_load_sharing_and_ablations_stay_correct() {
        // Cross-machine stealing, disabled SM-E and disabled cache all
        // interact with the intra-machine pool; counts must never move.
        let g = barabasi_albert(100, 3, 5);
        let q = queries::q2();
        let expected = count_embeddings(&g, &q);
        let cluster = cluster_for(&g, 3, &HashPartitioner);
        for config in [
            RadsConfig::with_workers(4),
            RadsConfig { enable_sme: false, ..RadsConfig::with_workers(4) },
            RadsConfig { enable_cache: false, ..RadsConfig::with_workers(3) },
            RadsConfig {
                memory_budget: MemoryBudget { region_group_bytes: 64, ..Default::default() },
                ..RadsConfig::with_workers(2)
            },
        ] {
            let outcome = run_rads(&cluster, &q, &config);
            assert_eq!(outcome.total_embeddings, expected, "{config:?}");
        }
    }

    #[test]
    fn socket_transports_reproduce_the_simulator_counts() {
        // The full pipeline — SM-E, region grouping, R-Meef, load sharing —
        // over real sockets must match the channel simulator embedding for
        // embedding. (The whole suite runs under RADS_TRANSPORT=uds in CI;
        // this test pins the property locally regardless of environment.)
        use rads_runtime::TransportKind;
        let g = community_graph(3, 12, 0.4, 0.04, 13);
        let q = queries::q2();
        let partitioning = BfsPartitioner.partition(&g, 3);
        let pg = Arc::new(PartitionedGraph::build(&g, partitioning));
        // load sharing off: cross-machine stealing is timing-dependent, and
        // this test compares *per-machine* attribution across transports
        let config = RadsConfig {
            collect_embeddings: true,
            enable_load_sharing: false,
            ..RadsConfig::default()
        };
        let baseline = run_rads(
            &Cluster::with_transport(pg.clone(), TransportKind::InProcess),
            &q,
            &config,
        );
        assert_eq!(baseline.total_embeddings, count_embeddings(&g, &q));
        let kinds: &[TransportKind] = if cfg!(unix) {
            &[TransportKind::Uds, TransportKind::Tcp]
        } else {
            &[TransportKind::Tcp]
        };
        for &kind in kinds {
            let outcome = run_rads(&Cluster::with_transport(pg.clone(), kind), &q, &config);
            assert_eq!(
                outcome.total_embeddings,
                baseline.total_embeddings,
                "{} transport changed the count",
                kind.name()
            );
            for (m, (a, b)) in
                baseline.per_machine.iter().zip(outcome.per_machine.iter()).enumerate()
            {
                assert_eq!(a.count, b.count, "{} machine {m}", kind.name());
                assert_eq!(a.embeddings, b.embeddings, "{} machine {m}", kind.name());
            }
            // real frames on the wire, not the simulated estimate of zero-
            // cost local channels: any multi-machine run ships bytes
            assert!(outcome.traffic.total_bytes > 0);
        }
    }

    #[test]
    fn single_machine_cluster_needs_no_network() {
        let g = barabasi_albert(60, 3, 17);
        let q = queries::q2();
        let cluster = cluster_for(&g, 1, &BfsPartitioner);
        let outcome = run_rads(&cluster, &q, &RadsConfig::default());
        assert_eq!(outcome.total_embeddings, count_embeddings(&g, &q));
        assert_eq!(outcome.traffic.total_bytes, 0);
    }
}
