//! The expansion step of R-Meef (Algorithms 1 and 2).
//!
//! Given an embedding of the previous sub-pattern `P_{i-1}`, expansion matches
//! the leaf vertices of the current decomposition unit `dp_i` within the
//! neighbourhood of the pivot's data vertex, checking every verification edge
//! that can be decided locally (owned or cached endpoint) and recording the
//! rest as *undetermined edges* to be verified remotely in batch.

use rads_graph::{Pattern, PatternVertex, SymmetryBreaking, VertexId};
use rads_plan::ExecutionPlan;

/// Read-only access to adjacency lists the machine can see: owned vertices
/// and cached foreign vertices. Lists must be sorted and complete (global
/// adjacency), so membership tests and degree filters are sound.
pub trait AdjacencyOracle {
    /// The full adjacency list of `v`, if known on this machine.
    fn adjacency(&self, v: VertexId) -> Option<&[VertexId]>;

    /// Whether the undirected edge `(u, v)` exists, if decidable locally.
    fn decide_edge(&self, u: VertexId, v: VertexId) -> Option<bool> {
        if let Some(adj) = self.adjacency(u) {
            return Some(adj.binary_search(&v).is_ok());
        }
        self.adjacency(v).map(|adj| adj.binary_search(&u).is_ok())
    }
}

/// Pre-computed, per-round expansion context shared by every embedding of the
/// round.
pub struct UnitExpansion<'a> {
    pattern: &'a Pattern,
    symmetry: &'a SymmetryBreaking,
    /// The pivot of the current unit.
    pivot: PatternVertex,
    /// The unit's leaves in matching order.
    leaves: Vec<PatternVertex>,
    /// For each leaf (by index into `leaves`): the already-matched endpoints
    /// of its verification edges (every pattern neighbour that is matched
    /// earlier and is not the pivot).
    back_edges: Vec<Vec<PatternVertex>>,
}

impl<'a> UnitExpansion<'a> {
    /// Builds the expansion context for `round` of `plan`.
    pub fn new(
        pattern: &'a Pattern,
        plan: &ExecutionPlan,
        symmetry: &'a SymmetryBreaking,
        round: usize,
    ) -> Self {
        let unit = &plan.units()[round];
        let order = plan.matching_order();
        let position: Vec<usize> = {
            let mut pos = vec![usize::MAX; pattern.vertex_count()];
            for (i, &u) in order.iter().enumerate() {
                pos[u] = i;
            }
            pos
        };
        // leaves of this unit, in matching order
        let mut leaves: Vec<PatternVertex> = unit.leaves.clone();
        leaves.sort_by_key(|&u| position[u]);
        let back_edges = leaves
            .iter()
            .map(|&u| {
                pattern
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&w| w != unit.pivot && position[w] < position[u])
                    .collect()
            })
            .collect();
        UnitExpansion { pattern, symmetry, pivot: unit.pivot, leaves, back_edges }
    }

    /// The pivot query vertex of this unit.
    pub fn pivot(&self) -> PatternVertex {
        self.pivot
    }

    /// The unit's leaves in matching order.
    pub fn leaves(&self) -> &[PatternVertex] {
        &self.leaves
    }
}

/// One embedding candidate produced by expanding a single parent embedding:
/// the data vertices of the unit's leaves (aligned with
/// [`UnitExpansion::leaves`]) plus the undetermined edges it depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateExtension {
    /// Data vertices assigned to the unit's leaves, in matching order.
    pub leaves: Vec<VertexId>,
    /// Data-edge pairs that could not be decided locally.
    pub undetermined: Vec<(VertexId, VertexId)>,
}

/// Expands one embedding `f` of `P_{i-1}` (given as an assignment indexed by
/// query vertex, with exactly the vertices of `P_{i-1}` set) into all
/// embedding candidates of `P_i` visible from this machine.
///
/// `f` is used as scratch space during the backtracking and restored before
/// returning.
pub fn expand_embedding(
    ctx: &UnitExpansion<'_>,
    f: &mut [Option<VertexId>],
    oracle: &dyn AdjacencyOracle,
) -> Vec<CandidateExtension> {
    let pivot_data = f[ctx.pivot].expect("the unit pivot must be matched by the parent embedding");
    let Some(pivot_adj) = oracle.adjacency(pivot_data) else {
        // The engine fetches the pivot's adjacency before expanding; reaching
        // this branch means the vertex has no adjacency at all.
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut leaves_assigned: Vec<VertexId> = Vec::with_capacity(ctx.leaves.len());
    let mut undetermined: Vec<(VertexId, VertexId)> = Vec::new();
    backtrack(ctx, 0, pivot_adj, f, oracle, &mut leaves_assigned, &mut undetermined, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    ctx: &UnitExpansion<'_>,
    idx: usize,
    pivot_adj: &[VertexId],
    f: &mut [Option<VertexId>],
    oracle: &dyn AdjacencyOracle,
    leaves_assigned: &mut Vec<VertexId>,
    undetermined: &mut Vec<(VertexId, VertexId)>,
    out: &mut Vec<CandidateExtension>,
) {
    if idx == ctx.leaves.len() {
        out.push(CandidateExtension {
            leaves: leaves_assigned.clone(),
            undetermined: undetermined.clone(),
        });
        return;
    }
    let u = ctx.leaves[idx];
    'candidates: for &v in pivot_adj {
        // injectivity against every matched query vertex
        if f.contains(&Some(v)) {
            continue;
        }
        // degree filter, only when the full adjacency of v is known locally
        if let Some(adj) = oracle.adjacency(v) {
            if adj.len() < ctx.pattern.degree(u) {
                continue;
            }
        }
        if !ctx.symmetry.check_partial(u, v, f) {
            continue;
        }
        let undetermined_before = undetermined.len();
        for &u2 in &ctx.back_edges[idx] {
            let v2 = f[u2].expect("back-edge endpoint is matched");
            match oracle.decide_edge(v, v2) {
                Some(true) => {}
                Some(false) => {
                    undetermined.truncate(undetermined_before);
                    continue 'candidates;
                }
                None => undetermined.push((v, v2)),
            }
        }
        f[u] = Some(v);
        leaves_assigned.push(v);
        backtrack(ctx, idx + 1, pivot_adj, f, oracle, leaves_assigned, undetermined, out);
        leaves_assigned.pop();
        f[u] = None;
        undetermined.truncate(undetermined_before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::{queries, GraphBuilder};
    use rads_plan::{best_plan, PlannerConfig};
    use std::collections::HashMap;

    /// A toy oracle over an explicit adjacency map (only "known" vertices).
    struct MapOracle {
        adj: HashMap<VertexId, Vec<VertexId>>,
    }

    impl MapOracle {
        fn from_edges(known: &[VertexId], edges: &[(VertexId, VertexId)]) -> Self {
            let graph = GraphBuilder::from_edges(0, edges);
            let adj = known
                .iter()
                .map(|&v| (v, graph.neighbors(v).to_vec()))
                .collect();
            MapOracle { adj }
        }
    }

    impl AdjacencyOracle for MapOracle {
        fn adjacency(&self, v: VertexId) -> Option<&[VertexId]> {
            self.adj.get(&v).map(|a| a.as_slice())
        }
    }

    #[test]
    fn triangle_expansion_finds_local_embedding() {
        // data triangle 0-1-2 plus edge 2-3, everything known locally
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let oracle = MapOracle::from_edges(&[0, 1, 2, 3], &edges);
        let pattern = queries::query_by_name("triangle").unwrap();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        let symmetry = SymmetryBreaking::new(&pattern);
        let ctx = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let mut f = vec![None; 3];
        f[ctx.pivot()] = Some(2); // start from the hub vertex 2
        let extensions = expand_embedding(&ctx, &mut f, &oracle);
        // exactly one triangle through vertex 2 (symmetry breaking keeps one
        // of the two leaf orders)
        assert_eq!(extensions.len(), 1);
        assert!(extensions[0].undetermined.is_empty());
        let mut leaves = extensions[0].leaves.clone();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1]);
        // scratch restored
        assert_eq!(f.iter().filter(|a| a.is_some()).count(), 1);
    }

    #[test]
    fn unknown_sibling_edges_become_undetermined() {
        // Example 1: pivot v0 owned; neighbours v1, v2 foreign, so the sibling
        // edge (v1, v2) cannot be decided locally.
        let edges = [(0, 1), (0, 2), (1, 2)];
        let oracle = MapOracle::from_edges(&[0], &edges); // only v0 known
        let pattern = queries::query_by_name("triangle").unwrap();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        // symmetry breaking disabled so both leaf orders survive and the test
        // can focus on the undetermined-edge bookkeeping
        let symmetry = SymmetryBreaking::disabled(&pattern);
        let ctx = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let mut f = vec![None; 3];
        f[ctx.pivot()] = Some(0);
        let extensions = expand_embedding(&ctx, &mut f, &oracle);
        assert_eq!(extensions.len(), 2);
        for ext in &extensions {
            assert_eq!(ext.undetermined.len(), 1);
            let (a, b) = ext.undetermined[0];
            assert_eq!([a.min(b), a.max(b)], [1, 2]);
        }
    }

    #[test]
    fn locally_refutable_candidates_are_pruned() {
        // star: 0 adjacent to 1, 2, 3 but no edges among the leaves, all known
        let edges = [(0, 1), (0, 2), (0, 3)];
        let oracle = MapOracle::from_edges(&[0, 1, 2, 3], &edges);
        let pattern = queries::query_by_name("triangle").unwrap();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        let symmetry = SymmetryBreaking::new(&pattern);
        let ctx = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let mut f = vec![None; 3];
        f[ctx.pivot()] = Some(0);
        let extensions = expand_embedding(&ctx, &mut f, &oracle);
        assert!(extensions.is_empty());
    }

    #[test]
    fn second_round_uses_cross_unit_edges() {
        // pattern q4 (house) has two rounds; build a data graph that contains
        // it and check round-1 expansion from a completed round-0 embedding.
        let pattern = queries::q4();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        assert!(plan.rounds() >= 2);
        // data graph = the house itself, vertices 10..15 to avoid id aliasing
        let edges: Vec<(VertexId, VertexId)> = pattern
            .edges()
            .iter()
            .map(|&(a, b)| (a as VertexId + 10, b as VertexId + 10))
            .collect();
        let all: Vec<VertexId> = (10..15).collect();
        let oracle = MapOracle::from_edges(&all, &edges);
        let symmetry = SymmetryBreaking::disabled(&pattern);
        // run round 0 from the identity start
        let ctx0 = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let start = plan.start_vertex();
        let mut f = vec![None; pattern.vertex_count()];
        f[start] = Some(start as VertexId + 10);
        let ext0 = expand_embedding(&ctx0, &mut f, &oracle);
        // at least the identity extension exists
        assert!(!ext0.is_empty());
        // pick the identity one and continue to round 1
        let identity = ext0
            .iter()
            .find(|e| {
                e.leaves
                    .iter()
                    .zip(ctx0.leaves())
                    .all(|(&dv, &qv)| dv == qv as VertexId + 10)
            })
            .expect("identity extension present");
        for (&qv, &dv) in ctx0.leaves().iter().zip(&identity.leaves) {
            f[qv] = Some(dv);
        }
        let ctx1 = UnitExpansion::new(&pattern, &plan, &symmetry, 1);
        let ext1 = expand_embedding(&ctx1, &mut f, &oracle);
        assert!(ext1
            .iter()
            .any(|e| e.leaves.iter().zip(ctx1.leaves()).all(|(&dv, &qv)| dv == qv as VertexId + 10)));
        for e in &ext1 {
            assert!(e.undetermined.is_empty());
        }
    }
}
