//! The expansion step of R-Meef (Algorithms 1 and 2).
//!
//! Given an embedding of the previous sub-pattern `P_{i-1}`, expansion matches
//! the leaf vertices of the current decomposition unit `dp_i` within the
//! neighbourhood of the pivot's data vertex, checking every verification edge
//! that can be decided locally (owned or cached endpoint) and recording the
//! rest as *undetermined edges* to be verified remotely in batch.
//!
//! Candidate generation is intersection-based: before scanning, the pivot's
//! adjacency list is intersected ([`rads_graph::intersect`]) with the
//! adjacency list of every back-edge endpoint whose adjacency is *locally
//! known* (owned or cached), so candidates refuted by a known back edge are
//! never materialized. Only the back edges whose endpoint adjacency is
//! unknown fall back to per-candidate [`AdjacencyOracle::decide_edge`] probes
//! and the undetermined-edge bookkeeping.

use rads_graph::intersect::{intersect_k_into, IntersectStats};
use rads_graph::{Pattern, PatternVertex, SymmetryBreaking, VertexId};
use rads_plan::ExecutionPlan;

/// Read-only access to adjacency lists the machine can see: owned vertices
/// and cached foreign vertices. Lists must be sorted and complete (global
/// adjacency), so membership tests, degree filters and intersections are
/// sound.
pub trait AdjacencyOracle {
    /// The full adjacency list of `v`, if known on this machine.
    fn adjacency(&self, v: VertexId) -> Option<&[VertexId]>;

    /// Whether the undirected edge `(u, v)` exists, if decidable locally.
    fn decide_edge(&self, u: VertexId, v: VertexId) -> Option<bool> {
        if let Some(adj) = self.adjacency(u) {
            return Some(adj.binary_search(&v).is_ok());
        }
        self.adjacency(v).map(|adj| adj.binary_search(&u).is_ok())
    }
}

/// Pre-computed, per-round expansion context shared by every embedding of the
/// round.
pub struct UnitExpansion<'a> {
    pattern: &'a Pattern,
    symmetry: &'a SymmetryBreaking,
    /// The pivot of the current unit.
    pivot: PatternVertex,
    /// The unit's leaves in matching order.
    leaves: Vec<PatternVertex>,
    /// For each leaf (by index into `leaves`): the already-matched endpoints
    /// of its verification edges (every pattern neighbour that is matched
    /// earlier and is not the pivot).
    back_edges: Vec<Vec<PatternVertex>>,
}

impl<'a> UnitExpansion<'a> {
    /// Builds the expansion context for `round` of `plan`.
    pub fn new(
        pattern: &'a Pattern,
        plan: &ExecutionPlan,
        symmetry: &'a SymmetryBreaking,
        round: usize,
    ) -> Self {
        let unit = &plan.units()[round];
        let order = plan.matching_order();
        let position: Vec<usize> = {
            let mut pos = vec![usize::MAX; pattern.vertex_count()];
            for (i, &u) in order.iter().enumerate() {
                pos[u] = i;
            }
            pos
        };
        // leaves of this unit, in matching order
        let mut leaves: Vec<PatternVertex> = unit.leaves.clone();
        leaves.sort_by_key(|&u| position[u]);
        let back_edges = leaves
            .iter()
            .map(|&u| {
                pattern
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&w| w != unit.pivot && position[w] < position[u])
                    .collect()
            })
            .collect();
        UnitExpansion { pattern, symmetry, pivot: unit.pivot, leaves, back_edges }
    }

    /// The pivot query vertex of this unit.
    pub fn pivot(&self) -> PatternVertex {
        self.pivot
    }

    /// The unit's leaves in matching order.
    pub fn leaves(&self) -> &[PatternVertex] {
        &self.leaves
    }
}

/// One embedding candidate produced by expanding a single parent embedding:
/// the data vertices of the unit's leaves (aligned with
/// [`UnitExpansion::leaves`]) plus the undetermined edges it depends on.
///
/// The engine's hot loop reads extensions directly out of the flat
/// [`ExtensionBuffer`]; this owned form exists for tests and one-shot callers
/// ([`expand_embedding`], [`ExtensionBuffer::to_extensions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateExtension {
    /// Data vertices assigned to the unit's leaves, in matching order.
    pub leaves: Vec<VertexId>,
    /// Data-edge pairs that could not be decided locally.
    pub undetermined: Vec<(VertexId, VertexId)>,
}

/// The embedding candidates of one parent embedding, stored flat: all leaf
/// assignments in one vector (extension `i` occupies the `i`-th chunk of
/// `leaf_count` entries) and all undetermined edges in one shared pool sliced
/// by per-extension ranges. Reused across parents — after the buffers have
/// grown to their working size, expansion allocates nothing per extension.
#[derive(Debug, Default)]
pub struct ExtensionBuffer {
    leaf_count: usize,
    leaves: Vec<VertexId>,
    /// Per-extension `(start, end)` range into `pool`.
    undetermined_ranges: Vec<(usize, usize)>,
    pool: Vec<(VertexId, VertexId)>,
}

impl ExtensionBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffer and fixes the per-extension leaf count.
    fn reset(&mut self, leaf_count: usize) {
        self.leaf_count = leaf_count;
        self.leaves.clear();
        self.undetermined_ranges.clear();
        self.pool.clear();
    }

    /// Number of extensions currently stored.
    pub fn len(&self) -> usize {
        self.undetermined_ranges.len()
    }

    /// `true` when no extension is stored.
    pub fn is_empty(&self) -> bool {
        self.undetermined_ranges.is_empty()
    }

    /// The leaf assignment of extension `i`, aligned with
    /// [`UnitExpansion::leaves`].
    pub fn leaves(&self, i: usize) -> &[VertexId] {
        &self.leaves[i * self.leaf_count..(i + 1) * self.leaf_count]
    }

    /// The undetermined data edges of extension `i`.
    pub fn undetermined(&self, i: usize) -> &[(VertexId, VertexId)] {
        let (start, end) = self.undetermined_ranges[i];
        &self.pool[start..end]
    }

    /// Appends one complete extension (copies the current backtracking
    /// stacks into the flat storage).
    fn push(&mut self, leaves: &[VertexId], undetermined: &[(VertexId, VertexId)]) {
        debug_assert_eq!(leaves.len(), self.leaf_count);
        self.leaves.extend_from_slice(leaves);
        let start = self.pool.len();
        self.pool.extend_from_slice(undetermined);
        self.undetermined_ranges.push((start, self.pool.len()));
    }

    /// Live bytes of the stored extensions (what the memory governor charges
    /// against the intermediate-result budget: the data held for the parent
    /// currently being expanded, not the buffers' sticky capacity, which is
    /// reusable scratch).
    pub fn memory_bytes(&self) -> usize {
        self.leaves.len() * std::mem::size_of::<VertexId>()
            + self.undetermined_ranges.len() * std::mem::size_of::<(usize, usize)>()
            + self.pool.len() * std::mem::size_of::<(VertexId, VertexId)>()
    }

    /// Copies the buffer out into owned [`CandidateExtension`]s (tests and
    /// one-shot callers).
    pub fn to_extensions(&self) -> Vec<CandidateExtension> {
        (0..self.len())
            .map(|i| CandidateExtension {
                leaves: self.leaves(i).to_vec(),
                undetermined: self.undetermined(i).to_vec(),
            })
            .collect()
    }
}

/// Back-edge endpoints whose adjacency is known locally are intersected
/// up-front; at most this many lists are collected per leaf (the rest fall
/// back to per-candidate probes, which is always correct, just slower).
/// Patterns have at most ~10 vertices, so the cap is never hit in practice.
const KNOWN_LISTS_CAP: usize = 16;

/// Reusable expansion state: per-leaf candidate buffers, per-leaf probe
/// lists, the backtracking stacks and the output [`ExtensionBuffer`]. One
/// `Expander` serves arbitrarily many parent embeddings, rounds and region
/// groups; every buffer is reused, so the steady-state expansion loop is
/// allocation-free.
#[derive(Debug, Default)]
pub struct Expander {
    out: ExtensionBuffer,
    /// Per-leaf candidate buffers (intersection results).
    bufs: Vec<Vec<VertexId>>,
    /// Per-leaf endpoints that must be probed per candidate (adjacency not
    /// locally known, or beyond [`KNOWN_LISTS_CAP`]).
    probes: Vec<Vec<VertexId>>,
    /// k-way intersection scratch.
    tmp: Vec<VertexId>,
    /// Backtracking stack of assigned leaves.
    leaves_assigned: Vec<VertexId>,
    /// Backtracking stack of undetermined edges.
    undetermined: Vec<(VertexId, VertexId)>,
    /// Intersection-kernel counters, accumulated over the expander's life.
    intersect_stats: IntersectStats,
}

impl Expander {
    /// A fresh expander with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intersection-kernel counters accumulated since construction.
    pub fn intersect_stats(&self) -> &IntersectStats {
        &self.intersect_stats
    }

    /// Live bytes of the current extension output (see
    /// [`ExtensionBuffer::memory_bytes`]); the governor adds this to the trie
    /// footprint at every checkpoint.
    pub fn memory_bytes(&self) -> usize {
        self.out.memory_bytes()
    }

    /// Expands one embedding `f` of `P_{i-1}` (given as an assignment indexed
    /// by query vertex, with exactly the vertices of `P_{i-1}` set) into all
    /// embedding candidates of `P_i` visible from this machine. The returned
    /// buffer is valid until the next `expand` call.
    ///
    /// `f` is used as scratch space during the backtracking and restored
    /// before returning. Generic over the oracle so the innermost loop is
    /// statically dispatched (no `&dyn` indirection per candidate).
    pub fn expand<O: AdjacencyOracle + ?Sized>(
        &mut self,
        ctx: &UnitExpansion<'_>,
        f: &mut [Option<VertexId>],
        oracle: &O,
    ) -> &ExtensionBuffer {
        self.out.reset(ctx.leaves.len());
        if self.bufs.len() < ctx.leaves.len() {
            self.bufs.resize_with(ctx.leaves.len(), Vec::new);
            self.probes.resize_with(ctx.leaves.len(), Vec::new);
        }
        self.leaves_assigned.clear();
        self.undetermined.clear();
        let pivot_data =
            f[ctx.pivot].expect("the unit pivot must be matched by the parent embedding");
        let Some(pivot_adj) = oracle.adjacency(pivot_data) else {
            // The engine fetches the pivot's adjacency before expanding;
            // reaching this branch means the vertex has no adjacency at all.
            return &self.out;
        };
        self.backtrack(ctx, 0, pivot_adj, f, oracle);
        &self.out
    }

    fn backtrack<O: AdjacencyOracle + ?Sized>(
        &mut self,
        ctx: &UnitExpansion<'_>,
        idx: usize,
        pivot_adj: &[VertexId],
        f: &mut [Option<VertexId>],
        oracle: &O,
    ) {
        if idx == ctx.leaves.len() {
            // split borrows: `out` is disjoint from the stacks
            let Expander { out, leaves_assigned, undetermined, .. } = self;
            out.push(leaves_assigned, undetermined);
            return;
        }
        let u = ctx.leaves[idx];

        // Partition the leaf's back edges: endpoints with locally known
        // adjacency join the intersection, the rest are probed per candidate.
        let mut known: [&[VertexId]; KNOWN_LISTS_CAP] = [&[]; KNOWN_LISTS_CAP];
        let mut known_len = 0usize;
        let mut probe = std::mem::take(&mut self.probes[idx]);
        probe.clear();
        for &u2 in &ctx.back_edges[idx] {
            let v2 = f[u2].expect("back-edge endpoint is matched");
            // reserve the last slot of `known` for the pivot adjacency
            match oracle.adjacency(v2) {
                Some(adj) if known_len < KNOWN_LISTS_CAP - 1 => {
                    known[known_len] = adj;
                    known_len += 1;
                }
                _ => probe.push(v2),
            }
        }

        let mut buf = std::mem::take(&mut self.bufs[idx]);
        let candidates: &[VertexId] = if known_len == 0 {
            pivot_adj
        } else {
            known[known_len] = pivot_adj;
            intersect_k_into(
                &mut known[..known_len + 1],
                &mut buf,
                &mut self.tmp,
                &mut self.intersect_stats,
            );
            &buf
        };

        'candidates: for &v in candidates {
            // injectivity against every matched query vertex
            if f.contains(&Some(v)) {
                continue;
            }
            // degree filter, only when the full adjacency of v is known locally
            if let Some(adj) = oracle.adjacency(v) {
                if adj.len() < ctx.pattern.degree(u) {
                    continue;
                }
            }
            if !ctx.symmetry.check_partial(u, v, f) {
                continue;
            }
            let undetermined_before = self.undetermined.len();
            for &v2 in &probe {
                match oracle.decide_edge(v, v2) {
                    Some(true) => {}
                    Some(false) => {
                        self.undetermined.truncate(undetermined_before);
                        continue 'candidates;
                    }
                    None => self.undetermined.push((v, v2)),
                }
            }
            f[u] = Some(v);
            self.leaves_assigned.push(v);
            self.backtrack(ctx, idx + 1, pivot_adj, f, oracle);
            self.leaves_assigned.pop();
            f[u] = None;
            self.undetermined.truncate(undetermined_before);
        }

        self.bufs[idx] = buf;
        self.probes[idx] = probe;
    }
}

/// One-shot convenience over [`Expander::expand`] returning owned
/// extensions. The engine reuses an [`Expander`] instead; this entry point
/// serves tests and callers that expand a single embedding.
pub fn expand_embedding<O: AdjacencyOracle + ?Sized>(
    ctx: &UnitExpansion<'_>,
    f: &mut [Option<VertexId>],
    oracle: &O,
) -> Vec<CandidateExtension> {
    Expander::new().expand(ctx, f, oracle).to_extensions()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::{queries, GraphBuilder};
    use rads_plan::{best_plan, PlannerConfig};
    use std::collections::HashMap;

    /// A toy oracle over an explicit adjacency map (only "known" vertices).
    struct MapOracle {
        adj: HashMap<VertexId, Vec<VertexId>>,
    }

    impl MapOracle {
        fn from_edges(known: &[VertexId], edges: &[(VertexId, VertexId)]) -> Self {
            let graph = GraphBuilder::from_edges(0, edges);
            let adj = known
                .iter()
                .map(|&v| (v, graph.neighbors(v).to_vec()))
                .collect();
            MapOracle { adj }
        }
    }

    impl AdjacencyOracle for MapOracle {
        fn adjacency(&self, v: VertexId) -> Option<&[VertexId]> {
            self.adj.get(&v).map(|a| a.as_slice())
        }
    }

    #[test]
    fn triangle_expansion_finds_local_embedding() {
        // data triangle 0-1-2 plus edge 2-3, everything known locally
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let oracle = MapOracle::from_edges(&[0, 1, 2, 3], &edges);
        let pattern = queries::query_by_name("triangle").unwrap();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        let symmetry = SymmetryBreaking::new(&pattern);
        let ctx = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let mut f = vec![None; 3];
        f[ctx.pivot()] = Some(2); // start from the hub vertex 2
        let extensions = expand_embedding(&ctx, &mut f, &oracle);
        // exactly one triangle through vertex 2 (symmetry breaking keeps one
        // of the two leaf orders)
        assert_eq!(extensions.len(), 1);
        assert!(extensions[0].undetermined.is_empty());
        let mut leaves = extensions[0].leaves.clone();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1]);
        // scratch restored
        assert_eq!(f.iter().filter(|a| a.is_some()).count(), 1);
    }

    #[test]
    fn unknown_sibling_edges_become_undetermined() {
        // Example 1: pivot v0 owned; neighbours v1, v2 foreign, so the sibling
        // edge (v1, v2) cannot be decided locally.
        let edges = [(0, 1), (0, 2), (1, 2)];
        let oracle = MapOracle::from_edges(&[0], &edges); // only v0 known
        let pattern = queries::query_by_name("triangle").unwrap();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        // symmetry breaking disabled so both leaf orders survive and the test
        // can focus on the undetermined-edge bookkeeping
        let symmetry = SymmetryBreaking::disabled(&pattern);
        let ctx = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let mut f = vec![None; 3];
        f[ctx.pivot()] = Some(0);
        let extensions = expand_embedding(&ctx, &mut f, &oracle);
        assert_eq!(extensions.len(), 2);
        for ext in &extensions {
            assert_eq!(ext.undetermined.len(), 1);
            let (a, b) = ext.undetermined[0];
            assert_eq!([a.min(b), a.max(b)], [1, 2]);
        }
    }

    #[test]
    fn locally_refutable_candidates_are_pruned() {
        // star: 0 adjacent to 1, 2, 3 but no edges among the leaves, all known
        let edges = [(0, 1), (0, 2), (0, 3)];
        let oracle = MapOracle::from_edges(&[0, 1, 2, 3], &edges);
        let pattern = queries::query_by_name("triangle").unwrap();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        let symmetry = SymmetryBreaking::new(&pattern);
        let ctx = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let mut f = vec![None; 3];
        f[ctx.pivot()] = Some(0);
        let extensions = expand_embedding(&ctx, &mut f, &oracle);
        assert!(extensions.is_empty());
    }

    #[test]
    fn second_round_uses_cross_unit_edges() {
        // pattern q4 (house) has two rounds; build a data graph that contains
        // it and check round-1 expansion from a completed round-0 embedding.
        let pattern = queries::q4();
        let plan = best_plan(&pattern, &PlannerConfig::default());
        assert!(plan.rounds() >= 2);
        // data graph = the house itself, vertices 10..15 to avoid id aliasing
        let edges: Vec<(VertexId, VertexId)> = pattern
            .edges()
            .iter()
            .map(|&(a, b)| (a as VertexId + 10, b as VertexId + 10))
            .collect();
        let all: Vec<VertexId> = (10..15).collect();
        let oracle = MapOracle::from_edges(&all, &edges);
        let symmetry = SymmetryBreaking::disabled(&pattern);
        // run round 0 from the identity start
        let ctx0 = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        let start = plan.start_vertex();
        let mut f = vec![None; pattern.vertex_count()];
        f[start] = Some(start as VertexId + 10);
        let ext0 = expand_embedding(&ctx0, &mut f, &oracle);
        // at least the identity extension exists
        assert!(!ext0.is_empty());
        // pick the identity one and continue to round 1
        let identity = ext0
            .iter()
            .find(|e| {
                e.leaves
                    .iter()
                    .zip(ctx0.leaves())
                    .all(|(&dv, &qv)| dv == qv as VertexId + 10)
            })
            .expect("identity extension present");
        for (&qv, &dv) in ctx0.leaves().iter().zip(&identity.leaves) {
            f[qv] = Some(dv);
        }
        let ctx1 = UnitExpansion::new(&pattern, &plan, &symmetry, 1);
        let ext1 = expand_embedding(&ctx1, &mut f, &oracle);
        assert!(ext1
            .iter()
            .any(|e| e.leaves.iter().zip(ctx1.leaves()).all(|(&dv, &qv)| dv == qv as VertexId + 10)));
        for e in &ext1 {
            assert!(e.undetermined.is_empty());
        }
    }

    /// A reusable expander and the one-shot helper must produce identical
    /// extension sets, and the flat buffer must round-trip through
    /// `to_extensions` — on a mixed known/unknown oracle so both the
    /// intersection path and the probe fallback are exercised.
    #[test]
    fn expander_reuse_matches_one_shot_expansion() {
        let pattern = queries::q1(); // 4-cycle: leaves with non-pivot back edges
        let plan = best_plan(&pattern, &PlannerConfig::default());
        let symmetry = SymmetryBreaking::disabled(&pattern);
        // a 4x4 grid-ish graph, half the vertices known locally
        let edges: Vec<(VertexId, VertexId)> = (0..12u32)
            .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 3) % 12)])
            .collect();
        let known: Vec<VertexId> = (0..12).filter(|v| v % 2 == 0).collect();
        let oracle = MapOracle::from_edges(&known, &edges);
        let mut expander = Expander::new();
        let ctx = UnitExpansion::new(&pattern, &plan, &symmetry, 0);
        for start_data in 0..12u32 {
            if oracle.adjacency(start_data).is_none() {
                continue;
            }
            let mut f = vec![None; pattern.vertex_count()];
            f[ctx.pivot()] = Some(start_data);
            let reused = expander.expand(&ctx, &mut f, &oracle).to_extensions();
            let mut f2 = vec![None; pattern.vertex_count()];
            f2[ctx.pivot()] = Some(start_data);
            let one_shot = expand_embedding(&ctx, &mut f2, &oracle);
            assert_eq!(reused, one_shot, "pivot {start_data}");
            // scratch restored
            assert_eq!(f.iter().filter(|a| a.is_some()).count(), 1);
        }

        // A triangle unit has a leaf-to-leaf back edge, so with the endpoint
        // adjacency known locally the intersection kernel must run.
        let triangle = queries::query_by_name("triangle").unwrap();
        let tri_plan = best_plan(&triangle, &PlannerConfig::default());
        let tri_symmetry = SymmetryBreaking::disabled(&triangle);
        let tri_ctx = UnitExpansion::new(&triangle, &tri_plan, &tri_symmetry, 0);
        let tri_edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let tri_oracle = MapOracle::from_edges(&[0, 1, 2, 3], &tri_edges);
        let mut f = vec![None; 3];
        f[tri_ctx.pivot()] = Some(2);
        let exts = expander.expand(&tri_ctx, &mut f, &tri_oracle).to_extensions();
        assert_eq!(exts.len(), 2); // both leaf orders of the one triangle
        assert!(expander.intersect_stats().kernel_calls > 0);
    }

    /// The flat buffer addresses extensions correctly (leaf chunks and
    /// undetermined ranges).
    #[test]
    fn extension_buffer_layout() {
        let mut buf = ExtensionBuffer::new();
        buf.reset(2);
        buf.push(&[10, 11], &[(1, 2)]);
        buf.push(&[10, 12], &[]);
        buf.push(&[13, 14], &[(3, 4), (5, 6)]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        assert_eq!(buf.leaves(0), &[10, 11]);
        assert_eq!(buf.leaves(2), &[13, 14]);
        assert_eq!(buf.undetermined(0), &[(1, 2)]);
        assert_eq!(buf.undetermined(1), &[]);
        assert_eq!(buf.undetermined(2), &[(3, 4), (5, 6)]);
        let expected_bytes = 6 * std::mem::size_of::<VertexId>()
            + 3 * std::mem::size_of::<(usize, usize)>()
            + 3 * std::mem::size_of::<(VertexId, VertexId)>();
        assert_eq!(buf.memory_bytes(), expected_bytes);
        buf.reset(1);
        assert!(buf.is_empty());
        // live bytes drop on reset even though capacity is retained
        assert_eq!(buf.memory_bytes(), 0);
    }
}
