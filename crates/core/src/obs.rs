//! The engine's bridge into the [`rads_obs`] metrics registry.
//!
//! The engine keeps its deterministic per-worker counters
//! ([`EngineStats`]) exactly as before — they are merged
//! order-insensitively and must never depend on observation — and this
//! module *publishes* them into the process-global registry at run
//! boundaries, making the registry the canonical machine-readable export
//! surface ([`rads_obs::MetricsSnapshot::to_json`] /
//! [`to_prometheus`](rads_obs::MetricsSnapshot::to_prometheus)). A few
//! distribution metrics that aggregate counters cannot reconstruct
//! (latency and footprint histograms) are recorded live from the hot path
//! through the cached handles below; every recording is a no-op unless
//! `RADS_METRICS` is enabled.
//!
//! Metric names follow the convention in [`rads_obs::metrics`].

use std::sync::OnceLock;

use rads_obs::{metrics_enabled, Counter, Gauge, Histogram, Registry};
use rads_runtime::TrafficSnapshot;

use crate::engine::EngineStats;

/// Wait (µs) for the first response after scattering a round's demand
/// `fetchV` chunks.
pub(crate) fn demand_wait_histogram() -> &'static Histogram {
    static CELL: OnceLock<Histogram> = OnceLock::new();
    CELL.get_or_init(|| {
        Registry::global().histogram("rads_fetch_demand_wait_us", rads_obs::WAIT_US_BUCKETS)
    })
}

/// Wait (µs) to harvest one *prefetched* `fetchV` chunk — the residual
/// stall the group-ahead pipeline failed to hide.
pub(crate) fn prefetch_wait_histogram() -> &'static Histogram {
    static CELL: OnceLock<Histogram> = OnceLock::new();
    CELL.get_or_init(|| {
        Registry::global().histogram("rads_fetch_prefetch_wait_us", rads_obs::WAIT_US_BUCKETS)
    })
}

/// Live intermediate-result bytes (trie + expansion buffers) sampled at the
/// end of every R-Meef round.
pub(crate) fn live_bytes_histogram() -> &'static Histogram {
    static CELL: OnceLock<Histogram> = OnceLock::new();
    CELL.get_or_init(|| {
        Registry::global().histogram("rads_governor_live_bytes", rads_obs::LIVE_BYTES_BUCKETS)
    })
}

/// High watermark of the live bytes across the whole run (the runtime
/// counterpart of the budget `Φ`).
pub(crate) fn live_bytes_watermark() -> &'static Gauge {
    static CELL: OnceLock<Gauge> = OnceLock::new();
    CELL.get_or_init(|| Registry::global().gauge("rads_governor_peak_tracked_bytes"))
}

/// Per-region-group intersect selectivity: trie nodes produced per 100
/// elements the intersection kernels scanned.
pub(crate) fn selectivity_histogram() -> &'static Histogram {
    static CELL: OnceLock<Histogram> = OnceLock::new();
    CELL.get_or_init(|| {
        Registry::global().histogram("rads_intersect_selectivity_pct", rads_obs::PERCENT_BUCKETS)
    })
}

fn counter(name: &'static str) -> Counter {
    Registry::global().counter(name)
}

fn gauge(name: &'static str) -> Gauge {
    Registry::global().gauge(name)
}

/// Publishes one machine's merged [`EngineStats`] into the global registry
/// (counters add, peaks raise gauges). Called once per engine run; no-op
/// while metrics are disabled.
pub fn publish_engine_stats(stats: &EngineStats) {
    if !metrics_enabled() {
        return;
    }
    counter("rads_sme_embeddings_total").add(stats.sme_embeddings);
    counter("rads_distributed_embeddings_total").add(stats.distributed_embeddings);
    counter("rads_groups_created_total").add(stats.groups_created as u64);
    counter("rads_groups_processed_total").add(stats.groups_processed as u64);
    counter("rads_groups_stolen_total").add(stats.groups_stolen as u64);
    counter("rads_trie_nodes_created_total").add(stats.trie_nodes_created);
    counter("rads_cache_hits_total").add(stats.cache_hits);
    counter("rads_cache_misses_total").add(stats.cache_misses);
    counter("rads_cache_evictions_total").add(stats.cache_evictions);
    counter("rads_governor_splits_total").add(stats.governor_splits);
    counter("rads_governor_respilled_candidates_total").add(stats.respilled_candidates);
    counter("rads_governor_estimator_refits_total").add(stats.estimator_refits);
    counter("rads_fetch_requests_total").add(stats.fetch_requests);
    counter("rads_verify_requests_total").add(stats.verify_requests);
    counter("rads_undetermined_edges_total").add(stats.undetermined_edges);
    counter("rads_candidates_filtered_total").add(stats.candidates_filtered);
    counter("rads_intersect_kernel_calls_total").add(stats.intersect.kernel_calls);
    counter("rads_intersect_merge_dispatches_total").add(stats.intersect.merge_dispatches);
    counter("rads_intersect_gallop_dispatches_total").add(stats.intersect.gallop_dispatches);
    counter("rads_intersect_elements_scanned_total").add(stats.intersect.elements_scanned);
    gauge("rads_cache_peak_bytes").observe_max(stats.cache_peak_bytes);
    gauge("rads_trie_peak_nodes").observe_max(stats.peak_trie_nodes as u64);
    gauge("rads_fetch_demand_wait_ewma_us").observe_max(stats.fetch_wait_micros);
    gauge("rads_fetch_prefetch_wait_ewma_us").observe_max(stats.prefetch_wait_micros);
    live_bytes_watermark().observe_max(stats.peak_tracked_bytes);
    // stats.rpc_retries is deliberately NOT published here: the resilience
    // counters (rads_rpc_retries_total, rads_reconnects_total, ...) are
    // incremented live at their event sites in rads-runtime, and re-adding
    // the end-of-run aggregate would double-count every retry.
}

/// Publishes a cluster (or machine) traffic snapshot into the global
/// registry. Called once per run, after the engines finish; no-op while
/// metrics are disabled.
pub fn publish_traffic(traffic: &TrafficSnapshot) {
    if !metrics_enabled() {
        return;
    }
    counter("rads_net_messages_total").add(traffic.messages);
    counter("rads_net_bytes_total").add(traffic.total_bytes);
    counter("rads_net_control_bytes_total").add(traffic.control_bytes);
}
