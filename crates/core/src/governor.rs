//! The runtime memory governor (Section 6, enforced at runtime).
//!
//! Region groups are *sized* by the [`SpaceEstimator`] before R-Meef starts,
//! but the estimate is fitted on the SM-E sample — start candidates deep in
//! the partition interior. On adversarial inputs (power-law hubs near the
//! borders, clique queries) the distributed candidates behave nothing like
//! that sample and a group sized for `Φ` can blow an order of magnitude past
//! it. The governor closes the loop:
//!
//! * it **tracks live bytes** — embedding-trie nodes plus the expansion
//!   buffers — after every unit of expansion work and records the peak;
//! * when a region group threatens to overflow `Φ` mid-flight it **splits
//!   the group adaptively**: the start candidates not yet expanded are shed
//!   (their partial subtrees removed from the trie), re-grouped under the
//!   re-fitted estimator, and re-queued on the machine's shared group queue,
//!   where the work-stealing pool — or another machine's `shareR` — picks
//!   them up;
//! * every completed group and every split **re-fits the estimator online**
//!   ([`SpaceEstimator::refit`]) from the observed nodes-per-candidate, so
//!   follow-up groups are sized for the workload that is actually running.
//!
//! Splitting is *proactive*: the governor learns the largest byte delta one
//! start candidate (round 0) or one root subtree (later rounds) has produced
//! and sheds work as soon as the tracked bytes plus that headroom would
//! cross `Φ`; additionally, half of `Φ` is always reserved as headroom
//! against unit classes never observed before. The enforced bound is
//! therefore `peak ≤ Φ` whenever no *single* unit of work exceeds `Φ/2` — a
//! single start candidate is the floor below which no grouping policy can
//! subdivide work (the paper's `max_group_size ≥ 1` has the same floor), so
//! some slack at that granularity is unavoidable.
//!
//! Foreign-vertex bytes are governed separately: the paper gives fetched
//! vertices their own evictable allowance, which
//! [`crate::cache::ForeignVertexCache`] enforces with byte-bounded LRU
//! eviction ([`MemoryBudget::cache_bytes`]).

use rads_graph::VertexId;
use rads_partition::LocalPartition;

use crate::memory::{MemoryBudget, SpaceEstimator};
use crate::region::{find_region_groups, GroupingStrategy};

/// Counters describing what the governor did during one worker's drain loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Highest tracked bytes (trie + expansion buffers) observed at any
    /// governor checkpoint.
    pub peak_tracked_bytes: u64,
    /// Region groups that were split mid-flight.
    pub splits: u64,
    /// Start candidates shed from overflowing groups and re-queued.
    pub respilled_candidates: u64,
    /// Times the online re-fit raised the space estimate.
    pub estimator_refits: u64,
}

/// Per-worker runtime budget enforcement. One governor lives for a worker's
/// whole drain loop, so its observations and its re-fitted estimator carry
/// across region groups.
#[derive(Debug, Clone)]
pub struct MemoryGovernor {
    budget: MemoryBudget,
    /// `false` runs the paper's static a-priori sizing only (the
    /// `RADS-static` ablation of the robustness experiment).
    enforce: bool,
    estimator: SpaceEstimator,
    /// Largest byte delta one start candidate's round-0 expansion produced.
    max_candidate_delta: usize,
    /// Largest byte delta one root subtree produced in a single later round.
    max_root_delta: usize,
    /// Counters.
    pub stats: GovernorStats,
}

impl MemoryGovernor {
    /// A governor over `budget` seeded with the SM-E-fitted `estimator`.
    pub fn new(budget: MemoryBudget, enforce: bool, estimator: SpaceEstimator) -> Self {
        MemoryGovernor {
            budget,
            enforce,
            estimator,
            max_candidate_delta: 0,
            max_root_delta: 0,
            stats: GovernorStats::default(),
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// The current (possibly re-fitted) estimator.
    pub fn estimator(&self) -> &SpaceEstimator {
        &self.estimator
    }

    /// Records the current tracked bytes at a checkpoint (peak bookkeeping).
    pub fn track(&mut self, tracked_bytes: usize) {
        self.stats.peak_tracked_bytes = self.stats.peak_tracked_bytes.max(tracked_bytes as u64);
    }

    /// The spill rule: shed the next unit of work when admitting it could
    /// push the tracked bytes past `Φ`. Two triggers, either suffices:
    ///
    /// * `tracked + observed_max_delta > Φ` — a unit as large as the largest
    ///   seen would overflow;
    /// * `tracked > Φ/2` — half the budget is *reserved* as headroom against
    ///   units of a class never observed before (the first hub candidate a
    ///   worker meets has no precedent; without the reservation it lands on
    ///   top of an almost-full budget).
    ///
    /// Together they guarantee `peak ≤ Φ` whenever no single unit of work (a
    /// start candidate's round-0 expansion, or one root subtree's growth in
    /// a later round) exceeds `Φ/2` — the granularity floor below which no
    /// grouping policy can subdivide work.
    fn would_overflow(&self, tracked_bytes: usize, observed_max_delta: usize) -> bool {
        if !self.enforce || self.budget.region_group_bytes == usize::MAX {
            return false;
        }
        let budget = self.budget.region_group_bytes;
        tracked_bytes.saturating_add(observed_max_delta) > budget || tracked_bytes > budget / 2
    }

    /// Whether the next start candidate (round 0) should be shed instead of
    /// expanded.
    pub fn should_spill_candidate(&self, tracked_bytes: usize) -> bool {
        self.would_overflow(tracked_bytes, self.max_candidate_delta)
    }

    /// Whether the next root subtree (round ≥ 1) should be shed instead of
    /// expanded.
    pub fn should_spill_root(&self, tracked_bytes: usize) -> bool {
        self.would_overflow(tracked_bytes, self.max_root_delta)
    }

    /// How many foreign vertices the async round driver may prefetch for an
    /// upcoming region group, given the current cache occupancy: the number
    /// of mean-observed-size entries that still fit in the cache allowance.
    /// Prefetched adjacency parks in the foreign-vertex cache, so the window
    /// is bounded by the *cache* budget rather than `Φ` — overrunning it
    /// would evict the very entries the in-flight group is about to use.
    /// Before any entry is observed, a conservative small-degree entry cost
    /// seeds the estimate.
    pub fn prefetch_quota(&self, cache_entries: usize, cache_bytes: usize) -> usize {
        let free = self.budget.cache_bytes.saturating_sub(cache_bytes);
        let per_entry = cache_bytes
            .checked_div(cache_entries)
            .map(|per| per.max(1))
            .unwrap_or_else(|| crate::cache::ForeignVertexCache::entry_bytes(8));
        free / per_entry
    }

    /// Feeds back the byte delta one start candidate's round-0 expansion
    /// produced.
    pub fn observe_candidate_delta(&mut self, delta_bytes: usize) {
        self.max_candidate_delta = self.max_candidate_delta.max(delta_bytes);
    }

    /// Feeds back the byte delta one root subtree produced in a round ≥ 1.
    pub fn observe_root_delta(&mut self, delta_bytes: usize) {
        self.max_root_delta = self.max_root_delta.max(delta_bytes);
    }

    /// Online re-fit: raises the space estimate to `nodes` trie nodes
    /// observed over `candidates` start candidates (no-op when it would
    /// lower it, or when nothing was observed).
    pub fn refit(&mut self, nodes: usize, candidates: usize) {
        if candidates == 0 {
            return;
        }
        if self.estimator.refit(nodes as f64 / candidates as f64) {
            self.stats.estimator_refits += 1;
        }
    }

    /// Re-groups candidates shed from an overflowing region group under the
    /// re-fitted estimator. Counts the split. `seed` must be deterministic
    /// per spill site so `workers = 1` runs reproduce exactly.
    ///
    /// The new groups are sized to `Φ/2`, not `Φ`: the spill rule reserves
    /// half the budget as headroom, so a group whose projected footprint
    /// approached the full `Φ` would cross the reservation threshold and be
    /// split *again*, discarding and recomputing partial work every
    /// generation. Targeting the threshold itself makes a well-estimated
    /// re-grouped group finish without further spills.
    pub fn split(
        &mut self,
        local: &LocalPartition,
        shed_candidates: &[VertexId],
        strategy: GroupingStrategy,
        seed: u64,
    ) -> Vec<Vec<VertexId>> {
        debug_assert!(!shed_candidates.is_empty());
        self.stats.splits += 1;
        self.stats.respilled_candidates += shed_candidates.len() as u64;
        let split_budget = MemoryBudget {
            region_group_bytes: (self.budget.region_group_bytes / 2).max(1),
            ..self.budget
        };
        find_region_groups(local, shed_candidates, &self.estimator, &split_budget, strategy, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::EmbeddingTrie;
    use rads_partition::{Partitioning, PartitionedGraph};

    fn estimator() -> SpaceEstimator {
        SpaceEstimator::from_sme(100, 10) // 10 nodes per candidate
    }

    #[test]
    fn peak_tracking_is_monotone() {
        let mut g = MemoryGovernor::new(MemoryBudget::from_bytes(1000), true, estimator());
        g.track(10);
        g.track(500);
        g.track(200);
        assert_eq!(g.stats.peak_tracked_bytes, 500);
    }

    #[test]
    fn spill_decisions_use_observed_headroom() {
        let mut g = MemoryGovernor::new(MemoryBudget::from_bytes(1000), true, estimator());
        // nothing observed yet: the Φ/2 headroom reservation is in force
        assert!(!g.should_spill_candidate(400));
        assert!(g.should_spill_candidate(501));
        assert!(g.should_spill_candidate(1001));
        // after seeing a 300-byte candidate, 800 tracked leaves no headroom
        g.observe_candidate_delta(300);
        assert!(g.should_spill_candidate(800));
        assert!(!g.should_spill_candidate(400));
        // root observations are independent
        assert!(!g.should_spill_root(450));
        g.observe_root_delta(500);
        assert!(g.should_spill_root(501));
    }

    #[test]
    fn disabled_governor_never_spills() {
        let mut g = MemoryGovernor::new(MemoryBudget::from_bytes(100), false, estimator());
        g.observe_candidate_delta(1_000_000);
        assert!(!g.should_spill_candidate(usize::MAX - 1_000_000));
        // the unlimited budget never spills either, even when enforcing
        let g2 = MemoryGovernor::new(MemoryBudget::unlimited(), true, estimator());
        assert!(!g2.should_spill_candidate(usize::MAX / 2));
    }

    #[test]
    fn refit_raises_estimate_and_counts() {
        let mut g = MemoryGovernor::new(MemoryBudget::from_bytes(1000), true, estimator());
        g.refit(50, 10); // 5 nodes/candidate: below the prior, ignored
        assert_eq!(g.stats.estimator_refits, 0);
        g.refit(400, 10); // 40 nodes/candidate: raised
        assert_eq!(g.stats.estimator_refits, 1);
        assert!((g.estimator().nodes_per_candidate() - 40.0).abs() < 1e-9);
        g.refit(0, 0); // nothing observed: no-op
        assert_eq!(g.stats.estimator_refits, 1);
    }

    #[test]
    fn split_regroups_under_the_refit_estimate() {
        let graph = rads_graph::generators::community_graph(2, 6, 0.6, 0.05, 3);
        let pg = PartitionedGraph::build(
            &graph,
            Partitioning::single_machine(graph.vertex_count()),
        );
        let local = pg.local(0);
        let candidates: Vec<VertexId> = graph.vertices().collect();
        let budget = MemoryBudget::from_bytes(20 * EmbeddingTrie::NODE_BYTES);
        let mut g = MemoryGovernor::new(budget, true, SpaceEstimator::from_sme(10, 10));
        // estimate 1 node/candidate; split groups target Φ/2 = 10 nodes, so
        // the 12 candidates land in 2 groups of at most 10
        let before = g.split(local, &candidates, GroupingStrategy::Random, 7);
        assert!(before.len() >= 2, "{before:?}");
        assert!(before.iter().all(|grp| grp.len() <= 10), "{before:?}");
        assert_eq!(g.stats.splits, 1);
        assert_eq!(g.stats.respilled_candidates, candidates.len() as u64);
        // after observing 10 nodes/candidate, Φ/2 holds a single candidate
        g.refit(120, 12);
        let after = g.split(local, &candidates, GroupingStrategy::Random, 7);
        assert!(after.iter().all(|grp| grp.len() == 1), "{after:?}");
        let mut seen: Vec<VertexId> = after.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, candidates, "split must partition the shed candidates");
    }
}
