//! The RADS daemon (Section 3.1).
//!
//! Besides the partition-backed `verifyE` / `fetchV` services, the RADS daemon
//! answers the two load-balancing requests from the machine's shared
//! region-group queue: `checkR` (how many groups are still unprocessed) and
//! `shareR` (hand one unprocessed group to the requester and mark it
//! processed locally).
//!
//! The daemon is transport-agnostic and must stay safe under *concurrent*
//! requests: the in-process runtime serializes them on one daemon thread,
//! but the socket transport serves every inbound peer connection on its own
//! handler thread, so two machines' `shareR` calls can race. The mutex
//! around the shared [`GroupQueue`] makes check-then-share atomic enough —
//! a group is handed out exactly once no matter how requests interleave.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use rads_graph::VertexId;
use rads_partition::{MachineId, PartitionedGraph};
use rads_runtime::{Daemon, Envelope, PartitionDaemon, Request, Response};

/// The queue of unprocessed region groups, shared between a machine's engine
/// thread and its daemon thread.
pub type GroupQueue = Arc<Mutex<VecDeque<Vec<VertexId>>>>;

/// Creates an empty shared group queue.
pub fn new_group_queue() -> GroupQueue {
    Arc::new(Mutex::new(VecDeque::new()))
}

/// The daemon running on every RADS machine.
pub struct RadsDaemon {
    base: PartitionDaemon,
    groups: GroupQueue,
}

impl RadsDaemon {
    /// Creates the daemon for `machine`, sharing `groups` with the engine.
    pub fn new(partitioned: Arc<PartitionedGraph>, machine: MachineId, groups: GroupQueue) -> Self {
        RadsDaemon { base: PartitionDaemon::new(partitioned, machine), groups }
    }
}

impl Daemon for RadsDaemon {
    fn handle(&self, from: MachineId, envelope: Envelope) -> Response {
        match envelope.body {
            Request::CheckRegionGroups => Response::RegionGroupCount(self.groups.lock().len()),
            Request::ShareRegionGroup => Response::RegionGroup(self.groups.lock().pop_front()),
            _ => self.base.handle(from, envelope),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::ring_lattice;
    use rads_partition::{BfsPartitioner, Partitioner, Partitioning};

    fn daemon_with_groups(groups: Vec<Vec<VertexId>>) -> (RadsDaemon, GroupQueue) {
        let g = ring_lattice(8, 0);
        let pg = Arc::new(PartitionedGraph::build(
            &g,
            BfsPartitioner.partition(&g, 2),
        ));
        let queue = new_group_queue();
        queue.lock().extend(groups);
        (RadsDaemon::new(pg, 0, queue.clone()), queue)
    }

    #[test]
    fn check_and_share_consume_the_queue() {
        let (daemon, queue) = daemon_with_groups(vec![vec![1, 2], vec![3]]);
        assert_eq!(daemon.handle(1, Envelope::solo(Request::CheckRegionGroups)), Response::RegionGroupCount(2));
        assert_eq!(
            daemon.handle(1, Envelope::solo(Request::ShareRegionGroup)),
            Response::RegionGroup(Some(vec![1, 2]))
        );
        assert_eq!(daemon.handle(1, Envelope::solo(Request::CheckRegionGroups)), Response::RegionGroupCount(1));
        assert_eq!(queue.lock().len(), 1);
        assert_eq!(
            daemon.handle(1, Envelope::solo(Request::ShareRegionGroup)),
            Response::RegionGroup(Some(vec![3]))
        );
        assert_eq!(daemon.handle(1, Envelope::solo(Request::ShareRegionGroup)), Response::RegionGroup(None));
    }

    #[test]
    fn partition_requests_still_work() {
        let (daemon, _) = daemon_with_groups(vec![]);
        // ring_lattice(8, 0) is the 8-cycle: edge (0,1) exists, (0,2) does not
        match daemon.handle(1, Envelope::solo(Request::VerifyEdges(vec![(0, 1), (0, 2)]))) {
            Response::EdgeVerification(v) => assert_eq!(v, vec![true, false]),
            other => panic!("unexpected {other:?}"),
        }
        match daemon.handle(1, Envelope::solo(Request::FetchVertices(vec![0]))) {
            Response::Adjacency(lists) => assert_eq!(lists[0].1, vec![1, 7]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_machine_partitioning_helper_compiles() {
        // regression guard: Partitioning is re-exported where the system
        // facade expects it
        let p = Partitioning::single_machine(3);
        assert_eq!(p.num_machines(), 1);
    }
}
