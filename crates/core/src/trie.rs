//! The embedding trie (Section 5).
//!
//! Intermediate results — embeddings and embedding candidates of the
//! sub-patterns `P_0 .. P_l` — are stored as a forest of tries. A node at
//! depth `d` stores the data vertex mapped to the query vertex at position
//! `d` of the matching order; every leaf-to-root path is one result, and the
//! leaf's id is the result's unique id (the paper uses the node's memory
//! address; we use a slab index, which is equally unique and additionally
//! stable across reallocation).
//!
//! The trie supports exactly the operations the paper lists: *compression*
//! (shared prefixes are stored once), *unique id*, *retrieval* (walk the
//! parent pointers), and *removal* (delete a leaf and recursively any
//! ancestor whose child count drops to zero).

use rads_graph::VertexId;

/// Identifier of a trie node; doubles as the unique id of the (partial)
/// result whose last vertex the node stores.
pub type NodeId = u32;

const NO_NODE: NodeId = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    vertex: VertexId,
    parent: NodeId,
    child_count: u32,
    depth: u16,
    /// Slab freelist marker; a node is live iff `live` is true.
    live: bool,
}

/// A forest of embedding tries (one tree per start-vertex candidate).
#[derive(Debug, Default, Clone)]
pub struct EmbeddingTrie {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    roots: Vec<NodeId>,
    live_count: usize,
    /// High-water mark of live nodes, for peak-memory reporting.
    peak_live: usize,
    /// Total nodes ever created, for space-cost accounting (Tables 3–4).
    created_total: u64,
}

impl EmbeddingTrie {
    /// An empty trie.
    pub fn new() -> Self {
        EmbeddingTrie::default()
    }

    /// Size in bytes of one trie node, as accounted by the memory model:
    /// data vertex + parent pointer + child count (the paper's node layout).
    pub const NODE_BYTES: usize = std::mem::size_of::<VertexId>() + 4 + 4;

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// Highest number of simultaneously live nodes observed.
    pub fn peak_node_count(&self) -> usize {
        self.peak_live
    }

    /// Total number of nodes ever inserted (does not decrease on removal).
    pub fn total_created(&self) -> u64 {
        self.created_total
    }

    /// Approximate live heap footprint of the stored results.
    pub fn memory_bytes(&self) -> usize {
        self.live_count * Self::NODE_BYTES
    }

    /// Ids of the root nodes that are still live.
    pub fn roots(&self) -> Vec<NodeId> {
        self.roots.iter().copied().filter(|&r| self.is_live(r)).collect()
    }

    /// `true` if `id` refers to a live node.
    pub fn is_live(&self, id: NodeId) -> bool {
        (id as usize) < self.nodes.len() && self.nodes[id as usize].live
    }

    /// The data vertex stored at `id`.
    pub fn vertex(&self, id: NodeId) -> VertexId {
        debug_assert!(self.is_live(id));
        self.nodes[id as usize].vertex
    }

    /// Depth of `id` (roots have depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        debug_assert!(self.is_live(id));
        self.nodes[id as usize].depth as usize
    }

    /// Parent of `id`, or `None` for roots.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        debug_assert!(self.is_live(id));
        let p = self.nodes[id as usize].parent;
        if p == NO_NODE {
            None
        } else {
            Some(p)
        }
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: NodeId) -> usize {
        debug_assert!(self.is_live(id));
        self.nodes[id as usize].child_count as usize
    }

    fn alloc(&mut self, vertex: VertexId, parent: NodeId, depth: u16) -> NodeId {
        self.live_count += 1;
        self.peak_live = self.peak_live.max(self.live_count);
        self.created_total += 1;
        let node = Node { vertex, parent, child_count: 0, depth, live: true };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeId
        }
    }

    /// Adds a new root (a result of length 1, i.e. a mapping of the start
    /// query vertex) and returns its id.
    pub fn add_root(&mut self, vertex: VertexId) -> NodeId {
        let id = self.alloc(vertex, NO_NODE, 0);
        self.roots.push(id);
        id
    }

    /// Adds a child of `parent` storing `vertex` and returns its id.
    pub fn add_child(&mut self, parent: NodeId, vertex: VertexId) -> NodeId {
        debug_assert!(self.is_live(parent));
        let depth = self.nodes[parent as usize].depth + 1;
        let id = self.alloc(vertex, parent, depth);
        self.nodes[parent as usize].child_count += 1;
        id
    }

    /// Appends a whole path of vertices under `parent`, returning the id of
    /// the deepest node created (a convenience used when a complete unit
    /// extension is known in advance).
    pub fn add_path(&mut self, parent: NodeId, vertices: &[VertexId]) -> NodeId {
        let mut current = parent;
        for &v in vertices {
            current = self.add_child(current, v);
        }
        current
    }

    /// Retrieves the result represented by `leaf`: the data vertices along the
    /// root-to-leaf path, ordered root first (i.e. following the matching
    /// order).
    pub fn result(&self, leaf: NodeId) -> Vec<VertexId> {
        debug_assert!(self.is_live(leaf));
        let mut out = Vec::with_capacity(self.depth(leaf) + 1);
        let mut cur = leaf;
        loop {
            out.push(self.nodes[cur as usize].vertex);
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        out.reverse();
        out
    }

    /// Removes the result identified by `leaf`: deletes the leaf and every
    /// ancestor whose child count drops to zero. Removing an already-removed
    /// node is a no-op (this happens when several failed verification edges
    /// point at the same result).
    pub fn remove(&mut self, leaf: NodeId) {
        if !self.is_live(leaf) {
            return;
        }
        // Only leaves (results) may be removed directly; removing an interior
        // node would orphan its children.
        debug_assert_eq!(self.nodes[leaf as usize].child_count, 0, "only leaves can be removed");
        let mut cur = leaf;
        loop {
            let parent = self.nodes[cur as usize].parent;
            self.nodes[cur as usize].live = false;
            self.free.push(cur);
            self.live_count -= 1;
            if parent == NO_NODE {
                break;
            }
            self.nodes[parent as usize].child_count -= 1;
            if self.nodes[parent as usize].child_count > 0 {
                break;
            }
            cur = parent;
        }
    }

    /// The root ancestor of `id` (the node storing the start-candidate
    /// vertex of the result `id` belongs to). Depths are bounded by the
    /// pattern size, so the walk is a handful of pointer chases.
    pub fn root_of(&self, id: NodeId) -> NodeId {
        debug_assert!(self.is_live(id));
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            cur = p;
        }
        cur
    }

    /// Removes the entire subtrees rooted at `roots` (which must be live root
    /// nodes) and returns the number of nodes removed. Used by the memory
    /// governor to shed whole start candidates from an in-flight region
    /// group: one linear pass marks every live node whose root ancestor is in
    /// the set, so the cost is independent of how many roots are shed.
    pub fn remove_subtrees(&mut self, roots: &std::collections::HashSet<NodeId>) -> usize {
        if roots.is_empty() {
            return 0;
        }
        debug_assert!(roots.iter().all(|&r| self.is_live(r) && self.parent(r).is_none()));
        let doomed: Vec<NodeId> = (0..self.nodes.len() as NodeId)
            .filter(|&id| self.nodes[id as usize].live && roots.contains(&self.root_of(id)))
            .collect();
        for &id in &doomed {
            self.nodes[id as usize].live = false;
            self.free.push(id);
            self.live_count -= 1;
        }
        doomed.len()
    }

    /// All live nodes at `depth` (the results of the sub-pattern whose prefix
    /// length is `depth + 1`).
    pub fn nodes_at_depth(&self, depth: usize) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.live && n.depth as usize == depth)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Number of live nodes at `depth`.
    pub fn count_at_depth(&self, depth: usize) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.live && n.depth as usize == depth)
            .count()
    }

    /// Removes every dangling partial result: any live leaf node whose depth
    /// is strictly less than `full_depth` (it represents a partial embedding
    /// that was never extended to a complete result). Not needed by the
    /// engine (it removes failed candidates explicitly); provided for
    /// clean-up and tests.
    pub fn prune_dangling(&mut self, full_depth: usize) {
        loop {
            let to_remove: Vec<NodeId> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    n.live && (n.depth as usize) < full_depth && n.child_count == 0
                })
                .map(|(i, _)| i as NodeId)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for id in to_remove {
                self.remove(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example6_insert_filter_expand() {
        // Example 6: three ECs of P0 (v0, v1, v2), (v0, v1, v9), (v0, v9, v11)
        // stored in one tree; filtering the second leaves two; expanding the
        // first to P1 appends (v3, v4).
        let mut trie = EmbeddingTrie::new();
        let root = trie.add_root(0);
        let n1 = trie.add_child(root, 1);
        let leaf_a = trie.add_child(n1, 2);
        let leaf_b = trie.add_child(n1, 9);
        let n9 = trie.add_child(root, 9);
        let leaf_c = trie.add_child(n9, 11);
        assert_eq!(trie.node_count(), 6);
        assert_eq!(trie.result(leaf_a), vec![0, 1, 2]);
        assert_eq!(trie.result(leaf_b), vec![0, 1, 9]);
        assert_eq!(trie.result(leaf_c), vec![0, 9, 11]);
        // filter out the second EC
        trie.remove(leaf_b);
        assert_eq!(trie.node_count(), 5);
        assert!(trie.is_live(leaf_a));
        assert!(!trie.is_live(leaf_b));
        // expand the first EC to P1 by appending v3, v4
        let deep = trie.add_path(leaf_a, &[3, 4]);
        assert_eq!(trie.result(deep), vec![0, 1, 2, 3, 4]);
        assert_eq!(trie.depth(deep), 4);
    }

    #[test]
    fn compression_shares_prefixes() {
        let mut trie = EmbeddingTrie::new();
        let root = trie.add_root(7);
        let a = trie.add_child(root, 1);
        let _l1 = trie.add_child(a, 2);
        let _l2 = trie.add_child(a, 3);
        let _l3 = trie.add_child(a, 4);
        // 3 results of length 3 would need 9 slots as lists; the trie uses 5.
        assert_eq!(trie.node_count(), 5);
        assert!(trie.memory_bytes() < 9 * EmbeddingTrie::NODE_BYTES);
    }

    #[test]
    fn removal_cascades_to_empty_ancestors() {
        let mut trie = EmbeddingTrie::new();
        let root = trie.add_root(0);
        let a = trie.add_child(root, 1);
        let leaf = trie.add_child(a, 2);
        trie.remove(leaf);
        // a and root had no other children: everything is gone
        assert_eq!(trie.node_count(), 0);
        assert!(!trie.is_live(root));
        assert!(trie.roots().is_empty());
    }

    #[test]
    fn removal_stops_at_shared_ancestors() {
        let mut trie = EmbeddingTrie::new();
        let root = trie.add_root(0);
        let a = trie.add_child(root, 1);
        let leaf1 = trie.add_child(a, 2);
        let leaf2 = trie.add_child(a, 3);
        trie.remove(leaf1);
        assert!(trie.is_live(a));
        assert!(trie.is_live(root));
        assert!(trie.is_live(leaf2));
        assert_eq!(trie.node_count(), 3);
        // removing twice is a no-op
        trie.remove(leaf1);
        assert_eq!(trie.node_count(), 3);
    }

    #[test]
    fn node_ids_are_reused_but_results_stay_correct() {
        let mut trie = EmbeddingTrie::new();
        let root = trie.add_root(5);
        let l1 = trie.add_child(root, 6);
        trie.remove(l1); // cascades and removes the now-childless root too
        let root2 = trie.add_root(9);
        let l2 = trie.add_child(root2, 10);
        assert_eq!(trie.result(l2), vec![9, 10]);
        assert_eq!(trie.node_count(), 2);
        assert!(trie.total_created() >= 4);
    }

    #[test]
    fn depth_queries() {
        let mut trie = EmbeddingTrie::new();
        for start in 0..3u32 {
            let r = trie.add_root(start);
            for leaf in 0..2u32 {
                trie.add_child(r, 10 + leaf);
            }
        }
        assert_eq!(trie.count_at_depth(0), 3);
        assert_eq!(trie.count_at_depth(1), 6);
        assert_eq!(trie.nodes_at_depth(1).len(), 6);
        assert_eq!(trie.count_at_depth(2), 0);
    }

    #[test]
    fn peak_tracking() {
        let mut trie = EmbeddingTrie::new();
        let r = trie.add_root(0);
        let a = trie.add_child(r, 1);
        let b = trie.add_child(a, 2);
        assert_eq!(trie.peak_node_count(), 3);
        trie.remove(b);
        assert_eq!(trie.node_count(), 0);
        assert_eq!(trie.peak_node_count(), 3);
    }

    #[test]
    fn root_of_walks_to_the_start_candidate() {
        let mut trie = EmbeddingTrie::new();
        let r0 = trie.add_root(10);
        let r1 = trie.add_root(20);
        let a = trie.add_child(r0, 11);
        let b = trie.add_child(a, 12);
        let c = trie.add_child(r1, 21);
        assert_eq!(trie.root_of(r0), r0);
        assert_eq!(trie.root_of(b), r0);
        assert_eq!(trie.root_of(c), r1);
    }

    #[test]
    fn remove_subtrees_sheds_whole_start_candidates() {
        let mut trie = EmbeddingTrie::new();
        let r0 = trie.add_root(10);
        let r1 = trie.add_root(20);
        let a = trie.add_child(r0, 11);
        trie.add_child(a, 12);
        trie.add_child(a, 13);
        let keep = trie.add_child(r1, 21);
        let removed =
            trie.remove_subtrees(&[r0].into_iter().collect::<std::collections::HashSet<_>>());
        assert_eq!(removed, 4);
        assert_eq!(trie.node_count(), 2);
        assert!(!trie.is_live(r0));
        assert!(!trie.is_live(a));
        assert!(trie.is_live(keep));
        assert_eq!(trie.roots(), vec![r1]);
        // freed slots are reusable
        let r2 = trie.add_root(30);
        assert!(trie.is_live(r2));
        assert_eq!(trie.node_count(), 3);
        // empty set is a no-op
        assert_eq!(trie.remove_subtrees(&std::collections::HashSet::new()), 0);
    }

    #[test]
    fn prune_dangling_removes_incomplete_partial_results() {
        let mut trie = EmbeddingTrie::new();
        let r = trie.add_root(0);
        let a = trie.add_child(r, 1);
        let complete = trie.add_child(a, 2); // depth 2: a complete result
        let dangling = trie.add_child(r, 7); // depth 1: never extended
        trie.prune_dangling(2);
        assert!(!trie.is_live(dangling));
        assert!(trie.is_live(complete));
        assert_eq!(trie.count_at_depth(2), 1);
        assert!(trie.is_live(r));
        assert_eq!(trie.node_count(), 3);
    }
}
