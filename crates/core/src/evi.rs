//! The edge verification index (Definition 5).
//!
//! During expansion, some pattern edges map to data-vertex pairs whose
//! existence the local machine cannot decide (neither endpoint is owned or
//! cached): the *undetermined edges*. Rather than asking once per embedding
//! candidate, the EVI groups all candidates sharing an undetermined edge so
//! each edge is sent in a single batched `verifyE` request and, if it turns
//! out not to exist, every candidate depending on it is filtered at once
//! (Proposition 2).
//!
//! The index iterates its edges in sorted [`EdgeKey`] order. The async round
//! driver scatters one `verifyE` request per verifier machine and harvests
//! the responses in issue order; a deterministic edge order is what makes
//! the per-machine request payloads — and with them the byte-level traffic
//! accounting — reproducible across runs.

use std::collections::{BTreeMap, HashMap};

use rads_graph::types::EdgeKey;
use rads_graph::VertexId;
use rads_partition::{MachineId, Partitioning};

use crate::trie::{EmbeddingTrie, NodeId};

/// The edge verification index of one round.
#[derive(Debug, Default, Clone)]
pub struct EdgeVerificationIndex {
    entries: BTreeMap<EdgeKey, Vec<NodeId>>,
}

impl EdgeVerificationIndex {
    /// An empty index.
    pub fn new() -> Self {
        EdgeVerificationIndex::default()
    }

    /// Records that the embedding candidate identified by `id` depends on the
    /// undetermined edge `(u, v)`.
    pub fn add(&mut self, u: VertexId, v: VertexId, id: NodeId) {
        self.entries.entry(EdgeKey::new(u, v)).or_default().push(id);
    }

    /// Number of distinct undetermined edges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no undetermined edges were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of (edge, candidate) dependencies — used to quantify the
    /// sharing the index achieves.
    pub fn dependency_count(&self) -> usize {
        self.entries.values().map(|ids| ids.len()).sum()
    }

    /// Clears the index (the engine reuses one index across rounds).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the undetermined edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = &EdgeKey> {
        self.entries.keys()
    }

    /// Groups the undetermined edges by the machine that will verify them:
    /// the owner of one of the endpoints (preferring the lower endpoint's
    /// owner purely for determinism). Returns, per machine in ascending
    /// machine order, the list of edges to put in that machine's `verifyE`
    /// request — the deterministic scatter order of the async driver.
    pub fn group_by_verifier(
        &self,
        ownership: &Partitioning,
    ) -> BTreeMap<MachineId, Vec<(VertexId, VertexId)>> {
        let mut grouped: BTreeMap<MachineId, Vec<(VertexId, VertexId)>> = BTreeMap::new();
        for key in self.entries.keys() {
            let target = ownership.owner(key.lo);
            grouped.entry(target).or_default().push((key.lo, key.hi));
        }
        grouped
    }

    /// Applies verification verdicts: for every edge reported as non-existent,
    /// removes all dependent candidates from `trie`. Returns the number of
    /// candidates removed. `verdicts` maps an edge to `true` (exists) or
    /// `false` (does not exist); edges without a verdict are treated as
    /// existing (they were verified locally elsewhere).
    pub fn filter_failed(
        &self,
        trie: &mut EmbeddingTrie,
        verdicts: &HashMap<EdgeKey, bool>,
    ) -> usize {
        let mut removed = 0;
        for (edge, ids) in &self.entries {
            if verdicts.get(edge).copied().unwrap_or(true) {
                continue;
            }
            for &id in ids {
                if trie.is_live(id) {
                    trie.remove(id);
                    removed += 1;
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_edges_are_grouped() {
        // Example 2: two candidates share the undetermined edge (v1, v2).
        let mut evi = EdgeVerificationIndex::new();
        evi.add(1, 2, 100);
        evi.add(2, 1, 200); // same edge, reversed order
        evi.add(3, 4, 100);
        assert_eq!(evi.len(), 2);
        assert_eq!(evi.dependency_count(), 3);
    }

    #[test]
    fn filter_failed_removes_all_dependents_once() {
        let mut trie = EmbeddingTrie::new();
        let root = trie.add_root(0);
        let a = trie.add_child(root, 1);
        let c1 = trie.add_child(a, 2);
        let c2 = trie.add_child(a, 3);
        let c3 = trie.add_child(root, 9);
        let mut evi = EdgeVerificationIndex::new();
        evi.add(1, 2, c1);
        evi.add(1, 2, c2);
        evi.add(5, 6, c3);
        let mut verdicts = HashMap::new();
        verdicts.insert(EdgeKey::new(1, 2), false);
        verdicts.insert(EdgeKey::new(5, 6), true);
        let removed = evi.filter_failed(&mut trie, &verdicts);
        assert_eq!(removed, 2);
        assert!(!trie.is_live(c1));
        assert!(!trie.is_live(c2));
        assert!(trie.is_live(c3));
    }

    #[test]
    fn missing_verdicts_mean_edge_exists() {
        let mut trie = EmbeddingTrie::new();
        let root = trie.add_root(0);
        let leaf = trie.add_child(root, 1);
        let mut evi = EdgeVerificationIndex::new();
        evi.add(4, 5, leaf);
        let removed = evi.filter_failed(&mut trie, &HashMap::new());
        assert_eq!(removed, 0);
        assert!(trie.is_live(leaf));
    }

    #[test]
    fn group_by_verifier_targets_an_owner() {
        let ownership = Partitioning::new(vec![0, 0, 1, 1, 2, 2], 3);
        let mut evi = EdgeVerificationIndex::new();
        evi.add(0, 2, 1); // lo = 0 -> machine 0
        evi.add(3, 5, 2); // lo = 3 -> machine 1
        evi.add(4, 5, 3); // lo = 4 -> machine 2
        let grouped = evi.group_by_verifier(&ownership);
        assert_eq!(grouped.len(), 3);
        assert_eq!(grouped[&0], vec![(0, 2)]);
        assert_eq!(grouped[&1], vec![(3, 5)]);
        assert_eq!(grouped[&2], vec![(4, 5)]);
    }

    #[test]
    fn clear_resets_the_index() {
        let mut evi = EdgeVerificationIndex::new();
        evi.add(1, 2, 7);
        assert!(!evi.is_empty());
        evi.clear();
        assert!(evi.is_empty());
        assert_eq!(evi.len(), 0);
    }
}
