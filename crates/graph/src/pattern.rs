//! Query patterns (small unlabeled, undirected, connected graphs).

use crate::types::PatternVertex;

/// A query pattern `P = (V_P, E_P)`.
///
/// Patterns are tiny (the paper's queries have 4–10 vertices), so we keep both
/// an adjacency-list and an adjacency-matrix representation: the list for
/// iteration, the matrix for O(1) edge tests during backtracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    adj: Vec<Vec<PatternVertex>>,
    matrix: Vec<bool>,
    n: usize,
}

impl Pattern {
    /// Builds a pattern with `n` vertices from an edge list.
    ///
    /// # Panics
    /// Panics if an edge references a vertex `>= n` or is a self-loop.
    pub fn from_edges(n: usize, edges: &[(PatternVertex, PatternVertex)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        let mut matrix = vec![false; n * n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "pattern edge ({u}, {v}) out of range for n = {n}");
            assert_ne!(u, v, "pattern self-loop at {u}");
            if !matrix[u * n + v] {
                matrix[u * n + v] = true;
                matrix[v * n + u] = true;
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        for list in adj.iter_mut() {
            list.sort_unstable();
        }
        Pattern { adj, matrix, n }
    }

    /// Number of query vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of query edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Iterator over all query vertices.
    pub fn vertices(&self) -> impl Iterator<Item = PatternVertex> {
        0..self.n
    }

    /// Sorted neighbours of `u`.
    pub fn neighbors(&self, u: PatternVertex) -> &[PatternVertex] {
        &self.adj[u]
    }

    /// Degree of `u` in the pattern.
    pub fn degree(&self, u: PatternVertex) -> usize {
        self.adj[u].len()
    }

    /// O(1) edge test.
    pub fn has_edge(&self, u: PatternVertex, v: PatternVertex) -> bool {
        u != v && self.matrix[u * self.n + v]
    }

    /// All edges, each reported once with the smaller endpoint first.
    pub fn edges(&self) -> Vec<(PatternVertex, PatternVertex)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.n {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// BFS distances from `u` to every pattern vertex (`usize::MAX` when
    /// unreachable).
    pub fn distances_from(&self, u: PatternVertex) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[u] = 0;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x] {
                if dist[y] == usize::MAX {
                    dist[y] = dist[x] + 1;
                    queue.push_back(y);
                }
            }
        }
        dist
    }

    /// The *span* of query vertex `u` (Definition 2): the maximum shortest
    /// distance from `u` to any other query vertex.
    pub fn span(&self, u: PatternVertex) -> usize {
        self.distances_from(u)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Diameter of the pattern (max span over all vertices).
    pub fn diameter(&self) -> usize {
        self.vertices().map(|u| self.span(u)).max().unwrap_or(0)
    }

    /// Returns `true` if the pattern is connected (the paper assumes connected
    /// query patterns).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.distances_from(0).into_iter().all(|d| d != usize::MAX)
    }

    /// Returns `true` if the set of vertices `set` induces a connected
    /// subgraph of the pattern.
    pub fn is_connected_subset(&self, set: &[PatternVertex]) -> bool {
        if set.is_empty() {
            return true;
        }
        let in_set = |v: PatternVertex| set.contains(&v);
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[set[0]] = true;
        queue.push_back(set[0]);
        let mut reached = 1;
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x] {
                if in_set(y) && !seen[y] {
                    seen[y] = true;
                    reached += 1;
                    queue.push_back(y);
                }
            }
        }
        reached == set.len()
    }

    /// Returns `true` if `set` is a *connected dominating set* of the pattern
    /// (Definition 9): every vertex is in the set or adjacent to it, and the
    /// induced subgraph is connected.
    pub fn is_connected_dominating_set(&self, set: &[PatternVertex]) -> bool {
        if !self.is_connected_subset(set) {
            return false;
        }
        self.vertices().all(|v| {
            set.contains(&v) || self.adj[v].iter().any(|w| set.contains(w))
        })
    }

    /// Size of a minimum connected dominating set (`c_P` in the paper),
    /// computed by brute force over vertex subsets in increasing size order.
    /// Patterns are tiny so this is cheap.
    pub fn connected_domination_number(&self) -> usize {
        if self.n <= 1 {
            return self.n;
        }
        assert!(
            self.n <= 20,
            "connected_domination_number uses subset enumeration and is limited to 20 vertices"
        );
        let mut best = self.n;
        for mask in 1u32..(1u32 << self.n) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let subset: Vec<PatternVertex> =
                (0..self.n).filter(|&v| mask & (1 << v) != 0).collect();
            if self.is_connected_dominating_set(&subset) {
                best = size;
            }
        }
        best
    }

    /// Maximum leaf number `l_P = |V_P| - c_P` (from Douglas 1992, used in
    /// Theorem 1).
    pub fn maximum_leaf_number(&self) -> usize {
        self.n - self.connected_domination_number()
    }

    /// A vertex-induced sub-pattern on `keep` (relabelled densely following
    /// the order of `keep`), plus the map from new ids to old ids.
    pub fn induced(&self, keep: &[PatternVertex]) -> (Pattern, Vec<PatternVertex>) {
        let mut new_of_old = vec![usize::MAX; self.n];
        for (new, &old) in keep.iter().enumerate() {
            new_of_old[old] = new;
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges() {
            if new_of_old[u] != usize::MAX && new_of_old[v] != usize::MAX {
                edges.push((new_of_old[u], new_of_old[v]));
            }
        }
        (Pattern::from_edges(keep.len(), &edges), keep.to_vec())
    }
}

/// Fluent builder for patterns used by tests and the query catalogue.
#[derive(Debug, Default, Clone)]
pub struct PatternBuilder {
    n: usize,
    edges: Vec<(PatternVertex, PatternVertex)>,
}

impl PatternBuilder {
    /// Creates a builder for a pattern with `n` vertices.
    pub fn new(n: usize) -> Self {
        PatternBuilder { n, edges: Vec::new() }
    }

    /// Adds the undirected pattern edge `(u, v)` and returns the builder.
    pub fn edge(mut self, u: PatternVertex, v: PatternVertex) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds a path `vs[0] - vs[1] - ... - vs[k]`.
    pub fn path(mut self, vs: &[PatternVertex]) -> Self {
        for w in vs.windows(2) {
            self.edges.push((w[0], w[1]));
        }
        self
    }

    /// Adds a cycle over `vs`.
    pub fn cycle(mut self, vs: &[PatternVertex]) -> Self {
        for w in vs.windows(2) {
            self.edges.push((w[0], w[1]));
        }
        if vs.len() > 2 {
            self.edges.push((vs[vs.len() - 1], vs[0]));
        }
        self
    }

    /// Adds a clique over `vs`.
    pub fn clique(mut self, vs: &[PatternVertex]) -> Self {
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                self.edges.push((vs[i], vs[j]));
            }
        }
        self
    }

    /// Builds the pattern.
    pub fn build(self) -> Pattern {
        Pattern::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> Pattern {
        // 0-1-2-3-0 plus 0-2
        PatternBuilder::new(4).cycle(&[0, 1, 2, 3]).edge(0, 2).build()
    }

    #[test]
    fn basic_accessors() {
        let p = square_with_diagonal();
        assert_eq!(p.vertex_count(), 4);
        assert_eq!(p.edge_count(), 5);
        assert_eq!(p.degree(0), 3);
        assert_eq!(p.degree(1), 2);
        assert!(p.has_edge(0, 2));
        assert!(!p.has_edge(1, 3));
        assert!(p.is_connected());
    }

    #[test]
    fn spans_and_diameter() {
        // path 0-1-2-3
        let p = PatternBuilder::new(4).path(&[0, 1, 2, 3]).build();
        assert_eq!(p.span(0), 3);
        assert_eq!(p.span(1), 2);
        assert_eq!(p.span(2), 2);
        assert_eq!(p.diameter(), 3);
    }

    #[test]
    fn connected_dominating_set_checks() {
        let p = PatternBuilder::new(4).path(&[0, 1, 2, 3]).build();
        assert!(p.is_connected_dominating_set(&[1, 2]));
        assert!(!p.is_connected_dominating_set(&[1])); // 3 not dominated
        assert!(!p.is_connected_dominating_set(&[0, 3])); // not connected
        assert_eq!(p.connected_domination_number(), 2);
        assert_eq!(p.maximum_leaf_number(), 2);
    }

    #[test]
    fn star_has_domination_number_one() {
        let p = PatternBuilder::new(5)
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .edge(0, 4)
            .build();
        assert_eq!(p.connected_domination_number(), 1);
        assert_eq!(p.maximum_leaf_number(), 4);
        assert_eq!(p.span(0), 1);
        assert_eq!(p.span(1), 2);
    }

    #[test]
    fn triangle_domination() {
        let p = PatternBuilder::new(3).clique(&[0, 1, 2]).build();
        assert_eq!(p.connected_domination_number(), 1);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.diameter(), 1);
    }

    #[test]
    fn induced_subpattern() {
        let p = square_with_diagonal();
        let (sub, map) = p.induced(&[0, 1, 2]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3); // triangle 0-1-2 + diagonal 0-2
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn paper_running_example_spans() {
        // Figure 2(a): u0 adjacent to u1, u2, u7, u8, u9; u1-u3, u1-u4, u2-u5,
        // u2-u6, u1-u2, u3-u4, u4-u5, u5-u6, u8-u9.
        let p = crate::queries::running_example_pattern();
        assert_eq!(p.vertex_count(), 10);
        // From Section 4.2 style reasoning: u0 reaches the leaves in 2 hops.
        assert_eq!(p.span(0), 2);
        assert!(p.is_connected());
    }
}
