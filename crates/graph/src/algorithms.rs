//! Basic graph algorithms used by the partitioner, planners and engines.

use std::collections::VecDeque;

use crate::csr::Graph;
use crate::pattern::Pattern;
use crate::types::VertexId;

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances (in hops) from `src`.
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<u32> {
    multi_source_bfs(g, std::iter::once(src))
}

/// Multi-source BFS: distance from every vertex to the *nearest* source.
///
/// This is exactly what the border-distance computation of Definition 1
/// needs (sources = border vertices of the partition).
pub fn multi_source_bfs<I: IntoIterator<Item = VertexId>>(g: &Graph, sources: I) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.vertex_count()];
    let mut queue = VecDeque::new();
    for s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected components; returns `(component id per vertex, number of components)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.vertex_count()];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in g.vertices() {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Returns `true` if the data graph is connected (empty graphs are connected).
pub fn is_connected(g: &Graph) -> bool {
    g.vertex_count() == 0 || connected_components(g).1 == 1
}

/// Lower-bound estimate of the diameter obtained with `rounds` double-sweep
/// BFS passes (exact on trees, a good lower bound in general). Used to fill
/// the "Diameter" column of Table 1 for synthetic datasets.
pub fn estimate_diameter(g: &Graph, rounds: usize) -> u32 {
    if g.vertex_count() == 0 {
        return 0;
    }
    let mut best = 0u32;
    let mut start = 0 as VertexId;
    for _ in 0..rounds.max(1) {
        let dist = bfs_distances(g, start);
        let (far, d) = dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHABLE)
            .max_by_key(|(_, &d)| d)
            .map(|(v, &d)| (v as VertexId, d))
            .unwrap_or((start, 0));
        best = best.max(d);
        start = far;
    }
    best
}

/// Number of triangles in the data graph (each counted once).
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0usize;
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            // count common neighbours w > v to avoid double counting
            let (a, b) = (g.neighbors(u), g.neighbors(v));
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Enumerates all maximal cliques with at least `min_size` vertices using the
/// Bron–Kerbosch algorithm with pivoting. Used by the Crystal baseline's
/// clique index. The callback receives each maximal clique as a sorted slice.
pub fn maximal_cliques<F: FnMut(&[VertexId])>(g: &Graph, min_size: usize, mut emit: F) {
    fn bk(
        g: &Graph,
        r: &mut Vec<VertexId>,
        p: Vec<VertexId>,
        x: Vec<VertexId>,
        min_size: usize,
        emit: &mut dyn FnMut(&[VertexId]),
    ) {
        if p.is_empty() && x.is_empty() {
            if r.len() >= min_size {
                emit(r);
            }
            return;
        }
        // pivot: vertex of P ∪ X with most neighbours in P
        let pivot = p
            .iter()
            .chain(x.iter())
            .copied()
            .max_by_key(|&u| crate::csr::intersection_size(g.neighbors(u), &p))
            .unwrap();
        let pivot_adj = g.neighbors(pivot);
        let candidates: Vec<VertexId> = p
            .iter()
            .copied()
            .filter(|v| pivot_adj.binary_search(v).is_err())
            .collect();
        let mut p = p;
        let mut x = x;
        for v in candidates {
            let adj = g.neighbors(v);
            let new_p: Vec<VertexId> = p.iter().copied().filter(|u| adj.binary_search(u).is_ok()).collect();
            let new_x: Vec<VertexId> = x.iter().copied().filter(|u| adj.binary_search(u).is_ok()).collect();
            r.push(v);
            bk(g, r, new_p, new_x, min_size, emit);
            r.pop();
            p.retain(|&u| u != v);
            x.push(v);
        }
    }
    let p: Vec<VertexId> = g.vertices().collect();
    let mut r = Vec::new();
    bk(g, &mut r, p, Vec::new(), min_size, &mut emit);
}

/// Enumerates all triangles `(a, b, c)` with `a < b < c`.
pub fn triangles(g: &Graph) -> Vec<[VertexId; 3]> {
    let mut out = Vec::new();
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            for &w in g.common_neighbors(u, v).iter() {
                if w > v {
                    out.push([u, v, w]);
                }
            }
        }
    }
    out
}

/// A BFS spanning forest of the graph, returned as `parent[v]`
/// (`parent[root] == root`).
pub fn bfs_spanning_forest(g: &Graph) -> Vec<VertexId> {
    let mut parent: Vec<VertexId> = (0..g.vertex_count() as VertexId).collect();
    let mut seen = vec![false; g.vertex_count()];
    let mut queue = VecDeque::new();
    for root in g.vertices() {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
    }
    parent
}

/// Returns `true` if the *pattern* contains a triangle. Small helper used by
/// query-set sanity checks and the Crystal baseline.
pub fn contains_triangle_pattern(p: &Pattern) -> bool {
    for u in p.vertices() {
        for &v in p.neighbors(u) {
            if v <= u {
                continue;
            }
            for &w in p.neighbors(v) {
                if w > v && p.has_edge(u, w) {
                    return true;
                }
            }
        }
    }
    false
}

/// Degeneracy ordering of the data graph (repeatedly remove the minimum-degree
/// vertex); returns the order and the degeneracy. Useful for clique listing
/// and as a heuristic vertex order.
pub fn degeneracy_ordering(g: &Graph) -> (Vec<VertexId>, usize) {
    let n = g.vertex_count();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as VertexId);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // find the non-empty bucket with the smallest degree
        while cursor > 0 && !buckets[cursor - 1].is_empty() {
            cursor -= 1;
        }
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        if cursor > max_deg {
            break;
        }
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && degree[v as usize] == cursor => break Some(v),
                Some(_) => continue,
                None => break None,
            }
        };
        let Some(v) = v else { continue };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cursor);
        order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                let d = degree[w as usize];
                degree[w as usize] = d - 1;
                buckets[d - 1].push(w);
            }
        }
    }
    // Any vertices skipped due to stale bucket entries are appended (should
    // not happen, but keeps the function total).
    if order.len() < n {
        for (v, &gone) in removed.iter().enumerate() {
            if !gone {
                order.push(v as VertexId);
            }
        }
    }
    (order, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(VertexId, VertexId)> =
            (0..n - 1).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn multi_source_bfs_takes_minimum() {
        let g = path_graph(7);
        let d = multi_source_bfs(&g, [0 as VertexId, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path_graph(4)));
    }

    #[test]
    fn diameter_of_path() {
        let g = path_graph(10);
        assert_eq!(estimate_diameter(&g, 4), 9);
    }

    #[test]
    fn triangle_counting() {
        // Two triangles sharing an edge: 0-1-2, 1-2-3.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&g), 2);
        assert_eq!(triangles(&g), vec![[0, 1, 2], [1, 2, 3]]);
        assert_eq!(triangle_count(&path_graph(5)), 0);
    }

    #[test]
    fn maximal_cliques_in_k4_plus_edge() {
        // K4 on {0,1,2,3} plus edge (3,4)
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            for j in i + 1..4 {
                b.add_edge(i, j);
            }
        }
        b.add_edge(3, 4);
        let g = b.build();
        let mut cliques = Vec::new();
        maximal_cliques(&g, 2, |c| {
            let mut c = c.to_vec();
            c.sort_unstable();
            cliques.push(c);
        });
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1, 2, 3], vec![3, 4]]);
    }

    #[test]
    fn maximal_cliques_min_size_filters() {
        let g = path_graph(4);
        let mut count = 0;
        maximal_cliques(&g, 3, |_| count += 1);
        assert_eq!(count, 0);
        maximal_cliques(&g, 2, |_| count += 1);
        assert_eq!(count, 3);
    }

    #[test]
    fn spanning_forest_covers_all_vertices() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let parent = bfs_spanning_forest(&g);
        assert_eq!(parent.len(), 6);
        // roots are their own parents
        assert_eq!(parent[0], 0);
        assert_eq!(parent[3], 3);
        assert_eq!(parent[5], 5);
        // every non-root parent edge exists
        for v in 0..6u32 {
            let p = parent[v as usize];
            if p != v {
                assert!(g.has_edge(v, p));
            }
        }
    }

    #[test]
    fn degeneracy_of_clique_and_path() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                b.add_edge(i, j);
            }
        }
        let k4 = b.build();
        let (order, d) = degeneracy_ordering(&k4);
        assert_eq!(order.len(), 4);
        assert_eq!(d, 3);
        let (order, d) = degeneracy_ordering(&path_graph(6));
        assert_eq!(order.len(), 6);
        assert_eq!(d, 1);
    }

    #[test]
    fn pattern_triangle_detection() {
        assert!(contains_triangle_pattern(&crate::queries::q2()));
        assert!(!contains_triangle_pattern(&crate::queries::q1()));
    }
}
