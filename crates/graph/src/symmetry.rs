//! Automorphism-based symmetry breaking (Grochow & Kellis), applied by every
//! enumeration engine in the workspace so that each subgraph occurrence is
//! reported exactly once.

use crate::pattern::Pattern;
use crate::types::{PatternVertex, VertexId};

/// Symmetry-breaking constraints for a pattern: a set of ordered query-vertex
/// pairs `(a, b)` meaning that any reported embedding `f` must satisfy
/// `f(a) < f(b)` (comparing data-vertex ids).
///
/// The constraints are computed with the standard Grochow–Kellis procedure:
/// repeatedly pick a vertex with a non-trivial orbit under the remaining
/// automorphism group, force it to take the smallest data vertex among its
/// orbit, then restrict the group to automorphisms fixing that vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryBreaking {
    n: usize,
    /// `constraints[a]` holds every `b` with the requirement `f(a) < f(b)`.
    constraints: Vec<Vec<PatternVertex>>,
    /// Number of automorphisms of the pattern (the reduction factor).
    automorphism_count: usize,
}

impl SymmetryBreaking {
    /// Computes symmetry-breaking constraints for `pattern`.
    pub fn new(pattern: &Pattern) -> Self {
        let autos = automorphisms(pattern);
        let automorphism_count = autos.len();
        let n = pattern.vertex_count();
        let mut constraints: Vec<Vec<PatternVertex>> = vec![Vec::new(); n];
        let mut group = autos;
        loop {
            // Find the smallest vertex with a non-trivial orbit.
            let mut chosen: Option<(PatternVertex, Vec<PatternVertex>)> = None;
            for v in 0..n {
                let mut orbit: Vec<PatternVertex> = group.iter().map(|perm| perm[v]).collect();
                orbit.sort_unstable();
                orbit.dedup();
                if orbit.len() > 1 {
                    chosen = Some((v, orbit));
                    break;
                }
            }
            let Some((v, orbit)) = chosen else { break };
            for &w in &orbit {
                if w != v {
                    constraints[v].push(w);
                }
            }
            group.retain(|perm| perm[v] == v);
            if group.len() <= 1 {
                break;
            }
        }
        for list in constraints.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        SymmetryBreaking { n, constraints, automorphism_count }
    }

    /// A no-op symmetry breaking (used when an engine wants to disable it,
    /// e.g. to cross-check counts in tests).
    pub fn disabled(pattern: &Pattern) -> Self {
        SymmetryBreaking {
            n: pattern.vertex_count(),
            constraints: vec![Vec::new(); pattern.vertex_count()],
            automorphism_count: 1,
        }
    }

    /// Number of automorphisms of the pattern.
    pub fn automorphism_count(&self) -> usize {
        self.automorphism_count
    }

    /// All `(a, b)` pairs with the requirement `f(a) < f(b)`.
    pub fn pairs(&self) -> Vec<(PatternVertex, PatternVertex)> {
        let mut out = Vec::new();
        for (a, list) in self.constraints.iter().enumerate() {
            for &b in list {
                out.push((a, b));
            }
        }
        out
    }

    /// Checks a complete assignment `f(u) = mapping[u]`.
    pub fn check_full(&self, mapping: &[VertexId]) -> bool {
        debug_assert_eq!(mapping.len(), self.n);
        self.constraints.iter().enumerate().all(|(a, list)| {
            list.iter().all(|&b| mapping[a] < mapping[b])
        })
    }

    /// Checks the constraints that involve `u` against a *partial* assignment
    /// in which `assigned[w]` is `Some(v)` for already-matched query vertices.
    /// Unmatched endpoints are ignored (they will be checked when they are
    /// matched).
    pub fn check_partial(&self, u: PatternVertex, v: VertexId, assigned: &[Option<VertexId>]) -> bool {
        // constraints u < b
        for &b in &self.constraints[u] {
            if let Some(vb) = assigned[b] {
                if v >= vb {
                    return false;
                }
            }
        }
        // constraints a < u
        for (a, list) in self.constraints.iter().enumerate() {
            if a == u {
                continue;
            }
            if list.contains(&u) {
                if let Some(va) = assigned[a] {
                    if va >= v {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// All automorphisms of the pattern, each as a permutation `perm[u] = image`.
/// Backtracking with degree pruning; patterns are tiny so this is cheap.
pub fn automorphisms(pattern: &Pattern) -> Vec<Vec<PatternVertex>> {
    let n = pattern.vertex_count();
    let mut result = Vec::new();
    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];

    fn backtrack(
        p: &Pattern,
        u: PatternVertex,
        perm: &mut Vec<PatternVertex>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<PatternVertex>>,
    ) {
        let n = p.vertex_count();
        if u == n {
            out.push(perm.clone());
            return;
        }
        for cand in 0..n {
            if used[cand] || p.degree(cand) != p.degree(u) {
                continue;
            }
            // adjacency consistency with already-mapped vertices
            let ok = (0..u).all(|w| p.has_edge(u, w) == p.has_edge(cand, perm[w]));
            if !ok {
                continue;
            }
            perm[u] = cand;
            used[cand] = true;
            backtrack(p, u + 1, perm, used, out);
            used[cand] = false;
            perm[u] = usize::MAX;
        }
    }

    backtrack(pattern, 0, &mut perm, &mut used, &mut result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use crate::queries;

    #[test]
    fn triangle_has_six_automorphisms() {
        let p = PatternBuilder::new(3).clique(&[0, 1, 2]).build();
        assert_eq!(automorphisms(&p).len(), 6);
        let sb = SymmetryBreaking::new(&p);
        assert_eq!(sb.automorphism_count(), 6);
        // constraints must enforce a strict order on all three vertices:
        // exactly one assignment order of distinct data vertices passes.
        let passes = |m: &[VertexId]| sb.check_full(m);
        let perms: Vec<Vec<VertexId>> = vec![
            vec![1, 2, 3],
            vec![1, 3, 2],
            vec![2, 1, 3],
            vec![2, 3, 1],
            vec![3, 1, 2],
            vec![3, 2, 1],
        ];
        let count = perms.iter().filter(|m| passes(m)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn square_automorphism_group() {
        let p = queries::q1();
        // dihedral group of the square
        assert_eq!(automorphisms(&p).len(), 8);
        let sb = SymmetryBreaking::new(&p);
        // the reduction factor must divide into distinct-value assignments:
        // of the 24 orderings of 4 distinct data vertices, 24 / 8 = 3 pass.
        let mut pass = 0;
        let vals: Vec<VertexId> = vec![10, 20, 30, 40];
        let mut perm = vals.clone();
        // enumerate permutations via Heap's algorithm (4! = 24)
        fn heaps(k: usize, arr: &mut Vec<VertexId>, visit: &mut dyn FnMut(&[VertexId])) {
            if k == 1 {
                visit(arr);
                return;
            }
            for i in 0..k {
                heaps(k - 1, arr, visit);
                if k.is_multiple_of(2) {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        heaps(4, &mut perm, &mut |m| {
            if sb.check_full(m) {
                pass += 1;
            }
        });
        assert_eq!(pass, 3);
    }

    #[test]
    fn pendant_square_has_reflection_symmetry() {
        // 4-cycle 1-2-3-4 with a pendant vertex 0 attached to 1: the only
        // non-trivial automorphism is the reflection swapping 2 and 4.
        let p = PatternBuilder::new(5).path(&[0, 1, 2, 3]).edge(1, 4).edge(3, 4).build();
        let autos = automorphisms(&p);
        assert_eq!(autos.len(), 2);
        let sb = SymmetryBreaking::new(&p);
        assert_eq!(sb.automorphism_count(), 2);
        // the single constraint must distinguish the two symmetric images
        assert_eq!(sb.pairs().len(), 1);
        let (a, b) = sb.pairs()[0];
        assert!((a, b) == (2, 4) || (a, b) == (4, 2));
    }

    #[test]
    fn asymmetric_pattern_has_no_constraints() {
        // q5 (house + end vertex) is asymmetric except for the roof-base
        // reflection; check a genuinely rigid pattern instead: the house with
        // an end vertex attached off-centre at a base corner.
        let p = PatternBuilder::new(6)
            .cycle(&[0, 1, 2, 3])
            .edge(0, 4)
            .edge(1, 4)
            .edge(2, 5)
            .build();
        assert_eq!(automorphisms(&p).len(), 1);
        let sb = SymmetryBreaking::new(&p);
        assert!(sb.pairs().is_empty());
        assert!(sb.check_full(&[5, 4, 3, 2, 1, 0]));
    }

    #[test]
    fn partial_checks_agree_with_full_checks() {
        let p = queries::q1();
        let sb = SymmetryBreaking::new(&p);
        let mapping: Vec<VertexId> = vec![4, 2, 1, 3];
        let full = sb.check_full(&mapping);
        // simulate incremental assignment in order 0,1,2,3
        let mut assigned: Vec<Option<VertexId>> = vec![None; 4];
        let mut partial_ok = true;
        for u in 0..4 {
            if !sb.check_partial(u, mapping[u], &assigned) {
                partial_ok = false;
                break;
            }
            assigned[u] = Some(mapping[u]);
        }
        assert_eq!(full, partial_ok);
    }

    #[test]
    fn disabled_symmetry_accepts_everything() {
        let p = queries::c1();
        let sb = SymmetryBreaking::disabled(&p);
        assert!(sb.check_full(&[9, 3, 7, 1]));
        assert_eq!(sb.automorphism_count(), 1);
    }

    #[test]
    fn k33_automorphism_count() {
        let p = queries::q8();
        // Aut(K3,3) = 3! * 3! * 2 = 72
        assert_eq!(automorphisms(&p).len(), 72);
    }
}
